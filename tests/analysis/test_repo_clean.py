"""The repo's own source must pass serenade-lint with an empty baseline.

This is the acceptance gate for the whole sweep: every SRN001–SRN005
finding in ``src/repro`` was *fixed*, not grandfathered, so the committed
baseline stays empty and the engine run stays clean. CI runs the same
check (see .github/workflows/ci.yml); this test keeps it enforceable
locally with nothing but pytest.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import analyze_paths, load_config

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_repro_is_lint_clean():
    config = load_config(REPO_ROOT / "pyproject.toml")
    report = analyze_paths([REPO_ROOT / "src" / "repro"], config)
    rendered = "\n".join(d.render() for d in report.findings)
    assert report.clean, f"serenade-lint findings in src/repro:\n{rendered}"
    assert report.baselined == 0, "hot-path findings may not be baselined"


def test_committed_baseline_is_empty():
    payload = json.loads(
        (REPO_ROOT / "serenade-lint-baseline.json").read_text()
    )
    assert payload == {"version": 1, "entries": []}


def test_config_scopes_hot_path_rules():
    """The pyproject scoping must keep the SLA-critical layers covered."""
    config = load_config(REPO_ROOT / "pyproject.toml")
    for rule_id in ("SRN001", "SRN003"):
        assert config.rule_applies(rule_id, "src/repro/serving/http.py")
        assert config.rule_applies(rule_id, "src/repro/core/batch.py")
    assert config.rule_applies("SRN001", "src/repro/cluster/autoscaler.py")
    # SRN004's lock graph is project-wide by design.
    assert config.rule_applies("SRN004", "src/repro/kvstore/store.py")
    assert config.rule_applies("SRN005", "src/repro/serving/resilience.py")


def test_config_scopes_interprocedural_rules():
    """The dataflow rules must cover the layers whose contracts they check."""
    config = load_config(REPO_ROOT / "pyproject.toml")
    # SRN006 guards the frozen numpy buffers of the columnar index.
    assert config.rule_applies("SRN006", "src/repro/core/colindex.py")
    assert not config.rule_applies("SRN006", "src/repro/cli/main.py")
    # SRN007 tracks deadline flow through the serving call chain.
    assert config.rule_applies("SRN007", "src/repro/serving/server.py")
    assert config.rule_applies("SRN007", "src/repro/core/batch.py")
    # SRN008's escape analysis is project-wide, like the lock graph.
    assert config.rule_applies("SRN008", "src/repro/kvstore/store.py")
    assert config.rule_applies("SRN008", "tests/analysis/fixtures/x.py")
    # SRN009 covers every layer that opens WAL handles, stores, or pools.
    assert config.rule_applies("SRN009", "src/repro/streaming/ingest.py")
    assert config.rule_applies("SRN009", "src/repro/cli/main.py")
    assert config.rule_applies("SRN009", "src/repro/bench/arms.py")
