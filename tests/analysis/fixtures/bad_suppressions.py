"""Malformed or unused suppressions — each comment is an SRN000 finding."""

import time


def missing_reason() -> float:
    return time.time()  # serenade: ignore[SRN001]


def missing_rule_list() -> float:
    return time.time()  # serenade: ignore because reasons


def unknown_rule() -> int:
    return 1  # serenade: ignore[SRN999] no such rule


def meta_rule() -> int:
    return 2  # serenade: ignore[SRN000] the meta rule is not suppressible


def unused() -> int:
    return 3  # serenade: ignore[SRN002] nothing to suppress here
