"""Seeded SRN004 violations: guarded-state races, a lock-ordering cycle,
and a non-reentrant self-deadlock."""

import threading

from repro.core.locking import guarded_by, holds_lock


@guarded_by("_lock", "count")
class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def bump_bad(self):
        self.count += 1  # violation: guarded attribute touched lock-free

    def bump_good(self):
        with self._lock:
            self.count += 1

    @holds_lock("_lock")
    def _reset(self):
        self.count = 0

    def reset_bad(self):
        self._reset()  # violation: @holds_lock callee without the lock

    def reset_good(self):
        with self._lock:
            self._reset()

    def sneaky_bad(self):
        self.stray = 1  # violation: write to undeclared attribute


@guarded_by("_lock", "hits")
class Left:
    """Half of a two-lock ordering cycle: Left._lock -> Right._lock."""

    def __init__(self, right: "Right"):
        self._lock = threading.Lock()
        self.hits = 0
        self.right = right

    def poke(self):
        with self._lock:
            self.hits += 1
            self.right.poke()


@guarded_by("_lock", "hits")
class Right:
    """Other half: Right._lock -> Left._lock closes the cycle."""

    def __init__(self, left: "Left"):
        self._lock = threading.Lock()
        self.hits = 0
        self.left = left

    def poke(self):
        with self._lock:
            self.hits += 1

    def cross(self):
        with self._lock:
            self.left.poke()


class Reenter:
    def __init__(self):
        self._lock = threading.Lock()

    def outer(self):
        with self._lock:
            self.inner()  # violation: re-acquires a non-reentrant Lock

    def inner(self):
        with self._lock:
            pass
