"""Seeded SRN002 violations: exact float comparison on score-like values."""


def cut_bad(score: float, other_score: float) -> bool:
    if score == 0.0:  # violation: float-literal equality
        return False
    return score != other_score  # violation: score-named operands


def weight_bad(weight: float) -> bool:
    return weight == 1.0  # violation: float-literal equality


def cut_good(score: float, other_score: float) -> bool:
    from repro.core.floatcmp import is_zero_score, scores_differ

    if is_zero_score(score):
        return False
    return scores_differ(score, other_score)


def not_scores(decay: str, count: int) -> bool:
    # String/int comparisons are out of scope even with score-ish names.
    return decay == "linear" and count == 0
