"""Seeded SRN006 violations: dtype-less conversions, caller aliasing,
and post-construction writes to @frozen_buffers arrays."""

import numpy as np

from repro.core.contracts import frozen_buffers


def _loose(values):
    return np.asarray(values)


def _pinned(values):
    return np.asarray(values, dtype=np.int64)


@frozen_buffers("ids", "scores", "offsets", "mirror", "rows")
class PackedIndex:
    def __init__(self, ids, scores, offsets, rows):
        self.ids = np.asarray(ids)  # violation: dtype-less conversion
        self.scores = np.ascontiguousarray(scores, dtype=np.float64)  # ok
        self.offsets = offsets  # violation: aliases caller-owned memory
        self.rows = _loose(rows)  # violation: helper pins no dtype
        self.mirror = np.ascontiguousarray(self.ids[::-1])  # ok: frozen root
        self._finish()

    def _finish(self):
        self.rows = _pinned([])  # ok: construction helper, pinned dtype

    def lookup(self, row):
        return int(self.ids[row])  # ok: reads are always fine

    def rescale(self, factor):
        self.scores = self.scores * factor  # violation: reassigned later

    def patch(self, row, value):
        self.ids[row] = value  # violation: in-place write after construction

    def compact(self):
        self.ids.sort()  # violation: in-place mutator after construction
