"""A real violation neutralised by a well-formed inline suppression."""

import time


def sampled_now() -> float:
    return time.time()  # serenade: ignore[SRN001] fixture exercises suppression
