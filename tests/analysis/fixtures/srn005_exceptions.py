"""Seeded SRN005 violations: broad excepts that swallow serving-path errors."""

import logging

logger = logging.getLogger(__name__)


def swallow_bare_bad(pod):
    try:
        return pod.recommend([])
    except:  # noqa: E722  # violation: silently swallowed
        return None


def swallow_broad_bad(pod):
    try:
        return pod.recommend([])
    except Exception:  # violation: no log/metric/re-raise
        return None


def swallow_tuple_bad(pod):
    try:
        return pod.recommend([])
    except (RuntimeError, Exception):  # violation: broad member swallowed
        return None


def logged_good(pod):
    try:
        return pod.recommend([])
    except Exception:
        logger.warning("pod failed; falling back", exc_info=True)
        return None


def counted_good(pod, metrics):
    try:
        return pod.recommend([])
    except Exception:
        metrics.increment("pod_failures")
        return None


def reraise_good(pod):
    try:
        return pod.recommend([])
    except Exception:
        raise


def narrow_good(pod):
    try:
        return pod.recommend([])
    except KeyError:  # narrow excepts may stay silent
        return None
