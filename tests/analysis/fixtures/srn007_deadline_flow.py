"""Seeded SRN007 violations: deadlines dropped at call boundaries.

Every function here satisfies SRN003 locally (it consults its own
deadline); what breaks is the *flow* — a blocking, deadline-accepting
callee invoked without the caller's budget."""


def poll_store(request, deadline):
    if deadline.expired():
        return None
    return request.channel.recommend(request.payload)  # blocking leaf


def serve_bad(request, deadline):
    if deadline.expired():
        return None
    return poll_store(request)  # violation: the budget stops flowing here


def serve_good(request, deadline):
    if deadline.expired():
        return None
    return poll_store(request, deadline)


def tier_two(batch, deadline):
    if deadline.expired():
        return []
    return poll_store(batch, deadline)


def tier_one_bad(batch, deadline):
    if deadline.expired():
        return []
    return tier_two(batch)  # violation: callee blocks only transitively


class Gateway:
    def lookup(self, key, deadline):
        if deadline.expired():
            return None
        return self.backend.recommend(key)  # blocking leaf

    def relay_bad(self, key, deadline):
        if deadline.expired():
            return None
        return self.lookup(key)  # violation: self-call drops the deadline

    def relay_good(self, key, deadline):
        if deadline.expired():
            return None
        return self.lookup(key, deadline)
