"""Seeded SRN001 violations: ambient clock and RNG calls in logic code."""

import random
import time
from datetime import datetime
from time import monotonic as mono

from repro.core.deadline import Clock


def elapsed_bad() -> float:
    start = time.monotonic()  # violation: ambient clock call
    time.sleep(0.01)  # violation: real sleep
    return time.monotonic() - start  # violation


def stamp_bad() -> str:
    return datetime.now().isoformat()  # violation: wall-clock timestamp


def aliased_bad() -> float:
    return mono()  # violation: aliased time.monotonic call


def jitter_bad() -> float:
    return random.random()  # violation: ambient module-level RNG


def elapsed_good(clock: Clock = time.monotonic) -> float:
    # Referencing time.monotonic as an injectable default is the seam
    # itself — only *calls* are violations.
    start = clock()
    return clock() - start


def jitter_good(seed: int) -> float:
    rng = random.Random(seed)  # constructing a seeded RNG is allowed
    return rng.random()
