"""Seeded SRN009 violations: resources left open on some exit path."""

from concurrent.futures import ThreadPoolExecutor


class PartitionedLog:
    def __init__(self, path):
        self.path = path

    def append(self, record):
        pass

    def close(self):
        pass


class SessionStore:
    @classmethod
    def open(cls, path):
        return cls()

    def get(self, key):
        pass

    def close(self):
        pass


def drain_bad(path, records):
    log = PartitionedLog(path)  # violation: the early return leaks it
    for record in records:
        if record is None:
            return 0
        log.append(record)
    log.close()
    return len(records)


def replay_bad(path, records):
    log = PartitionedLog(path)  # violation: append may raise past close
    for record in records:
        log.append(record)
    log.close()
    return len(records)


def warm_bad(path, keys):
    store = SessionStore.open(path)  # violation: factory-opened, never closed
    return [store.get(key) for key in keys]


def pool_bad(tasks):
    pool = ThreadPoolExecutor(2)  # violation: shutdown only on success
    results = [pool.submit(task) for task in tasks]
    pool.shutdown()
    return results


def drain_good(path, records):
    log = PartitionedLog(path)
    try:
        for record in records:
            if record is None:
                return 0
            log.append(record)
    finally:
        log.close()
    return len(records)


def handoff_good(path):
    log = PartitionedLog(path)
    return log  # ownership moves to the caller
