"""Seeded SRN003 violations: deadline parameters that leak the SLA budget."""

from repro.core.deadline import Deadline


def dead_param_bad(session, deadline: Deadline | None = None):  # violation
    return list(session)


def reminted_bad(session, deadline: Deadline | None = None):
    if deadline is not None and deadline.expired():
        return None
    budget = Deadline.after_ms(50.0)  # violation: re-mints the budget
    return budget


def loop_bad(shards, deadline: Deadline | None = None):
    if deadline is not None and deadline.expired():
        return []
    out = []
    for shard in shards:  # violation: blocking loop never re-checks
        out.append(shard.recommend([]))
    return out


def naked_result_bad(future, deadline: Deadline | None = None):
    if deadline is not None and deadline.expired():
        return None
    return future.result()  # violation: unbounded block


def propagated_good(shards, future, deadline: Deadline | None = None):
    if deadline is None:
        deadline = Deadline.after_ms(50.0)  # allowed: default-fill idiom
    out = []
    for shard in shards:
        if deadline.expired():
            break
        out.append(shard.recommend([], deadline=deadline))
    timeout = deadline.remaining()
    out.append(future.result(timeout=timeout))
    return out
