"""Seeded SRN008 violations: guarded containers escaping their lock, and
a happens-before ordering broken on one branch."""

import threading

from repro.core.contracts import happens_before
from repro.core.locking import guarded_by


def replicate(sessions):
    pass


@guarded_by("_lock", "_sessions", "served")
class ShardState:
    def __init__(self):
        self._lock = threading.Lock()
        self._sessions = {}
        self.served = 0

    def snapshot_bad(self):
        with self._lock:
            return self._sessions  # violation: container by reference

    def snapshot_good(self):
        with self._lock:
            return dict(self._sessions)

    def count(self):
        with self._lock:
            return self.served  # ok: an int is a value copy

    def drain_bad(self, pool):
        with self._lock:
            pool.submit(replicate, self._sessions)  # violation: escapes

    def drain_good(self, pool):
        with self._lock:
            snapshot = dict(self._sessions)
        pool.submit(replicate, snapshot)


@happens_before("flush", "ack")
class Journal:
    def commit(self, record):
        self.flush(record)
        self.ack(record)  # ok: flush dominates

    def commit_fast(self, record, fast):
        if fast:
            self.prepare(record)
        else:
            self.flush(record)
        self.ack(record)  # violation: the fast branch skipped flush

    def prepare(self, record):
        pass

    def flush(self, record):
        pass

    def ack(self, record):
        pass
