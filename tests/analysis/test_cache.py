"""Cache behaviour: warm hits, one-file invalidation with fresh
cross-module findings, fingerprint mismatches, and corruption fallback."""

from __future__ import annotations

import textwrap

from repro.analysis import AnalysisConfig, analyze_paths
from repro.analysis.cache import (
    CacheEntry,
    SummaryCache,
    run_fingerprint,
)
from repro.analysis.summaries import ModuleSummary

LIB_BLOCKING = """
def poll(request, deadline):
    if deadline.expired():
        return None
    return request.channel.recommend(request.payload)
"""

LIB_NONBLOCKING = """
def poll(request, deadline):
    if deadline.expired():
        return None
    return request.payload
"""

SVC_DROPS_DEADLINE = """
from lib import poll


def serve(request, deadline):
    if deadline.expired():
        return None
    return poll(request)
"""


def make_project(tmp_path):
    (tmp_path / "lib.py").write_text(textwrap.dedent(LIB_BLOCKING))
    (tmp_path / "svc.py").write_text(textwrap.dedent(SVC_DROPS_DEADLINE))
    return AnalysisConfig(root=tmp_path, baseline=None, cache=".lint-cache")


def run(tmp_path, config, **kwargs):
    return analyze_paths([tmp_path], config, use_baseline=False, **kwargs)


def test_warm_run_replays_everything_from_cache(tmp_path):
    config = make_project(tmp_path)
    cold = run(tmp_path, config)
    assert (cold.analyzed, cold.cached) == (2, 0)
    assert [d.rule for d in cold.findings] == ["SRN007"]

    warm = run(tmp_path, config)
    assert (warm.analyzed, warm.cached) == (0, 2)
    # identical findings: the project phase reruns over cached summaries.
    assert [d.render() for d in warm.findings] == [
        d.render() for d in cold.findings
    ]


def test_one_file_edit_reanalyzes_only_that_file(tmp_path):
    config = make_project(tmp_path)
    run(tmp_path, config)

    # Fix the *callee*: svc.py is untouched and stays a cache hit, but the
    # cross-module SRN007 finding it hosted must disappear anyway.
    (tmp_path / "lib.py").write_text(textwrap.dedent(LIB_NONBLOCKING))
    after = run(tmp_path, config)
    assert (after.analyzed, after.cached) == (1, 1)
    assert after.findings == []


def test_use_cache_false_always_runs_cold(tmp_path):
    config = make_project(tmp_path)
    run(tmp_path, config)
    report = run(tmp_path, config, use_cache=False)
    assert (report.analyzed, report.cached) == (2, 0)


def test_cache_none_config_writes_nothing(tmp_path):
    config = make_project(tmp_path)
    config.cache = None
    run(tmp_path, config)
    assert not (tmp_path / ".lint-cache").exists()


def test_corrupt_entry_degrades_to_cache_miss(tmp_path):
    config = make_project(tmp_path)
    run(tmp_path, config)
    entries = sorted((tmp_path / ".lint-cache").glob("*.json"))
    assert len(entries) == 2
    entries[0].write_text("{not json")
    report = run(tmp_path, config)
    assert (report.analyzed, report.cached) == (1, 1)
    assert [d.rule for d in report.findings] == ["SRN007"]


def _entry(relpath="x.py"):
    return CacheEntry(
        relpath=relpath,
        findings=[],
        problems=[],
        suppressions=[],
        summary=ModuleSummary(relpath=relpath, module_name="x"),
    )


def test_fingerprint_or_content_mismatch_is_a_miss(tmp_path):
    cache = SummaryCache(tmp_path, "fp-a")
    cache.store(_entry(), "hash-1")
    assert SummaryCache(tmp_path, "fp-b").load("x.py", "hash-1") is None
    assert SummaryCache(tmp_path, "fp-a").load("x.py", "hash-2") is None
    hit = SummaryCache(tmp_path, "fp-a").load("x.py", "hash-1")
    assert hit is not None and hit.relpath == "x.py"


def test_run_fingerprint_covers_rules_config_and_engine_version():
    base = run_fingerprint(["SRN001"], {"exclude": []}, 2)
    assert base == run_fingerprint(["SRN001"], {"exclude": []}, 2)
    assert base != run_fingerprint(["SRN001", "SRN002"], {"exclude": []}, 2)
    assert base != run_fingerprint(["SRN001"], {"exclude": ["tests"]}, 2)
    assert base != run_fingerprint(["SRN001"], {"exclude": []}, 3)
