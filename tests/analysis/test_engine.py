"""Engine-level behaviour: suppressions, baseline round-trip, JSON, CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisConfig,
    Baseline,
    analyze_paths,
    get_rule,
    load_config,
)
from repro.analysis.__main__ import main as lint_main
from repro.analysis.diagnostics import META_RULE, Diagnostic
from repro.analysis.registry import all_rules

FIXTURES = Path(__file__).parent / "fixtures"

VIOLATING_SOURCE = '''\
import time


def now() -> float:
    return time.time()
'''

CLEAN_SOURCE = '''\
def now(clock) -> float:
    return clock()
'''


def fixture_config() -> AnalysisConfig:
    return AnalysisConfig(root=FIXTURES, baseline=None)


# -- suppressions -------------------------------------------------------------


def test_wellformed_suppression_silences_finding():
    report = analyze_paths(
        [FIXTURES / "suppressed_clean.py"], fixture_config(), use_baseline=False
    )
    assert report.clean
    assert report.suppressed == 1


def test_suppression_without_reason_is_a_finding_and_does_not_silence():
    report = analyze_paths(
        [FIXTURES / "bad_suppressions.py"], fixture_config(), use_baseline=False
    )
    by_line = {}
    for finding in report.findings:
        by_line.setdefault(finding.line, set()).add(finding.rule)
    # reason-less suppression: SRN000 plus the un-silenced SRN001.
    assert by_line[7] == {META_RULE, "SRN001"}
    # rule-list-less suppression: same.
    assert by_line[11] == {META_RULE, "SRN001"}
    # suppressing the meta rule itself is refused.
    assert by_line[19] == {META_RULE}
    messages = {d.line: d.message for d in report.findings if d.rule == META_RULE}
    assert "requires a reason" in messages[7]
    assert "must name the rules" in messages[11]
    assert "cannot be suppressed" in messages[19]


def test_unused_suppression_is_a_finding():
    report = analyze_paths(
        [FIXTURES / "bad_suppressions.py"], fixture_config(), use_baseline=False
    )
    unused = [d for d in report.findings if "unused suppression" in d.message]
    assert {d.line for d in unused} == {15, 23}


def test_suppression_marker_in_docstring_is_not_a_suppression(tmp_path):
    source = (
        '"""Docs may mention `# serenade: ignore[SRN001] reason` freely."""\n'
        + VIOLATING_SOURCE
    )
    target = tmp_path / "mod.py"
    target.write_text(source)
    config = AnalysisConfig(root=tmp_path, baseline=None)
    report = analyze_paths([target], config, use_baseline=False)
    # the docstring mention neither suppresses nor trips SRN000.
    assert report.suppressed == 0
    assert [d.rule for d in report.findings] == ["SRN001"]


# -- baseline -----------------------------------------------------------------


def test_baseline_round_trip_absorbs_then_flags_unused(tmp_path):
    target = tmp_path / "legacy.py"
    target.write_text(VIOLATING_SOURCE)
    baseline_file = tmp_path / "baseline.json"
    config = AnalysisConfig(root=tmp_path, baseline=baseline_file.name)

    first = analyze_paths([target], config, use_baseline=True)
    assert [d.rule for d in first.findings] == ["SRN001"]

    # grandfather the finding, as --update-baseline would.
    Baseline.from_findings(first.raw_findings).save(baseline_file)
    second = analyze_paths([target], config, use_baseline=True)
    assert second.clean
    assert second.baselined == 1

    # fix the violation: the stale entry must now fail the run.
    target.write_text(CLEAN_SOURCE)
    third = analyze_paths([target], config, use_baseline=True)
    assert [d.rule for d in third.findings] == [META_RULE]
    assert "unused baseline entry" in third.findings[0].message


def test_baseline_survives_save_load_cycle(tmp_path):
    finding = Diagnostic("a/b.py", 3, 0, "SRN001", "direct call to time.time()")
    baseline_file = tmp_path / "baseline.json"
    Baseline.from_findings([finding, finding]).save(baseline_file)
    loaded = Baseline.load(baseline_file)
    assert len(loaded) == 2
    kept, baselined, unused = loaded.apply([finding])
    assert (kept, baselined) == ([], 1)
    assert len(unused) == 1  # one count left over


def test_baseline_never_absorbs_meta_findings():
    meta = Diagnostic("a.py", 1, 0, META_RULE, "syntax error: boom")
    assert len(Baseline.from_findings([meta])) == 0


def test_baseline_rejects_unknown_version(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(ValueError, match="unsupported version"):
        Baseline.load(bad)


# -- report formats -----------------------------------------------------------


def test_json_report_schema():
    report = analyze_paths(
        [FIXTURES / "srn001_clock.py"], fixture_config(), use_baseline=False
    )
    payload = json.loads(report.render_json())
    assert payload["version"] == 2
    assert payload["tool"] == "serenade-lint"
    assert set(payload["counts"]) == {
        "findings",
        "suppressed",
        "baselined",
        "files",
        "analyzed",
        "cached",
    }
    assert payload["counts"]["analyzed"] == 1
    assert payload["counts"]["cached"] == 0
    assert payload["counts"]["findings"] == len(payload["findings"]) > 0
    assert payload["rules"] == [cls.rule_id for cls in all_rules()]
    for finding in payload["findings"]:
        assert set(finding) == {"path", "line", "column", "rule", "message"}
        assert isinstance(finding["line"], int)


def test_sarif_report_schema():
    report = analyze_paths(
        [FIXTURES / "srn001_clock.py"], fixture_config(), use_baseline=False
    )
    payload = json.loads(report.render_sarif())
    assert payload["version"] == "2.1.0"
    (run,) = payload["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "serenade-lint"
    rule_ids = {rule["id"] for rule in driver["rules"]}
    assert {cls.rule_id for cls in all_rules()} <= rule_ids
    assert META_RULE in rule_ids
    assert len(run["results"]) == len(report.findings) > 0
    for result, finding in zip(run["results"], report.findings):
        assert result["ruleId"] == finding.rule
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == finding.line
        # SARIF columns are 1-based; the engine stores ast's 0-based.
        assert region["startColumn"] == finding.column + 1


def test_syntax_error_becomes_meta_finding(tmp_path):
    target = tmp_path / "broken.py"
    target.write_text("def oops(:\n")
    config = AnalysisConfig(root=tmp_path, baseline=None)
    report = analyze_paths([target], config, use_baseline=False)
    assert [d.rule for d in report.findings] == [META_RULE]
    assert "syntax error" in report.findings[0].message


# -- registry and config ------------------------------------------------------


def test_registry_exposes_all_rules():
    assert [cls.rule_id for cls in all_rules()] == [
        "SRN001",
        "SRN002",
        "SRN003",
        "SRN004",
        "SRN005",
        "SRN006",
        "SRN007",
        "SRN008",
        "SRN009",
    ]
    assert get_rule("SRN004").name == "lock-discipline"
    assert get_rule("SRN006").name == "frozen-buffer-contracts"


def test_config_rule_scoping(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(
        "[tool.serenade-lint]\n"
        'baseline = "b.json"\n'
        'exclude = ["src/vendored"]\n'
        "\n"
        "[tool.serenade-lint.rules.SRN001]\n"
        'paths = ["src/serving", "src/core"]\n'
    )
    config = load_config(pyproject)
    assert config.baseline == "b.json"
    assert config.rule_applies("SRN001", "src/serving/http.py")
    assert not config.rule_applies("SRN001", "src/cluster/pod.py")
    # unscoped rules apply everywhere except excludes.
    assert config.rule_applies("SRN004", "src/cluster/pod.py")
    assert not config.rule_applies("SRN004", "src/vendored/x.py")


# -- CLI ----------------------------------------------------------------------


def _write_pyproject(tmp_path: Path) -> None:
    (tmp_path / "pyproject.toml").write_text("[tool.serenade-lint]\n")


def test_cli_exit_zero_on_clean_tree(tmp_path, capsys):
    _write_pyproject(tmp_path)
    (tmp_path / "ok.py").write_text(CLEAN_SOURCE)
    assert lint_main([str(tmp_path / "ok.py")]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_exit_one_on_findings_and_json_output(tmp_path, capsys):
    _write_pyproject(tmp_path)
    bad = tmp_path / "bad.py"
    bad.write_text(VIOLATING_SOURCE)
    assert lint_main([str(bad), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["findings"] == 1
    assert payload["findings"][0]["rule"] == "SRN001"


def test_cli_exit_two_on_missing_path(tmp_path, capsys):
    _write_pyproject(tmp_path)
    assert lint_main([str(tmp_path / "nope")]) == 2
    assert "error" in capsys.readouterr().err


def test_cli_update_baseline_then_clean(tmp_path, capsys):
    _write_pyproject(tmp_path)
    bad = tmp_path / "bad.py"
    bad.write_text(VIOLATING_SOURCE)
    assert lint_main([str(bad), "--update-baseline"]) == 0
    assert (tmp_path / "serenade-lint-baseline.json").exists()
    assert lint_main([str(bad)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out
    # --no-baseline resurfaces the grandfathered finding.
    assert lint_main([str(bad), "--no-baseline"]) == 1


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("SRN001", "SRN002", "SRN003", "SRN004", "SRN005"):
        assert rule_id in out
