"""Golden-file tests: every rule detects its seeded fixture violations.

Each ``fixtures/srn00N_*.py`` file seeds violations of one rule alongside
compliant code that must stay silent. The ``.expected`` file next to it
holds the exact rendered diagnostics; regenerate after an intentional
rule change with::

    REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest tests/analysis/test_rules.py
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis import AnalysisConfig, analyze_paths

FIXTURES = Path(__file__).parent / "fixtures"

RULE_FIXTURES = {
    "SRN001": "srn001_clock.py",
    "SRN002": "srn002_float_eq.py",
    "SRN003": "srn003_deadline.py",
    "SRN004": "srn004_locks.py",
    "SRN005": "srn005_exceptions.py",
    "SRN006": "srn006_buffers.py",
    "SRN007": "srn007_deadline_flow.py",
    "SRN008": "srn008_escape.py",
    "SRN009": "srn009_resources.py",
}


def fixture_config() -> AnalysisConfig:
    """All rules everywhere, no baseline — fixtures are self-contained."""
    return AnalysisConfig(root=FIXTURES, baseline=None)


def run_fixture(name: str):
    return analyze_paths([FIXTURES / name], fixture_config(), use_baseline=False)


@pytest.mark.parametrize("rule_id,fixture", sorted(RULE_FIXTURES.items()))
def test_fixture_matches_golden(rule_id, fixture):
    report = run_fixture(fixture)
    rendered = "\n".join(d.render() for d in report.findings) + "\n"
    golden = (FIXTURES / fixture).with_suffix(".expected")
    if os.environ.get("REGEN_GOLDENS"):
        golden.write_text(rendered)
        pytest.skip("regenerated golden file")
    assert rendered == golden.read_text()


@pytest.mark.parametrize("rule_id,fixture", sorted(RULE_FIXTURES.items()))
def test_fixture_only_fires_its_own_rule(rule_id, fixture):
    report = run_fixture(fixture)
    assert report.findings, f"{fixture} seeded violations but none detected"
    assert {d.rule for d in report.findings} == {rule_id}


def test_srn001_counts_and_lines():
    report = run_fixture(RULE_FIXTURES["SRN001"])
    # three monotonic calls, one sleep, one datetime.now, one random.random —
    # and nothing from the injectable-default / seeded-RNG good variants.
    assert len(report.findings) == 6
    assert not any(d.line >= 29 for d in report.findings), (
        "a compliant seam in the good variants was flagged"
    )


def test_srn002_ignores_non_float_comparisons():
    report = run_fixture(RULE_FIXTURES["SRN002"])
    messages = {(d.line, d.rule) for d in report.findings}
    assert len(messages) == 3
    # the string/int comparisons in not_scores() stay silent.
    assert not any(line > 15 for line, _ in messages)


def test_srn003_all_four_shapes_detected():
    report = run_fixture(RULE_FIXTURES["SRN003"])
    texts = [d.message for d in report.findings]
    assert len(texts) == 4
    assert any("never" in t and "consults" in t for t in texts)
    assert any("fresh Deadline" in t for t in texts)
    assert any("loop performs blocking calls" in t for t in texts)
    assert any("Future.result()" in t for t in texts)


def test_srn004_detects_two_lock_ordering_cycle():
    """Acceptance criterion: an injected A->B->A lock cycle is flagged."""
    report = run_fixture(RULE_FIXTURES["SRN004"])
    cycles = [d for d in report.findings if "lock-ordering cycle" in d.message]
    assert len(cycles) == 1
    assert "Left._lock" in cycles[0].message
    assert "Right._lock" in cycles[0].message


def test_srn004_detects_guarded_access_and_holds_lock_misuse():
    report = run_fixture(RULE_FIXTURES["SRN004"])
    messages = [d.message for d in report.findings]
    assert any("Counter.count" in m and "outside" in m for m in messages)
    assert any("@holds_lock method Counter._reset" in m for m in messages)
    assert any("undeclared attribute Counter.stray" in m for m in messages)
    assert any("not reentrant" in m for m in messages)


def test_srn005_good_handlers_stay_silent():
    report = run_fixture(RULE_FIXTURES["SRN005"])
    assert len(report.findings) == 3
    # logged_good starts at line 29; everything after it is compliant.
    assert all(d.line < 29 for d in report.findings)
