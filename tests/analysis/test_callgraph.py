"""Unit tests for the project index: call resolution, may-block fixpoint,
and the shared Tarjan SCC helper."""

from __future__ import annotations

import textwrap

from repro.analysis import AnalysisConfig
from repro.analysis.callgraph import ProjectIndex, strongly_connected
from repro.analysis.engine import parse_module
from repro.analysis.summaries import build_module_summary


def summarize(tmp_path, files: dict[str, str]):
    """Write ``files`` under tmp_path and build their module summaries."""
    config = AnalysisConfig(root=tmp_path, baseline=None)
    summaries = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        module, problems = parse_module(path, config)
        assert module is not None and not problems
        summaries.append(build_module_summary(module))
    return summaries


def edge_pairs(index: ProjectIndex):
    return {(caller, callee) for caller, callee, _ in index.edges()}


def test_resolves_self_calls_to_own_class_methods(tmp_path):
    summaries = summarize(
        tmp_path,
        {
            "svc.py": """
            class Engine:
                def outer(self):
                    return self.inner()

                def inner(self):
                    return 1
            """
        },
    )
    index = ProjectIndex(summaries)
    assert (("svc.py", "Engine.outer"), ("svc.py", "Engine.inner")) in edge_pairs(
        index
    )


def test_resolves_attr_calls_through_inferred_attr_types(tmp_path):
    summaries = summarize(
        tmp_path,
        {
            "store.py": """
            class SessionStore:
                def get(self, key):
                    return key
            """,
            "svc.py": """
            from store import SessionStore

            class Handler:
                def __init__(self):
                    self.store = SessionStore()

                def lookup(self, key):
                    return self.store.get(key)
            """,
        },
    )
    index = ProjectIndex(summaries)
    assert (
        ("svc.py", "Handler.lookup"),
        ("store.py", "SessionStore.get"),
    ) in edge_pairs(index)


def test_resolves_bare_and_imported_function_calls(tmp_path):
    summaries = summarize(
        tmp_path,
        {
            "lib.py": """
            def fetch(key):
                return key

            def fetch_twice(key):
                return fetch(key), fetch(key)
            """,
            "svc.py": """
            from lib import fetch

            def serve(key):
                return fetch(key)
            """,
        },
    )
    index = ProjectIndex(summaries)
    pairs = edge_pairs(index)
    # bare name inside its own module, and an alias-expanded import.
    assert (("lib.py", "fetch_twice"), ("lib.py", "fetch")) in pairs
    assert (("svc.py", "serve"), ("lib.py", "fetch")) in pairs


def test_unresolvable_calls_produce_no_edges(tmp_path):
    summaries = summarize(
        tmp_path,
        {
            "svc.py": """
            import json

            def serve(request):
                request.channel.send(request.payload)  # dynamic receiver
                return json.dumps({})  # stdlib, not in the project
            """
        },
    )
    index = ProjectIndex(summaries)
    assert edge_pairs(index) == set()


def test_may_block_propagates_to_transitive_callers(tmp_path):
    summaries = summarize(
        tmp_path,
        {
            "lib.py": """
            import time

            def leaf():
                time.sleep(1)

            def middle():
                return leaf()

            def top():
                return middle()

            def unrelated():
                return 42
            """
        },
    )
    blocking = ProjectIndex(summaries).may_block()
    assert ("lib.py", "leaf") in blocking
    assert ("lib.py", "middle") in blocking
    assert ("lib.py", "top") in blocking
    assert ("lib.py", "unrelated") not in blocking


def test_strongly_connected_finds_cycles_and_singletons():
    graph = {
        "a": {"b"},
        "b": {"a", "c"},
        "c": set(),
    }
    components = strongly_connected(graph)
    assert {"a", "b"} in components
    assert {"c"} in components
    assert len(components) == 2


def test_strongly_connected_is_deterministic():
    graph = {name: set() for name in "zyxw"}
    graph["z"].add("y")
    assert strongly_connected(graph) == strongly_connected(graph)
