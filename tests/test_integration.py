"""End-to-end integration tests across the whole system.

These mirror the production pipeline of Figure 1: generate click data,
build the index offline (including serialization to disk), stand up a
routed serving cluster, drive traffic through it, and check quality and
latency properties — plus the daily index rollout.
"""

from __future__ import annotations

import pytest

from repro.cluster.loadgen import TrafficGenerator, constant_rate
from repro.cluster.simulation import ClusterSimulator
from repro.core.vmis import VMISKNN
from repro.data.split import temporal_split
from repro.eval.evaluator import evaluate_next_item
from repro.index.builder import build_index
from repro.index.serialization import load_index, save_index
from repro.serving.app import ServingCluster
from repro.serving.rules import BusinessRules, exclude_seen_in_session
from repro.serving.server import RecommendationRequest


@pytest.fixture(scope="module")
def pipeline(medium_log, tmp_path_factory):
    """Offline half of Figure 1: build, persist, reload the index."""
    split = temporal_split(medium_log)
    index = build_index(list(split.train), max_sessions_per_item=200)
    path = tmp_path_factory.mktemp("artifacts") / "daily.vmis"
    save_index(index, path)
    return split, load_index(path)


class TestOfflineToOnline:
    def test_full_pipeline_produces_quality_recommendations(self, pipeline):
        split, index = pipeline
        model = VMISKNN(index, m=200, k=100)
        result = evaluate_next_item(
            model, split.test_sequences(), cutoff=20, max_predictions=300
        )
        # On coherent synthetic data, session-kNN must clearly beat noise.
        assert result.mrr > 0.05
        assert result.hit_rate > 0.2

    def test_cluster_serves_consistent_recommendations(self, pipeline):
        _, index = pipeline
        cluster = ServingCluster.with_index(index, num_pods=2, m=200, k=100)
        solo = VMISKNN(index, m=200, k=100, exclude_current_items=True)
        response = cluster.handle(RecommendationRequest("itest-user", 3))
        expected = solo.recommend([3], how_many=42)
        expected_ids = [s.item_id for s in expected][: len(response.items)]
        assert [s.item_id for s in response.items] == expected_ids

    def test_served_items_respect_business_rules(self, pipeline):
        _, index = pipeline
        rules = BusinessRules([exclude_seen_in_session])
        cluster = ServingCluster(
            lambda: VMISKNN(index, m=200, k=100),
            num_pods=2,
            rules=rules,
        )
        cluster.handle(RecommendationRequest("u", 1))
        response = cluster.handle(RecommendationRequest("u", 2))
        assert {s.item_id for s in response.items}.isdisjoint({1, 2})

    def test_load_test_meets_sla_shape(self, pipeline, medium_log):
        _, index = pipeline
        cluster = ServingCluster.with_index(index, num_pods=2, m=200, k=100)
        generator = TrafficGenerator(medium_log, seed=42)
        simulator = ClusterSimulator(cluster, cores_per_pod=3, sla_millis=50)
        result = simulator.run(
            generator.generate(constant_rate(60), duration=10),
            bucket_seconds=5.0,
        )
        assert result.total_requests > 200
        assert result.sla_attainment > 0.95
        assert result.latency.percentile(90) < 0.050

    def test_daily_rollout_changes_behaviour(self, pipeline, medium_log):
        split, index = pipeline
        cluster = ServingCluster.with_index(index, num_pods=1, m=200, k=100)
        # Rebuild with the full log ("next day's" data) and roll out.
        fresh = build_index(list(medium_log), max_sessions_per_item=200)
        cluster.rollout_index(
            lambda: VMISKNN(fresh, m=200, k=100, exclude_current_items=True)
        )
        assert cluster.pods["pod-0"].recommender.index is fresh
        response = cluster.handle(RecommendationRequest("rollout-user", 3))
        assert isinstance(response.items, tuple)
