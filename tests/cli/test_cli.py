"""Tests for the command-line interface."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.cli.main import build_parser, main


@pytest.fixture(scope="module")
def clicks_tsv(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "clicks.tsv"
    code = main(
        [
            "generate",
            "--sessions",
            "1500",
            "--items",
            "300",
            "--seed",
            "3",
            "--out",
            str(path),
        ]
    )
    assert code == 0
    return path


@pytest.fixture(scope="module")
def index_artifact(clicks_tsv, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-idx") / "idx.vmis"
    code = main(["build-index", str(clicks_tsv), "--m", "200", "--out", str(path)])
    assert code == 0
    return path


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_int_list_parsing(self):
        args = build_parser().parse_args(
            ["grid-search", "x.tsv", "--ks", "10,20", "--ms", "5"]
        )
        assert args.ks == [10, 20]
        assert args.ms == [5]

    def test_bad_int_list_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["grid-search", "x.tsv", "--ks", "a,b"])

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["generate", "--profile", "imagenet", "--out", "x"]
            )


class TestCommands:
    def test_generate_profile(self, tmp_path, capsys):
        out = tmp_path / "rr.tsv"
        code = main(
            [
                "generate",
                "--profile",
                "retailrocket-sim",
                "--scale",
                "0.01",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_stats(self, clicks_tsv, capsys):
        assert main(["stats", str(clicks_tsv)]) == 0
        output = capsys.readouterr().out
        assert "p99" in output and "1,500" in output

    def test_build_index_reports_size(self, clicks_tsv, tmp_path, capsys):
        out = tmp_path / "i.vmis"
        assert main(["build-index", str(clicks_tsv), "--out", str(out)]) == 0
        assert "KiB" in capsys.readouterr().out

    def test_build_index_parallel(self, clicks_tsv, tmp_path):
        out = tmp_path / "p.vmis"
        code = main(
            [
                "build-index",
                str(clicks_tsv),
                "--workers",
                "2",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert out.exists()

    def test_recommend(self, index_artifact, capsys):
        code = main(
            ["recommend", str(index_artifact), "--session", "10,11", "--count", "3"]
        )
        assert code == 0
        lines = [ln for ln in capsys.readouterr().out.splitlines() if ln.strip()]
        assert 1 <= len(lines) <= 3
        assert "score" in lines[0]

    def test_evaluate(self, clicks_tsv, capsys):
        code = main(
            [
                "evaluate",
                str(clicks_tsv),
                "--m",
                "200",
                "--max-predictions",
                "100",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "MRR@20" in output and "p90 latency" in output

    def test_evaluate_batched_matches_serial(self, clicks_tsv, capsys):
        serial_args = [
            "evaluate",
            str(clicks_tsv),
            "--m",
            "200",
            "--max-predictions",
            "100",
        ]
        assert main(serial_args) == 0
        serial_out = capsys.readouterr().out
        assert (
            main(serial_args + ["--batch-size", "32", "--workers", "2"]) == 0
        )
        batched_out = capsys.readouterr().out
        assert "cache:" in batched_out

        def metrics(text):
            return [
                line
                for line in text.splitlines()
                if line.startswith(("MRR", "HR", "Prec", "R@", "MAP"))
            ]

        assert metrics(batched_out) == metrics(serial_out)

    def test_evaluate_other_model(self, clicks_tsv, capsys):
        code = main(
            [
                "evaluate",
                str(clicks_tsv),
                "--model",
                "popularity",
                "--max-predictions",
                "50",
            ]
        )
        assert code == 0
        assert "MRR@20" in capsys.readouterr().out

    def test_evaluate_unknown_model(self, clicks_tsv):
        with pytest.raises(ValueError, match="unknown model"):
            main(["evaluate", str(clicks_tsv), "--model", "alexnet"])

    def test_grid_search(self, clicks_tsv, capsys):
        code = main(
            [
                "grid-search",
                str(clicks_tsv),
                "--ks",
                "10,50",
                "--ms",
                "20,100",
                "--max-predictions",
                "50",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "best mrr" in output


class TestIndexLifecycleCommands:
    @pytest.fixture()
    def registry_dir(self, tmp_path):
        return tmp_path / "registry"

    def _build(self, clicks_tsv, registry_dir, m="150"):
        return main(
            [
                "index",
                "build",
                str(clicks_tsv),
                "--registry",
                str(registry_dir),
                "--m",
                m,
            ]
        )

    def test_build_registers_first_version(
        self, clicks_tsv, registry_dir, capsys
    ):
        assert self._build(clicks_tsv, registry_dir) == 0
        out = capsys.readouterr().out
        assert "registered v000001" in out and "sha256" in out
        assert (registry_dir / "v000001" / "index.vmis").exists()
        assert (registry_dir / "v000001" / "manifest.json").exists()

    def test_build_refuses_garbage_log(self, tmp_path, capsys):
        clicks = tmp_path / "bots.tsv"
        rows = ["session_id\titem_id\ttimestamp"]
        # one giant machine-speed session: everything gets quarantined
        rows += [f"1\t{i}\t{i // 10}" for i in range(500)]
        clicks.write_text("\n".join(rows) + "\n")
        code = main(
            ["index", "build", str(clicks), "--registry", str(tmp_path / "r")]
        )
        assert code == 1
        assert "build refused" in capsys.readouterr().out

    def test_promote_first_build_then_list(
        self, clicks_tsv, registry_dir, capsys
    ):
        assert self._build(clicks_tsv, registry_dir) == 0
        code = main(
            [
                "index",
                "promote",
                "--registry",
                str(registry_dir),
                "--clicks",
                str(clicks_tsv),
                "--max-predictions",
                "100",
            ]
        )
        assert code == 0
        assert "promoted v000001" in capsys.readouterr().out
        assert main(["index", "list", "--registry", str(registry_dir)]) == 0
        assert "*CURRENT*" in capsys.readouterr().out

    def test_promote_refuses_degenerate_candidate(
        self, clicks_tsv, registry_dir, tmp_path, capsys
    ):
        # v1: healthy; v2: built from a tiny unrelated log -> gate refusal.
        assert self._build(clicks_tsv, registry_dir) == 0
        tiny = tmp_path / "tiny.tsv"
        tiny.write_text(
            "session_id\titem_id\ttimestamp\n"
            + "".join(f"{s}\t{9000 + s}\t{s * 100}\n" for s in range(20))
        )
        promote = [
            "index",
            "promote",
            "--registry",
            str(registry_dir),
            "--clicks",
            str(clicks_tsv),
            "--max-predictions",
            "100",
        ]
        assert main(promote) == 0
        assert main(["index", "build", str(tiny), "--registry", str(registry_dir)]) == 0
        capsys.readouterr()
        assert main(promote) == 1
        out = capsys.readouterr().out
        assert "promotion refused at gate" in out

    def test_rollback_moves_current_back(
        self, clicks_tsv, registry_dir, capsys
    ):
        promote = [
            "index",
            "promote",
            "--registry",
            str(registry_dir),
            "--clicks",
            str(clicks_tsv),
            "--max-predictions",
            "100",
        ]
        assert self._build(clicks_tsv, registry_dir) == 0
        assert main(promote) == 0
        assert self._build(clicks_tsv, registry_dir) == 0
        assert main(promote) == 0
        capsys.readouterr()
        assert main(["index", "rollback", "--registry", str(registry_dir)]) == 0
        assert "rolled back v000002 -> v000001" in capsys.readouterr().out
        # nothing older than v000001 -> refused
        assert main(["index", "rollback", "--registry", str(registry_dir)]) == 1
        assert "rollback refused" in capsys.readouterr().out

    def test_list_empty_registry(self, tmp_path, capsys):
        code = main(["index", "list", "--registry", str(tmp_path / "empty")])
        assert code == 0
        assert "no versions registered" in capsys.readouterr().out


class TestBenchCommands:
    @pytest.fixture(scope="class")
    def bench_dir(self, tmp_path_factory):
        """One smoke run of the fig3a arm, shared across the class."""
        out = tmp_path_factory.mktemp("bench-cli")
        code = main(
            [
                "bench",
                "run",
                "--arms",
                "fig3a",
                "--profile",
                "smoke",
                "--seed",
                "5",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        return out

    def test_run_writes_record_and_summary(self, bench_dir, capsys):
        capsys.readouterr()
        assert (bench_dir / "BENCH_fig3a.json").exists()
        payload = json.loads((bench_dir / "BENCH_fig3a.json").read_text())
        assert payload["profile"] == "smoke"
        assert payload["seed"] == 5
        assert "latency_p90_ms" in payload["metrics"]

    def test_run_unknown_arm_refused(self, tmp_path, capsys):
        code = main(
            ["bench", "run", "--arms", "fig9z", "--out", str(tmp_path)]
        )
        assert code == 2
        assert "bench run refused" in capsys.readouterr().out

    def test_run_rejects_unknown_profile(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["bench", "run", "--profile", "leisurely"]
            )

    def test_compare_self_passes(self, bench_dir, capsys):
        code = main(
            [
                "bench",
                "compare",
                "--baseline",
                str(bench_dir),
                "--candidate",
                str(bench_dir),
            ]
        )
        assert code == 0
        assert "gate verdict: PASS" in capsys.readouterr().out

    def test_compare_missing_baseline_prompts_commit(
        self, bench_dir, tmp_path, capsys
    ):
        empty = tmp_path / "no-baselines"
        empty.mkdir()
        code = main(
            [
                "bench",
                "compare",
                "--baseline",
                str(empty),
                "--candidate",
                str(bench_dir),
            ]
        )
        assert code == 0
        assert "no committed baseline" in capsys.readouterr().out

    def test_compare_injected_slowdown_fails(self, bench_dir, tmp_path, capsys):
        """The CI demo: a synthetic 2x slowdown must trip the gate."""
        slowed = tmp_path / "slowed"
        slowed.mkdir()
        payload = json.loads((bench_dir / "BENCH_fig3a.json").read_text())
        for name, metric in payload["metrics"].items():
            if name.startswith("latency_"):
                metric["value"] *= 2.0
        (slowed / "BENCH_fig3a.json").write_text(json.dumps(payload))
        code = main(
            [
                "bench",
                "compare",
                "--baseline",
                str(bench_dir),
                "--candidate",
                str(slowed),
            ]
        )
        assert code == 1
        assert "gate verdict: REGRESSION" in capsys.readouterr().out

    def test_compare_update_baseline_commits_new_arm(
        self, bench_dir, tmp_path, capsys
    ):
        baseline = tmp_path / "fresh-baseline"
        baseline.mkdir()
        code = main(
            [
                "bench",
                "compare",
                "--baseline",
                str(baseline),
                "--candidate",
                str(bench_dir),
                "--update-baseline",
            ]
        )
        assert code == 0
        assert "new baseline committed" in capsys.readouterr().out
        assert (baseline / "BENCH_fig3a.json").exists()

    def test_compare_envelope_file_overrides(self, bench_dir, tmp_path, capsys):
        # Zero-width envelopes make even an identical re-read pass, but a
        # tiny wiggle fail — prove the file is honoured.
        wiggled = tmp_path / "wiggled"
        wiggled.mkdir()
        payload = json.loads((bench_dir / "BENCH_fig3a.json").read_text())
        payload["metrics"]["latency_p90_ms"]["value"] *= 1.01
        (wiggled / "BENCH_fig3a.json").write_text(json.dumps(payload))
        envelope_file = tmp_path / "strict.json"
        envelope_file.write_text(
            json.dumps({"latency_p90_ms": {"rel": 0.0, "abs": 0.0}})
        )
        code = main(
            [
                "bench",
                "compare",
                "--baseline",
                str(bench_dir),
                "--candidate",
                str(wiggled),
                "--envelope-file",
                str(envelope_file),
            ]
        )
        assert code == 1

    def test_list_reports_baseline_state(self, bench_dir, tmp_path, capsys):
        assert main(["bench", "list", "--baseline", str(bench_dir)]) == 0
        out = capsys.readouterr().out
        assert "fig3a" in out and "baseline @" in out
        assert main(["bench", "list", "--baseline", str(tmp_path)]) == 0
        assert "no baseline committed" in capsys.readouterr().out


class TestServeCommand:
    def test_serve_starts_and_answers(self, index_artifact, monkeypatch, capsys):
        """Start `repro serve` with a patched sleep that exits immediately
        after we've verified the HTTP surface."""
        import sys

        # `repro.cli.main` the submodule is shadowed by the `main` function
        # re-exported from the package, so fetch it via sys.modules.
        cli_main = sys.modules["repro.cli.main"]

        probe_result = {}

        def fake_sleep(_seconds):
            # Runs on the main thread after the server has started.
            port = probe_result["port"]
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=5
            ) as response:
                probe_result["health"] = json.load(response)
            raise KeyboardInterrupt

        # Intercept the server construction to learn the ephemeral port.
        original = cli_main.__dict__.get("cmd_serve")
        from repro.serving.http import SerenadeHTTPServer

        class ProbingServer(SerenadeHTTPServer):
            def start(self):
                result = super().start()
                probe_result["port"] = self.port
                return result

        monkeypatch.setattr(
            "repro.serving.http.SerenadeHTTPServer", ProbingServer
        )
        monkeypatch.setattr(cli_main.time, "sleep", fake_sleep)
        code = main(
            ["serve", str(index_artifact), "--port", "0", "--pods", "1"]
        )
        assert code == 0
        assert probe_result["health"]["status"] == "ok"
        assert "serving" in capsys.readouterr().out
        del original


class TestSessionizeCommand:
    def test_sessionize_tsv(self, tmp_path, capsys):
        events = tmp_path / "events.tsv"
        events.write_text(
            "user_id\titem_id\ttimestamp\n"
            "1\t10\t0\n1\t11\t100\n1\t12\t4000\n2\t20\t50\n"
        )
        out = tmp_path / "sessions.tsv"
        code = main(["sessionize", str(events), "--gap", "1800", "--out", str(out)])
        assert code == 0
        assert "3 sessions" in capsys.readouterr().out
        from repro.data.clicklog import ClickLog

        log = ClickLog.from_tsv(out)
        assert log.num_sessions() == 3

    def test_sessionize_bad_header(self, tmp_path):
        events = tmp_path / "bad.tsv"
        events.write_text("a\tb\tc\n1\t2\t3\n")
        with pytest.raises(SystemExit, match="bad header"):
            main(["sessionize", str(events), "--out", str(tmp_path / "o.tsv")])


class TestExperimentCommand:
    def test_experiment_from_json(self, tmp_path, capsys):
        config = {
            "name": "cli-exp",
            "dataset": {"sessions": 400, "items": 120, "days": 6, "seed": 1},
            "models": [
                {"name": "vmis", "params": {"m": 50, "k": 20}},
                {"name": "popularity", "params": {}},
            ],
            "protocol": {"max_predictions": 50},
        }
        config_path = tmp_path / "exp.json"
        config_path.write_text(json.dumps(config))
        results_path = tmp_path / "results.json"
        code = main(
            ["experiment", str(config_path), "--out", str(results_path)]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "cli-exp" in output and "vmis" in output
        payload = json.loads(results_path.read_text())
        assert len(payload["outcomes"]) == 2


class TestStreamCommands:
    def produce(self, clicks_tsv, log_dir, *extra):
        return main(
            ["stream", "produce", str(clicks_tsv), "--log-dir", str(log_dir)]
            + list(extra)
        )

    def consume(self, log_dir, out, *extra):
        return main(
            [
                "stream",
                "consume",
                "--log-dir",
                str(log_dir),
                "--out",
                str(out),
                "--m",
                "200",
            ]
            + list(extra)
        )

    def test_produce_then_status_round_trip(self, clicks_tsv, tmp_path, capsys):
        log_dir = tmp_path / "events"
        assert self.produce(clicks_tsv, log_dir, "--partitions", "3") == 0
        produced = capsys.readouterr().out
        assert "published" in produced and "3 partitions" in produced

        assert main(["stream", "status", "--log-dir", str(log_dir)]) == 0
        status = capsys.readouterr().out
        assert "3 partitions" in status
        # Nothing consumed yet: the whole log is lag for the group.
        assert "committed[indexer]        0" in status

    def test_produce_rerun_is_deduplicated(self, clicks_tsv, tmp_path, capsys):
        from repro.data.clicklog import ClickLog
        from repro.streaming import PartitionedLog

        log_dir = tmp_path / "events"
        assert self.produce(clicks_tsv, log_dir) == 0
        capsys.readouterr()
        # The retried publish (same idempotent producer id) re-acks
        # every click without growing the log.
        assert self.produce(clicks_tsv, log_dir) == 0
        assert "0 new" in capsys.readouterr().out
        log = PartitionedLog.open(log_dir)
        assert log.total_records() == len(ClickLog.from_tsv(clicks_tsv).clicks)
        log.close()

    def test_consume_builds_artifact_and_commits(
        self, clicks_tsv, tmp_path, capsys
    ):
        from repro.cli.main import load_index
        from repro.data.clicklog import ClickLog
        from repro.core.index import SessionIndex

        log_dir = tmp_path / "events"
        out = tmp_path / "stream.vmis"
        assert self.produce(clicks_tsv, log_dir) == 0
        capsys.readouterr()

        assert self.consume(log_dir, out, "--flush") == 0
        output = capsys.readouterr().out
        assert "started group 'indexer'" in output
        assert "(flushed)" in output
        assert out.exists()
        assert (tmp_path / "stream.vmis.state.json").exists()

        # The streamed artifact equals the batch build over the same log.
        clicks = ClickLog.from_tsv(clicks_tsv).clicks
        oracle = SessionIndex.from_clicks(clicks, max_sessions_per_item=200)
        streamed = load_index(out)
        assert streamed.session_items == oracle.session_items
        assert streamed.item_to_sessions == oracle.item_to_sessions

        # Offsets committed: status now reports zero lag for the group.
        assert main(["stream", "status", "--log-dir", str(log_dir)]) == 0
        assert "lag 0 events" in capsys.readouterr().out

    def test_consume_resumes_idempotently(self, clicks_tsv, tmp_path, capsys):
        log_dir = tmp_path / "events"
        out = tmp_path / "stream.vmis"
        assert self.produce(clicks_tsv, log_dir) == 0
        assert self.consume(log_dir, out, "--flush") == 0
        capsys.readouterr()
        # Nothing new in the log: the resumed consumer applies nothing.
        assert self.consume(log_dir, out, "--flush") == 0
        resumed = capsys.readouterr().out
        assert "resumed group 'indexer'" in resumed
        assert "applied 0 sessions" in resumed

    def test_refusals(self, clicks_tsv, tmp_path, capsys):
        missing = tmp_path / "nowhere"
        assert main(["stream", "status", "--log-dir", str(missing)]) == 2
        assert "refused" in capsys.readouterr().out
        assert (
            self.consume(missing, tmp_path / "x.vmis") == 2
        )
        assert "refused" in capsys.readouterr().out

        log_dir = tmp_path / "events"
        assert self.produce(clicks_tsv, log_dir) == 0
        capsys.readouterr()
        # Partition count is fixed at creation; a conflicting produce refuses.
        assert self.produce(clicks_tsv, log_dir, "--partitions", "7") == 2
        assert "partition count is fixed" in capsys.readouterr().out
        # lateness > session gap breaks the sealing invariant: refused.
        assert (
            self.consume(
                log_dir,
                tmp_path / "x.vmis",
                "--session-gap",
                "60",
                "--lateness",
                "120",
            )
            == 2
        )
        assert "refused" in capsys.readouterr().out
