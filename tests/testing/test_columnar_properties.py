"""Property suite: the columnar scorer is bit-equal to the heap path.

Three layers of evidence, from broad to adversarial:

* Hypothesis properties over tiny collision-heavy logs — every draw
  compares ``find_neighbors`` and ``recommend`` float for float (via
  ``float.hex``, so a ulp of drift fails loudly).
* The workload-corpus regimes (uniform, skewed, all-tied timestamps,
  bursty, bot-heavy) swept through the differential oracle, which now
  carries ``vmis-columnar`` in its bit-exact family.
* A planted columnar bug — the bounded window copied one entry short —
  demonstrating that the oracle catches a realistic off-by-one and that
  ddmin shrinks it to a readable fixture; the shrunk case is committed
  under ``tests/regressions/`` and replayed by ``test_regressions.py``.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given, settings

from repro.core.colindex import ColumnarSessionIndex, VMISKNNColumnar
from repro.core.index import SessionIndex
from repro.core.vmis import VMISKNN
from repro.testing.generators import WorkloadConfig, WorkloadGenerator
from repro.testing.oracle import (
    DifferentialRunner,
    HyperParams,
    load_regression,
    write_regression,
)
from repro.testing.strategies import click_logs, evolving_sessions, hyperparams

REGRESSIONS = Path(__file__).resolve().parent.parent / "regressions"

#: The adversarial regimes the satellite sweep must cover by name.
REGIMES = {
    "uniform": dict(popularity_exponent=0.0, timestamp_granularity=0.0),
    "skewed": dict(popularity_exponent=1.5, timestamp_granularity=100.0),
    "timestamp-tie-dense": dict(timestamp_granularity=10_000.0),
    "bursty": dict(bursty_fraction=0.6, timestamp_granularity=500.0),
    "bot-heavy": dict(bot_fraction=0.3, bot_item_pool=2),
}


def _paired(clicks, params: HyperParams):
    index = SessionIndex.from_clicks(clicks, max_sessions_per_item=params.m)
    kwargs = dict(
        m=params.m,
        k=params.k,
        decay=params.decay,
        match_weight=params.match_weight,
    )
    heap = VMISKNN(index, **kwargs)
    columnar = VMISKNNColumnar(
        ColumnarSessionIndex.from_session_index(index), **kwargs
    )
    return heap, columnar


def _neighbor_bits(model, query):
    return [(sid, score.hex()) for sid, score in model.find_neighbors(query)]


def _recommend_bits(model, query, how_many=20):
    return [
        (scored.item_id, scored.score.hex())
        for scored in model.recommend(query, how_many=how_many)
    ]


class TestHypothesisBitEquality:
    @given(clicks=click_logs(), query=evolving_sessions(), params=hyperparams())
    def test_find_neighbors_bit_equal(self, clicks, query, params):
        heap, columnar = _paired(clicks, params)
        assert _neighbor_bits(columnar, query) == _neighbor_bits(heap, query)

    @given(clicks=click_logs(), query=evolving_sessions(), params=hyperparams())
    def test_recommend_bit_equal(self, clicks, query, params):
        heap, columnar = _paired(clicks, params)
        assert _recommend_bits(columnar, query) == _recommend_bits(heap, query)

    @given(clicks=click_logs(), query=evolving_sessions(max_length=7))
    @settings(max_examples=25)
    def test_vsknn_style_and_exclusion_bit_equal(self, clicks, query):
        index = SessionIndex.from_clicks(clicks, max_sessions_per_item=3)
        kwargs = dict(
            m=3,
            k=5,
            scoring_style="vsknn",
            exclude_current_items=True,
            max_session_items=3,
        )
        heap = VMISKNN(index, **kwargs)
        columnar = VMISKNNColumnar(
            ColumnarSessionIndex.from_session_index(index), **kwargs
        )
        assert _recommend_bits(columnar, query) == _recommend_bits(heap, query)


class TestRegimeSweep:
    @pytest.mark.parametrize("regime", sorted(REGIMES), ids=str)
    def test_regime_holds_bit_equality(self, regime):
        config = WorkloadConfig(seed=5200 + hash(regime) % 97, **REGIMES[regime])
        generator = WorkloadGenerator(config)
        clicks = generator.clicks()
        queries = generator.query_sessions(4)
        grid = [
            HyperParams(m=2, k=3),
            HyperParams(m=5, k=20, decay="log", match_weight="uniform"),
            HyperParams(m=64, k=1, decay="quadratic"),
        ]
        for params in grid:
            heap, columnar = _paired(clicks, params)
            for query in queries:
                assert _neighbor_bits(columnar, query) == _neighbor_bits(
                    heap, query
                ), f"regime {regime} diverged under {params}"
                assert _recommend_bits(columnar, query) == _recommend_bits(
                    heap, query
                ), f"regime {regime} diverged under {params}"

    def test_oracle_family_includes_columnar(self):
        assert "vmis-columnar" in DifferentialRunner().implementations


def _buggy_columnar_window(clicks, p: HyperParams) -> VMISKNNColumnar:
    """Planted bug: the columnar build copies each window one entry short.

    The realistic failure mode for the layout: an off-by-one in the
    posting-run copy drops the *oldest* eligible neighbour of every item,
    which only shows on queries whose retained sample reaches the end of
    a run — exactly the cases the oracle's corpus is tuned to hit.
    """
    index = SessionIndex.from_clicks(clicks, max_sessions_per_item=p.m)
    clipped = SessionIndex(
        item_to_sessions={
            item: run[:-1] if len(run) > 1 else list(run)
            for item, run in index.item_to_sessions.items()
        },
        session_timestamps=index.session_timestamps,
        session_items=index.session_items,
        item_session_counts=index.item_session_counts,
        max_sessions_per_item=index.max_sessions_per_item,
    )
    return VMISKNNColumnar(
        ColumnarSessionIndex.from_session_index(clipped),
        m=p.m,
        k=p.k,
        decay=p.decay,
        match_weight=p.match_weight,
    )


class TestPlantedColumnarBug:
    """End-to-end: the planted window bug is caught, shrunk and frozen."""

    def _runner(self) -> DifferentialRunner:
        return DifferentialRunner(
            extra_implementations={
                "buggy-columnar-window": _buggy_columnar_window
            }
        )

    def test_bug_is_caught_and_shrunk(self, tmp_path):
        runner = self._runner()
        report = runner.run_corpus(
            [
                WorkloadConfig(seed=5300 + n, num_sessions=8, num_items=4)
                for n in range(10)
            ],
            grid=[HyperParams(m=2, k=20)],
            stop_on_first=True,
        )
        assert not report.equivalent, "the planted bug must be detected"
        case = next(
            d
            for d in report.divergences
            if d.impl_b == "buggy-columnar-window"
        )
        shrunk = runner.shrink(case)
        assert shrunk.impl_b == "buggy-columnar-window"
        assert len(shrunk.clicks) <= 10, shrunk.describe()
        assert len(shrunk.query) <= 5
        assert runner._still_diverges(shrunk, shrunk.clicks, shrunk.query)

        path = write_regression(shrunk, tmp_path)
        reloaded = load_regression(path)
        assert reloaded.clicks == shrunk.clicks
        assert reloaded.output_a == shrunk.output_a

    def test_committed_fixture_still_reproduces(self):
        """The frozen ddmin fixture keeps demonstrating the planted bug
        (the clean-replay side is covered by test_regressions.py)."""
        fixtures = sorted(
            REGRESSIONS.glob("divergence-buggy-columnar-window-*.json")
        )
        assert fixtures, "the shrunk columnar fixture must stay committed"
        runner = self._runner()
        for path in fixtures:
            case = load_regression(path)
            assert runner._still_diverges(case, case.clicks, case.query), (
                f"{path.name} no longer reproduces its planted divergence"
            )
