"""The heavyweight differential suite (``pytest -m differential``).

The acceptance bar of the paper reproduction: VS-kNN (Algorithm 1),
VMIS-kNN (Algorithm 2, both variants) and the batch engine (both shard
strategies) produce *bit-identical* top-20 lists — scores included — on
hundreds of generated workloads across the full hyperparameter grid, and
the study backends rank-match inside their envelope.

Run locally with ``PYTHONPATH=src python -m pytest -m differential`` (takes
tens of seconds); CI pins ``HYPOTHESIS_PROFILE=differential``.
"""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.index import SessionIndex
from repro.core.vmis import VMISKNN
from repro.core.vsknn import VSKNN
from repro.testing.generators import workload_corpus
from repro.testing.oracle import DifferentialRunner, default_grid
from repro.testing.strategies import click_logs, evolving_sessions, hyperparams

pytestmark = pytest.mark.differential


class TestCorpusEquivalence:
    def test_exact_equivalence_across_200_workloads(self):
        """200 seeded workloads x the full 72-point grid, bit-exact."""
        runner = DifferentialRunner(how_many=20)
        report = runner.run_corpus(workload_corpus(200, base_seed=0))
        assert report.workloads == 200
        assert report.comparisons == 200 * len(default_grid()) * 2
        assert report.equivalent, "\n".join(
            d.describe() for d in report.divergences[:5]
        )

    def test_engines_rank_exact_inside_envelope(self):
        """Study backends sweep: rank-equality on envelope grid points."""
        runner = DifferentialRunner(how_many=20, include_engines=True)
        grid = [p for p in default_grid() if p.m == 64]
        report = runner.run_corpus(
            workload_corpus(40, base_seed=9000), grid=grid
        )
        assert report.equivalent, "\n".join(
            d.describe() for d in report.divergences[:5]
        )


class TestPropertyEquivalence:
    """Hypothesis drives the same claim from adversarially tiny inputs."""

    @given(clicks=click_logs(), query=evolving_sessions(), params=hyperparams())
    def test_vsknn_vmis_agree_on_generated_logs(self, clicks, query, params):
        reference = VSKNN(
            SessionIndex.from_clicks(clicks, max_sessions_per_item=2**62),
            m=params.m,
            k=params.k,
            decay=params.decay,
            match_weight=params.match_weight,
            scoring_style="vmis",
        ).recommend(query, how_many=20)
        truncated_index = SessionIndex.from_clicks(
            clicks, max_sessions_per_item=params.m
        )
        for contender in (VMISKNN, VMISKNN.no_opt):
            output = contender(
                truncated_index,
                m=params.m,
                k=params.k,
                decay=params.decay,
                match_weight=params.match_weight,
            ).recommend(query, how_many=20)
            assert [(s.item_id, s.score) for s in output] == [
                (s.item_id, s.score) for s in reference
            ]

    @given(clicks=click_logs(max_sessions=6), query=evolving_sessions())
    def test_oracle_compare_finds_nothing_on_correct_code(self, clicks, query):
        if not clicks:
            return
        runner = DifferentialRunner(how_many=20)
        from repro.testing.oracle import HyperParams

        divergences = runner.compare(clicks, query, HyperParams(m=2, k=3))
        assert divergences == []
