"""Tests for the seeded workload generators."""

from __future__ import annotations

import collections

import pytest

from repro.testing.generators import (
    WorkloadConfig,
    WorkloadGenerator,
    workload_corpus,
)


class TestDeterminism:
    def test_same_config_same_workload(self):
        first = WorkloadGenerator(seed=42)
        second = WorkloadGenerator(WorkloadConfig(seed=42))
        assert first.clicks() == second.clicks()
        assert first.query_sessions(5) == second.query_sessions(5)
        assert list(first.arrival_times(10.0, 5.0)) == list(
            second.arrival_times(10.0, 5.0)
        )

    def test_method_streams_are_independent(self):
        """Calling methods in a different order (or not at all) never
        changes what the other methods produce."""
        ordered = WorkloadGenerator(seed=7)
        clicks_first = ordered.clicks()
        queries_after = ordered.query_sessions(3)

        reordered = WorkloadGenerator(seed=7)
        queries_before = reordered.query_sessions(3)
        clicks_after = reordered.clicks()

        assert clicks_first == clicks_after
        assert queries_after == queries_before

    def test_different_seeds_differ(self):
        assert (
            WorkloadGenerator(seed=1).clicks()
            != WorkloadGenerator(seed=2).clicks()
        )


class TestClickShape:
    def test_session_count_and_item_range(self):
        config = WorkloadConfig(seed=3, num_sessions=20, num_items=10)
        clicks = WorkloadGenerator(config).clicks()
        sessions = {c.session_id for c in clicks}
        assert sessions == set(range(20))
        assert all(0 <= c.item_id < 10 for c in clicks)

    def test_clicks_of_a_session_share_a_timestamp(self):
        clicks = WorkloadGenerator(seed=4).clicks()
        per_session = collections.defaultdict(set)
        for click in clicks:
            per_session[click.session_id].add(click.timestamp)
        assert all(len(stamps) == 1 for stamps in per_session.values())

    def test_granularity_produces_timestamp_ties(self):
        config = WorkloadConfig(
            seed=5, num_sessions=50, timestamp_granularity=2_000.0
        )
        clicks = WorkloadGenerator(config).clicks()
        timestamps = {c.timestamp for c in clicks}
        # 50 sessions collapse onto very few quantised instants.
        assert len(timestamps) < 10
        assert all(t % 2_000.0 == 0 for t in timestamps)

    def test_zero_granularity_keeps_timestamps_distinct(self):
        config = WorkloadConfig(
            seed=5, num_sessions=50, timestamp_granularity=0.0
        )
        clicks = WorkloadGenerator(config).clicks()
        timestamps = {c.timestamp for c in clicks}
        assert len(timestamps) == 50

    def test_popularity_skew_concentrates_head_items(self):
        skewed = WorkloadGenerator(
            WorkloadConfig(seed=6, num_sessions=200, popularity_exponent=1.5)
        ).clicks()
        counts = collections.Counter(c.item_id for c in skewed)
        head = sum(counts[i] for i in range(3))
        # With alpha=1.5 over 25 items, the top-3 items dominate.
        assert head > len(skewed) * 0.4

    def test_bot_sessions_are_long_and_narrow(self):
        config = WorkloadConfig(
            seed=7,
            num_sessions=10,
            bot_fraction=0.2,
            bot_session_length=20,
            bot_item_pool=2,
        )
        clicks = WorkloadGenerator(config).clicks()
        per_session = collections.defaultdict(list)
        for click in clicks:
            per_session[click.session_id].append(click.item_id)
        # Bots occupy the first session ids by construction.
        for bot_id in (0, 1):
            assert len(per_session[bot_id]) == 20
            assert set(per_session[bot_id]) <= {0, 1}
        for human_id in range(2, 10):
            assert len(per_session[human_id]) <= config.max_session_length

    def test_bursty_sessions_share_a_window(self):
        config = WorkloadConfig(
            seed=8,
            num_sessions=40,
            bursty_fraction=0.5,
            timestamp_granularity=500.0,
        )
        clicks = WorkloadGenerator(config).clicks()
        burst_stamps = {
            c.timestamp for c in clicks if c.session_id < 20
        }
        assert len(burst_stamps) <= 2  # one granule (plus boundary spill)


class TestSchedules:
    def test_arrival_times_sorted_and_bounded(self):
        arrivals = list(WorkloadGenerator(seed=9).arrival_times(30.0, 4.0))
        assert arrivals == sorted(arrivals)
        assert all(0.0 < t < 30.0 for t in arrivals)
        # Poisson(4/s over 30s) ~ 120 arrivals; loose deterministic bounds.
        assert 60 < len(arrivals) < 200

    def test_chaos_kill_times_within_window(self):
        plans = WorkloadGenerator(seed=10).chaos_kill_times(
            ["pod-0", "pod-1"], duration=100.0, restart_after=15.0
        )
        assert len(plans) == 2
        assert plans == sorted(plans)
        for at, pod_id, restart in plans:
            assert 20.0 <= at <= 70.0
            assert pod_id in ("pod-0", "pod-1")
            assert restart == at + 15.0


class TestValidationAndCorpus:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(num_sessions=0)
        with pytest.raises(ValueError):
            WorkloadConfig(min_session_length=5, max_session_length=2)
        with pytest.raises(ValueError):
            WorkloadConfig(bot_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadConfig(popularity_exponent=-1.0)

    def test_generator_accepts_overrides(self):
        generator = WorkloadGenerator(seed=11, num_sessions=3)
        assert generator.config.num_sessions == 3
        assert generator.config.seed == 11

    def test_corpus_covers_every_regime_with_distinct_seeds(self):
        corpus = workload_corpus(200, base_seed=1000)
        assert len(corpus) == 200
        assert len({config.seed for config in corpus}) == 200
        # Every regime recurs dozens of times.
        tied = [c for c in corpus if c.timestamp_granularity >= 10_000.0]
        bots = [c for c in corpus if c.bot_fraction > 0]
        tiny = [c for c in corpus if c.num_sessions <= 4]
        assert len(tied) == 25 and len(bots) == 25 and len(tiny) == 25
