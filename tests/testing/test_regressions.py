"""Replay the frozen divergence corpus under ``tests/regressions/``.

Each fixture is a ddmin-shrunk input on which a (planted or historical)
buggy implementation once disagreed with the reference; ``output_a``
pins the correct scores bit-for-bit. The replay asserts two things:
every current implementation agrees on the once-divergent input, and the
reference still produces exactly the pinned output.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.testing.oracle import REFERENCE, DifferentialRunner, load_regression

REGRESSIONS = sorted(
    (Path(__file__).resolve().parent.parent / "regressions").glob("*.json")
)


def test_corpus_is_not_empty():
    assert len(REGRESSIONS) >= 3


@pytest.mark.parametrize("path", REGRESSIONS, ids=lambda p: p.stem)
def test_fixture_replays_clean(path):
    case = load_regression(path)
    runner = DifferentialRunner(how_many=20)

    divergences = runner.compare(case.clicks, case.query, case.params)
    assert divergences == [], divergences[0].describe() if divergences else ""

    reference = runner.implementations[REFERENCE](case.clicks, case.params)
    output = [
        (s.item_id, s.score)
        for s in reference.recommend(case.query, how_many=20)
    ]
    assert output == case.output_a, (
        f"reference output drifted from the pinned scores in {path.name}"
    )


@pytest.mark.parametrize("path", REGRESSIONS, ids=lambda p: p.stem)
def test_fixture_is_minimal(path):
    """Shrunk fixtures stay readable: a handful of clicks, tiny query."""
    case = load_regression(path)
    assert len(case.clicks) <= 10
    assert len(case.query) <= 5
