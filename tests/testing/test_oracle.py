"""Tests for the differential oracle, shrinker and regression corpus."""

from __future__ import annotations

from repro.core.index import SessionIndex
from repro.core.types import Click
from repro.core.vmis import VMISKNN
from repro.testing.generators import WorkloadConfig, workload_corpus
from repro.testing.oracle import (
    DifferentialRunner,
    DivergenceCase,
    HyperParams,
    default_grid,
    load_regression,
    write_regression,
)


def _buggy_truncation(clicks, p):
    """Deliberately wrong VMIS-kNN: truncates the index one session short.

    The classic off-by-one — an index built with ``m - 1`` sessions per
    item silently drops the oldest eligible neighbour.
    """
    index = SessionIndex.from_clicks(
        clicks, max_sessions_per_item=max(1, p.m - 1)
    )
    return VMISKNN(
        index,
        m=max(1, p.m - 1),
        k=p.k,
        decay=p.decay,
        match_weight=p.match_weight,
    )


class TestGrid:
    def test_default_grid_is_the_full_cross_product(self):
        grid = default_grid()
        assert len(grid) == 4 * 3 * 3 * 2
        assert len(set(grid)) == len(grid)
        assert HyperParams(1, 1, "linear", "paper") in grid
        assert HyperParams(64, 20, "log", "uniform") in grid


class TestEquivalence:
    def test_core_implementations_agree_on_a_small_corpus(self):
        report = DifferentialRunner().run_corpus(
            workload_corpus(8, base_seed=4000)
        )
        assert report.workloads == 8
        assert report.comparisons == 8 * len(default_grid()) * 2
        assert report.equivalent, report.divergences[0].describe()

    def test_engines_rank_match_inside_their_envelope(self):
        runner = DifferentialRunner(include_engines=True)
        config = WorkloadConfig(seed=4100, num_sessions=12, num_items=10)
        inside = HyperParams(m=64, k=20, decay="linear", match_weight="paper")
        report = runner.run_corpus([config], grid=[inside])
        assert report.equivalent, report.divergences[0].describe()

    def test_engines_skipped_outside_their_envelope(self):
        """Out-of-envelope grid points must not produce engine comparisons."""
        runner = DifferentialRunner(include_engines=True)
        config = WorkloadConfig(seed=4200, num_sessions=12, num_items=10)
        outside = HyperParams(m=64, k=20, decay="quadratic", match_weight="paper")
        report = runner.run_corpus([config], grid=[outside])
        assert report.equivalent
        engine_cases = [
            d for d in report.divergences if d.impl_b.startswith("engine-")
        ]
        assert engine_cases == []


class TestBugInjectionDemo:
    """End-to-end: a planted scoring bug is caught and shrunk to a
    handful of clicks — the workflow a real divergence would follow."""

    def test_injected_bug_is_caught_and_shrunk(self, tmp_path):
        runner = DifferentialRunner(
            extra_implementations={"buggy-truncation": _buggy_truncation}
        )
        report = runner.run_corpus(
            workload_corpus(20, base_seed=4300),
            grid=[HyperParams(m=2, k=20)],
            stop_on_first=True,
        )
        assert not report.equivalent, "the planted bug must be detected"
        case = next(
            d for d in report.divergences if d.impl_b == "buggy-truncation"
        )

        shrunk = runner.shrink(case)
        assert shrunk.impl_b == "buggy-truncation"
        assert len(shrunk.clicks) <= 5, shrunk.describe()
        assert len(shrunk.query) <= 2
        # The shrunk case still reproduces the divergence on its own.
        assert runner._still_diverges(shrunk, shrunk.clicks, shrunk.query)

        path = write_regression(shrunk, tmp_path)
        reloaded = load_regression(path)
        assert reloaded.clicks == shrunk.clicks
        assert reloaded.query == shrunk.query
        assert reloaded.params == shrunk.params
        assert reloaded.output_a == shrunk.output_a
        assert reloaded.output_b == shrunk.output_b


class TestRegressionFixtures:
    def _case(self) -> DivergenceCase:
        return DivergenceCase(
            clicks=[Click(0, 1, 100.0), Click(1, 1, 100.0)],
            query=[1],
            params=HyperParams(m=1, k=1),
            impl_a="vsknn",
            impl_b="vmis",
            output_a=[(1, 1.0)],
            output_b=[(1, 0.5)],
        )

    def test_write_is_idempotent(self, tmp_path):
        first = write_regression(self._case(), tmp_path)
        second = write_regression(self._case(), tmp_path)
        assert first == second
        assert first.name.startswith("divergence-vmis-")
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_filename_tracks_content(self, tmp_path):
        case = self._case()
        other = self._case()
        other.query = [1, 1]
        assert write_regression(case, tmp_path) != write_regression(
            other, tmp_path
        )
