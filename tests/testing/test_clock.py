"""Tests for the virtual monotonic clock."""

from __future__ import annotations

import pytest

from repro.testing.clock import VirtualClock


class TestVirtualClock:
    def test_reads_like_a_monotonic_clock(self):
        clock = VirtualClock(start=100.0)
        assert clock() == 100.0
        assert clock.now == 100.0

    def test_advance_and_advance_to(self):
        clock = VirtualClock()
        assert clock.advance(1.5) == 1.5
        assert clock.advance_to(4.0) == 4.0
        # Advancing to the past is a no-op, never a rewind.
        assert clock.advance_to(2.0) == 4.0
        assert clock.now == 4.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-0.1)

    def test_sleep_advances_without_blocking(self):
        clock = VirtualClock()
        clock.sleep(3600.0)  # an hour passes instantly
        assert clock.now == 3600.0

    def test_scheduled_callbacks_fire_in_time_order(self):
        clock = VirtualClock()
        fired: list[tuple[str, float]] = []
        clock.schedule(5.0, lambda: fired.append(("b", clock.now)))
        clock.schedule(2.0, lambda: fired.append(("a", clock.now)))
        clock.schedule(9.0, lambda: fired.append(("late", clock.now)))
        clock.advance(6.0)
        # Only the due callbacks fired, each observing its own instant.
        assert fired == [("a", 2.0), ("b", 5.0)]
        assert clock.pending() == 1
        clock.advance(10.0)
        assert fired[-1] == ("late", 9.0)
        assert clock.pending() == 0

    def test_same_instant_callbacks_fire_in_schedule_order(self):
        clock = VirtualClock()
        fired: list[str] = []
        clock.schedule(1.0, lambda: fired.append("first"))
        clock.schedule(1.0, lambda: fired.append("second"))
        clock.advance(2.0)
        assert fired == ["first", "second"]

    def test_callback_may_schedule_further_callbacks(self):
        clock = VirtualClock()
        fired: list[float] = []

        def chain():
            fired.append(clock.now)
            if len(fired) < 3:
                clock.schedule(clock.now + 1.0, chain)

        clock.schedule(1.0, chain)
        clock.advance(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_past_callback_fires_on_next_advance(self):
        clock = VirtualClock(start=10.0)
        fired: list[float] = []
        clock.schedule(5.0, lambda: fired.append(clock.now))
        clock.advance(0.5)
        assert fired == [10.0]  # fired immediately, time never rewinds
