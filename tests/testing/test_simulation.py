"""Deterministic-simulation tests: chaos, stalls and rollouts on virtual time."""

from __future__ import annotations

import pytest

from repro.cluster.chaos import ChaosReport, PodKill
from repro.cluster.loadgen import TimedRequest
from repro.core.index import SessionIndex
from repro.core.types import ScoredItem
from repro.core.vmis import VMISKNN
from repro.serving.app import ServingCluster
from repro.serving.resilience import ResiliencePolicy
from repro.serving.server import RecommendationRequest
from repro.testing.clock import VirtualClock
from repro.testing.generators import WorkloadGenerator
from repro.testing.simulation import SimulatedCluster


@pytest.fixture(scope="module")
def generator() -> WorkloadGenerator:
    return WorkloadGenerator(seed=5, num_sessions=40)


@pytest.fixture(scope="module")
def index(generator) -> SessionIndex:
    return SessionIndex.from_clicks(
        generator.clicks(), max_sessions_per_item=100
    )


def make_arrivals(generator, duration=60.0, rate=3.0, users=7):
    queries = generator.query_sessions(50)
    arrivals = []
    for i, t in enumerate(generator.arrival_times(duration, rate)):
        query = queries[i % len(queries)]
        arrivals.append(
            TimedRequest(
                t,
                RecommendationRequest(
                    session_key=f"u{i % users}", item_id=query[0]
                ),
            )
        )
    return arrivals


def report_key(report: ChaosReport) -> tuple:
    """Everything observable about a chaos run, as a comparable value."""
    return (
        report.total_requests,
        report.failed_requests,
        report.shed_requests,
        report.degraded_requests,
        report.recovered_requests,
        report.recovered_sessions,
        tuple(
            (e.pod_id, e.at_time, e.sessions_lost, e.sessions_recovered)
            for e in report.events
        ),
        tuple(sorted(report.session_moves.items())),
        tuple(sorted(report.recovery_horizon.items())),
        len(report.latency.samples),
    )


class TestChaosDeterminism:
    def test_same_seed_produces_identical_reports(self, generator, index):
        kills = [PodKill(at_time=20.0, pod_id="pod-1", restart_at=35.0)]
        keys = []
        for _ in range(2):
            sim = SimulatedCluster.with_index(
                index, num_pods=3, resilience=ResiliencePolicy()
            )
            report = sim.run(make_arrivals(generator), kills)
            keys.append(report_key(report))
        assert keys[0] == keys[1]

    def test_kills_and_restarts_apply_at_virtual_times(self, generator, index):
        sim = SimulatedCluster.with_index(index, num_pods=3)
        kills = [PodKill(at_time=20.0, pod_id="pod-1", restart_at=35.0)]
        report = sim.run(make_arrivals(generator), kills)

        assert len(report.events) == 1
        event = report.events[0]
        assert event.pod_id == "pod-1"
        assert event.at_time == 20.0
        assert event.sessions_lost > 0  # traffic had reached the pod by t=20
        assert event.restarted_at == 35.0
        assert "pod-1" in sim.cluster.pods  # the restart happened
        # The clock followed the arrival timeline; no wall time elapsed.
        assert 0.0 < sim.clock.now < 60.0
        assert report.failed_requests == 0

    def test_report_runs_in_virtual_time_only(self, generator, index):
        """An hour of traffic replays instantly — the whole point."""
        import time

        sim = SimulatedCluster.with_index(index, num_pods=2)
        arrivals = make_arrivals(generator, duration=3600.0, rate=0.05)
        started = time.monotonic()
        sim.run(arrivals)
        assert time.monotonic() - started < 5.0
        assert sim.clock.now > 3000.0


class StallingRecommender:
    """Models a slow model server: burns virtual budget on every call."""

    def __init__(self, clock: VirtualClock, stall_seconds: float) -> None:
        self.clock = clock
        self.stall_seconds = stall_seconds
        self.calls = 0

    def recommend(self, session_items, how_many=21):
        self.calls += 1
        self.clock.advance(self.stall_seconds)
        return [ScoredItem(1, 1.0)]


class TestVirtualStalls:
    def test_stalls_trip_the_deadline_through_the_full_cluster(self):
        clock = VirtualClock()
        primary = StallingRecommender(clock, stall_seconds=0.2)
        policy = ResiliencePolicy(
            budget_ms=50.0,
            inline_stages=True,
            breaker_min_calls=10_000,  # keep the breaker out of the way
        )
        cluster = ServingCluster(
            lambda: primary,
            num_pods=1,
            resilience=policy,
            clock=clock,
            perf_clock=clock,
            static_items=(ScoredItem(9, 1.0), ScoredItem(8, 0.5)),
        )
        sim = SimulatedCluster(cluster, clock)

        arrivals = [
            TimedRequest(
                float(i), RecommendationRequest(session_key="u0", item_id=1)
            )
            for i in range(1, 6)
        ]
        report = sim.run(arrivals)

        # Every request stalls past its 50 ms budget and is served by the
        # terminal static list instead of failing.
        assert report.failed_requests == 0
        assert primary.calls == 5
        pod = cluster.pods["pod-0"]
        chain = pod.recommender.chain
        assert chain.stages[0].timeouts == 5
        served = pod.recommender.counters.served_by_stage
        assert served.get("static-rules") == 5
        # Service time is the virtual stall, measured by the perf clock.
        assert report.latency.samples == pytest.approx([0.2] * 5)


class TestRolloutOnVirtualTime:
    def test_rollout_completes_without_wall_sleeps(self, index):
        sim = SimulatedCluster.with_index(index, num_pods=4)
        report = sim.run_rollout(
            lambda: VMISKNN(index, m=50, k=10), version="v2"
        )
        assert report.succeeded
        assert len(report.swapped_pods) == 4
        assert sim.cluster.index_version == "v2"

    def test_load_retries_advance_the_clock(self, index):
        sim = SimulatedCluster.with_index(index, num_pods=2)
        attempts = {"n": 0}

        def flaky_factory():
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise RuntimeError("replica load failed")
            return VMISKNN(index, m=50, k=10)

        before = sim.clock.now
        report = sim.run_rollout(flaky_factory, version="v3", seed=11)
        assert report.succeeded
        assert report.load_retries >= 1
        # The retry backoff slept on the virtual clock.
        assert sim.clock.now > before

    def test_same_seed_same_rollout(self, index):
        reports = []
        for _ in range(2):
            sim = SimulatedCluster.with_index(index, num_pods=3)
            report = sim.run_rollout(
                lambda: VMISKNN(index, m=50, k=10), version="v2", seed=7
            )
            reports.append(
                (
                    report.state,
                    tuple(report.canary_pods),
                    tuple(report.swapped_pods),
                    report.load_retries,
                )
            )
        assert reports[0] == reports[1]
