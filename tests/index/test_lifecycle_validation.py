"""Tests for click-log ingestion validation (repro.index.lifecycle.validation)."""

from __future__ import annotations

import pytest

from repro.core.types import Click
from repro.index.lifecycle.validation import (
    ClickLogValidator,
    IngestionPolicy,
    MAX_QUARANTINE_SAMPLES,
    ValidationReport,
    validate_clicks,
)


def session(session_id, items, start=0, gap=30):
    return [
        Click(session_id, item, start + i * gap) for i, item in enumerate(items)
    ]


class TestPolicy:
    def test_defaults_are_valid(self):
        policy = IngestionPolicy()
        assert policy.timestamp_policy == "repair"
        assert policy.bot_policy == "reject"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timestamp_policy": "ignore"},
            {"bot_policy": "maybe"},
            {"max_session_clicks": 0},
            {"max_quarantine_rate": 1.5},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            IngestionPolicy(**kwargs)


class TestCleanInput:
    def test_clean_log_passes_through(self):
        clicks = session(1, [10, 11, 12]) + session(2, [20, 21], start=500)
        clean, report = validate_clicks(clicks)
        assert clean == clicks
        assert report.input_clicks == 5
        assert report.accepted_clicks == 5
        assert report.quarantined_clicks == 0
        assert report.quarantine_rate == 0.0
        assert report.issues == {}
        assert report.acceptable(IngestionPolicy())

    def test_empty_input(self):
        clean, report = validate_clicks([])
        assert clean == []
        assert report.quarantine_rate == 0.0
        assert report.acceptable(IngestionPolicy())

    def test_input_is_never_mutated(self):
        clicks = [Click(1, 10, 100), Click(1, 11, 50)]  # backwards clock
        original = list(clicks)
        validate_clicks(clicks)
        assert clicks == original


class TestMalformedClicks:
    @pytest.mark.parametrize(
        "bad",
        [
            Click(-1, 10, 0),
            Click(1, -10, 0),
            Click(1, 10, -5),
        ],
    )
    def test_negative_fields_quarantined(self, bad):
        clicks = session(2, [20, 21]) + [bad]
        clean, report = validate_clicks(clicks)
        assert bad not in clean
        assert report.issues["malformed"] == 1
        assert report.quarantined_clicks == 1

    def test_sample_retained(self):
        _, report = validate_clicks([Click(-1, 5, 0)])
        assert report.samples[0][0] == "malformed"

    def test_samples_capped(self):
        clicks = [Click(-1, i, 0) for i in range(MAX_QUARANTINE_SAMPLES + 10)]
        _, report = validate_clicks(clicks)
        assert len(report.samples) == MAX_QUARANTINE_SAMPLES
        assert report.issues["malformed"] == MAX_QUARANTINE_SAMPLES + 10


class TestDuplicates:
    def test_tracker_double_fire_dropped(self):
        clicks = [Click(1, 10, 100), Click(1, 10, 100), Click(1, 11, 200)]
        clean, report = validate_clicks(clicks)
        assert len(clean) == 2
        assert report.issues["duplicate"] == 1
        assert report.quarantined_clicks == 1

    def test_same_item_different_time_kept(self):
        clicks = [Click(1, 10, 100), Click(1, 10, 200)]
        clean, report = validate_clicks(clicks)
        assert len(clean) == 2
        assert "duplicate" not in report.issues


class TestNonMonotonicTimestamps:
    def test_repair_clamps_to_running_max(self):
        clicks = [Click(1, 10, 100), Click(1, 11, 40), Click(1, 12, 150)]
        clean, report = validate_clicks(
            clicks, IngestionPolicy(timestamp_policy="repair")
        )
        assert [c.timestamp for c in clean] == [100, 100, 150]
        assert [c.item_id for c in clean] == [10, 11, 12]  # arrival order kept
        assert report.repaired_clicks == 1
        assert report.issues["non_monotonic_repaired"] == 1
        assert report.quarantined_clicks == 0

    def test_reject_quarantines_whole_session(self):
        clicks = [Click(1, 10, 100), Click(1, 11, 40)] + session(2, [20, 21])
        clean, report = validate_clicks(
            clicks, IngestionPolicy(timestamp_policy="reject")
        )
        assert all(c.session_id == 2 for c in clean)
        assert report.quarantined_sessions == 1
        assert report.quarantined_clicks == 2
        assert report.issues["non_monotonic_session"] == 1

    def test_repair_can_create_duplicates_which_dedupe_catches(self):
        # clamping 40 -> 100 collides with the first (item, ts) pair
        clicks = [Click(1, 10, 100), Click(1, 10, 40)]
        clean, report = validate_clicks(clicks)
        assert len(clean) == 1
        assert report.repaired_clicks == 1
        assert report.issues["duplicate"] == 1


class TestBotSessions:
    def test_long_session_rejected(self):
        policy = IngestionPolicy(max_session_clicks=5)
        clicks = session(1, range(10), gap=60) + session(2, [99, 98], start=9_999)
        clean, report = validate_clicks(clicks, policy)
        assert all(c.session_id == 2 for c in clean)
        assert report.issues["bot_session_length"] == 1
        assert report.quarantined_sessions == 1
        assert report.quarantined_clicks == 10

    def test_long_session_truncated_under_repair(self):
        policy = IngestionPolicy(max_session_clicks=5, bot_policy="repair")
        clicks = session(1, range(10), gap=60)
        clean, report = validate_clicks(clicks, policy)
        assert len(clean) == 5
        assert report.issues["bot_truncated"] == 1
        assert report.quarantined_clicks == 5

    def test_machine_speed_session_always_rejected(self):
        # 20 clicks in 2 seconds: inhuman even under the repair policy.
        clicks = [Click(1, i, i // 10) for i in range(20)]
        policy = IngestionPolicy(bot_policy="repair")
        clean, report = validate_clicks(clicks, policy)
        assert clean == []
        assert report.issues["bot_click_rate"] == 1

    def test_short_fast_session_is_not_a_bot(self):
        # below bot_min_clicks the rate check never applies
        clicks = [Click(1, i, i) for i in range(5)]
        clean, report = validate_clicks(clicks)
        assert len(clean) == 5
        assert "bot_click_rate" not in report.issues


class TestReportAccounting:
    def test_every_click_accepted_or_quarantined_exactly_once(self):
        policy = IngestionPolicy(max_session_clicks=5)
        clicks = (
            [Click(-1, 0, 0)]  # malformed
            + [Click(1, 10, 100), Click(1, 10, 100)]  # duplicate
            + [Click(2, 20, 100), Click(2, 21, 40)]  # backwards, repaired
            + session(3, range(10), gap=60)  # bot length, rejected
            + session(4, [7, 8, 9], start=5_000)  # clean
        )
        clean, report = validate_clicks(clicks, policy)
        assert report.input_clicks == len(clicks)
        assert report.accepted_clicks == len(clean)
        assert (
            report.accepted_clicks + report.quarantined_clicks
            == report.input_clicks
        )
        assert report.quarantined_clicks == 1 + 1 + 10

    def test_acceptable_threshold(self):
        report = ValidationReport(input_clicks=100, quarantined_clicks=30)
        assert not report.acceptable(IngestionPolicy(max_quarantine_rate=0.25))
        assert report.acceptable(IngestionPolicy(max_quarantine_rate=0.30))

    def test_summary_is_json_friendly(self):
        import json

        _, report = validate_clicks([Click(-1, 0, 0), Click(1, 1, 1)])
        payload = json.loads(json.dumps(report.summary()))
        assert payload["input_clicks"] == 2
        assert payload["issues"] == {"malformed": 1}

    def test_validator_class_reusable(self):
        validator = ClickLogValidator()
        for _ in range(2):
            clean, report = validator.validate(session(1, [1, 2, 3]))
            assert report.input_clicks == 3
            assert len(clean) == 3
