"""Tests for the ``VMIC`` columnar container and artifact dispatch.

Mirrors the ``VMIS`` corruption suite in ``test_serialization.py``: the
columnar buffers ship through the same hardened envelope (magic, u32
version, length-prefixed JSON header, trailing CRC32), so truncation and
bit flips must surface as ``ValueError`` — never as a silently wrong
index — and the lifecycle registry must version either layout.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.colindex import ColumnarSessionIndex, VMISKNNColumnar
from repro.core.index import SessionIndex
from repro.core.vmis import VMISKNN
from repro.index.lifecycle.registry import IndexRegistry
from repro.index.serialization import (
    deserialize_artifact,
    deserialize_columnar,
    load_artifact,
    save_artifact,
    serialize_artifact,
    serialize_columnar,
)

BUFFER_NAMES = (
    "item_ids",
    "item_frequencies",
    "posting_offsets",
    "posting_sessions",
    "posting_timestamps",
    "session_timestamps",
    "session_item_offsets",
    "session_item_values",
    "session_item_rows",
    "idf_values",
)


@pytest.fixture(scope="module")
def columnar_index(toy_clicks) -> ColumnarSessionIndex:
    return ColumnarSessionIndex.from_clicks(toy_clicks, max_sessions_per_item=10)


def columnar_roundtrip(index: ColumnarSessionIndex) -> ColumnarSessionIndex:
    return deserialize_columnar(serialize_columnar(index))


class TestColumnarRoundtrip:
    def test_every_buffer_survives(self, columnar_index):
        restored = columnar_roundtrip(columnar_index)
        for name in BUFFER_NAMES:
            assert np.array_equal(
                getattr(restored, name), getattr(columnar_index, name)
            ), f"buffer {name} drifted through the roundtrip"
        assert (
            restored.max_sessions_per_item
            == columnar_index.max_sessions_per_item
        )

    def test_float_timestamps_survive_exactly(self, toy_clicks):
        # The legacy VMIS container packs timestamps as u64; the VMIC
        # container stores raw float64, so fractional seconds roundtrip.
        index = SessionIndex.from_clicks(toy_clicks, max_sessions_per_item=10)
        index = SessionIndex(
            item_to_sessions=index.item_to_sessions,
            session_timestamps=[t + 0.25 for t in index.session_timestamps],
            session_items=index.session_items,
            item_session_counts=index.item_session_counts,
            max_sessions_per_item=index.max_sessions_per_item,
        )
        columnar = ColumnarSessionIndex.from_session_index(index)
        restored = columnar_roundtrip(columnar)
        assert np.array_equal(
            restored.session_timestamps, columnar.session_timestamps
        )

    def test_file_roundtrip_via_artifact_api(self, columnar_index, tmp_path):
        path = tmp_path / "index.vmic"
        written = save_artifact(columnar_index, path)
        assert path.stat().st_size == written
        restored = load_artifact(path)
        assert isinstance(restored, ColumnarSessionIndex)
        assert np.array_equal(
            restored.posting_sessions, columnar_index.posting_sessions
        )

    def test_queries_identical_after_roundtrip(self, small_log):
        index = SessionIndex.from_clicks(small_log, max_sessions_per_item=50)
        columnar = ColumnarSessionIndex.from_session_index(index)
        restored = columnar_roundtrip(columnar)
        heap = VMISKNN(index, m=50, k=20)
        model = VMISKNNColumnar(restored, m=50, k=20)
        for sequence in list(small_log.session_item_sequences().values())[:20]:
            prefix = sequence[: max(1, len(sequence) // 2)]
            assert model.recommend(prefix) == heap.recommend(prefix)


class TestArtifactDispatch:
    def test_dispatch_on_type_and_magic(self, toy_index, columnar_index):
        legacy = serialize_artifact(toy_index)
        columnar = serialize_artifact(columnar_index)
        assert legacy[:4] == b"VMIS"
        assert columnar[:4] == b"VMIC"
        assert isinstance(deserialize_artifact(legacy), SessionIndex)
        assert isinstance(
            deserialize_artifact(columnar), ColumnarSessionIndex
        )


class TestColumnarCorruptionDetection:
    def test_bad_magic(self):
        with pytest.raises(ValueError, match="magic"):
            deserialize_columnar(b"NOPE" + b"\x00" * 20)

    def test_legacy_magic_rejected_by_columnar_parser(self, toy_index):
        from repro.index.serialization import serialize_index

        with pytest.raises(ValueError, match="magic"):
            deserialize_columnar(serialize_index(toy_index))

    def test_flipped_byte_detected(self, columnar_index):
        data = bytearray(serialize_columnar(columnar_index))
        data[len(data) // 2] ^= 0xFF
        with pytest.raises(ValueError, match="corrupted"):
            deserialize_columnar(bytes(data))

    def test_unsupported_version(self, columnar_index):
        data = bytearray(serialize_columnar(columnar_index))
        data[4:8] = struct.pack("<I", 99)
        data[-4:] = struct.pack("<I", zlib.crc32(bytes(data[:-4])) & 0xFFFFFFFF)
        with pytest.raises(ValueError, match="version"):
            deserialize_columnar(bytes(data))

    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError):
            deserialize_columnar(b"")

    def test_truncation_at_every_length_raises_cleanly(self, columnar_index):
        """A partial download must always raise ValueError — never
        deserialize into a silently incomplete index."""
        data = serialize_columnar(columnar_index)
        for length in range(len(data)):
            with pytest.raises(ValueError):
                deserialize_columnar(data[:length])

    @given(position=st.integers(0, 10**9), bit=st.integers(0, 7))
    @settings(max_examples=60)
    def test_any_bit_flip_detected(self, columnar_index, position, bit):
        data = bytearray(serialize_columnar(columnar_index))
        data[position % len(data)] ^= 1 << bit
        with pytest.raises(ValueError):
            deserialize_columnar(bytes(data))

    def test_trailing_garbage_detected(self, columnar_index):
        data = serialize_columnar(columnar_index)
        with pytest.raises(ValueError):
            deserialize_columnar(data + b"\x00\x01\x02")


class TestRegistryPromotion:
    def test_columnar_artifact_promotes_and_loads(
        self, columnar_index, tmp_path
    ):
        registry = IndexRegistry(tmp_path / "registry")
        manifest = registry.register(columnar_index)
        assert manifest.num_sessions == columnar_index.num_sessions
        registry.promote(manifest.version)
        loaded, version = registry.load_current()
        assert version == manifest.version
        assert isinstance(loaded, ColumnarSessionIndex)
        assert np.array_equal(
            loaded.posting_sessions, columnar_index.posting_sessions
        )

    def test_mixed_layouts_coexist_and_fall_back(
        self, toy_index, columnar_index, tmp_path
    ):
        """A corrupt columnar CURRENT falls back to the legacy version."""
        registry = IndexRegistry(tmp_path / "registry")
        legacy = registry.register(toy_index)
        columnar = registry.register(columnar_index)
        registry.promote(columnar.version)
        artifact = (
            registry.root / columnar.version / "index.vmis"
        )
        data = bytearray(artifact.read_bytes())
        data[len(data) // 2] ^= 0xFF
        artifact.write_bytes(bytes(data))

        loaded, version = registry.load_current()
        assert version == legacy.version
        assert isinstance(loaded, SessionIndex)
        assert registry.last_fallbacks == [columnar.version]
