"""Tests for the binary index container format."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import SessionIndex
from repro.core.types import Click
from repro.index.serialization import (
    _encode_descending,
    _decode_descending,
    _read_varint,
    _write_varint,
    deserialize_index,
    load_index,
    save_index,
    serialize_index,
)


class TestVarints:
    @given(value=st.integers(0, 2**62))
    def test_varint_roundtrip(self, value):
        buffer = bytearray()
        _write_varint(buffer, value)
        decoded, offset = _read_varint(bytes(buffer), 0)
        assert decoded == value
        assert offset == len(buffer)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            _write_varint(bytearray(), -1)

    @given(
        values=st.lists(st.integers(0, 10**6), min_size=0, max_size=50).map(
            lambda v: sorted(set(v), reverse=True)
        )
    )
    def test_descending_roundtrip(self, values):
        encoded = _encode_descending(values)
        decoded, consumed = _decode_descending(bytes(encoded), 0)
        assert decoded == values
        assert consumed == len(encoded)

    def test_non_descending_rejected(self):
        with pytest.raises(ValueError):
            _encode_descending([1, 2])


def index_roundtrip(index: SessionIndex) -> SessionIndex:
    return deserialize_index(serialize_index(index))


class TestIndexRoundtrip:
    def test_toy_roundtrip(self, toy_index):
        restored = index_roundtrip(toy_index)
        assert restored.item_to_sessions == toy_index.item_to_sessions
        assert restored.session_timestamps == toy_index.session_timestamps
        assert restored.session_items == toy_index.session_items
        assert restored.item_session_counts == toy_index.item_session_counts
        assert restored.max_sessions_per_item == toy_index.max_sessions_per_item

    @given(
        rows=st.lists(
            st.tuples(
                st.integers(0, 9), st.integers(0, 9), st.integers(0, 100_000)
            ),
            min_size=1,
            max_size=60,
        ),
        m=st.integers(1, 12),
    )
    @settings(max_examples=40)
    def test_random_roundtrip(self, rows, m):
        index = SessionIndex.from_clicks(
            [Click(s, i, t) for s, i, t in rows], max_sessions_per_item=m
        )
        restored = index_roundtrip(index)
        assert restored.item_to_sessions == index.item_to_sessions
        assert restored.session_items == index.session_items

    def test_file_roundtrip(self, toy_index, tmp_path):
        path = tmp_path / "index.vmis"
        written = save_index(toy_index, path)
        assert path.stat().st_size == written
        restored = load_index(path)
        assert restored.item_to_sessions == toy_index.item_to_sessions


class TestCorruptionDetection:
    def test_bad_magic(self):
        with pytest.raises(ValueError, match="magic"):
            deserialize_index(b"NOPE" + b"\x00" * 20)

    def test_flipped_byte_detected(self, toy_index):
        data = bytearray(serialize_index(toy_index))
        data[len(data) // 2] ^= 0xFF
        with pytest.raises(ValueError, match="corrupted"):
            deserialize_index(bytes(data))

    def test_unsupported_version(self, toy_index):
        import struct
        import zlib

        data = bytearray(serialize_index(toy_index))
        data[4:8] = struct.pack("<I", 99)
        data[-4:] = struct.pack("<I", zlib.crc32(bytes(data[:-4])) & 0xFFFFFFFF)
        with pytest.raises(ValueError, match="version"):
            deserialize_index(bytes(data))

    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError):
            deserialize_index(b"")

    def test_truncation_at_every_length_raises_cleanly(self, toy_index):
        """A partial download must always raise ValueError — never
        deserialize into a silently incomplete index."""
        data = serialize_index(toy_index)
        for length in range(len(data)):
            with pytest.raises(ValueError):
                deserialize_index(data[:length])

    @given(position=st.integers(0, 10**9), bit=st.integers(0, 7))
    @settings(max_examples=60)
    def test_any_bit_flip_detected(self, toy_index, position, bit):
        data = bytearray(serialize_index(toy_index))
        data[position % len(data)] ^= 1 << bit
        with pytest.raises(ValueError):
            deserialize_index(bytes(data))

    def test_trailing_garbage_detected(self, toy_index):
        data = serialize_index(toy_index)
        with pytest.raises(ValueError):
            deserialize_index(data + b"\x00\x01\x02")

    def test_truncated_file_load_raises(self, toy_index, tmp_path):
        path = tmp_path / "partial.vmis"
        data = serialize_index(toy_index)
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError):
            load_index(path)

    def test_queries_identical_after_roundtrip(self, small_log):
        from repro.core.vmis import VMISKNN

        index = SessionIndex.from_clicks(small_log, max_sessions_per_item=50)
        restored = index_roundtrip(index)
        original_model = VMISKNN(index, m=50, k=20)
        restored_model = VMISKNN(restored, m=50, k=20)
        for sequence in list(small_log.session_item_sequences().values())[:20]:
            prefix = sequence[: max(1, len(sequence) // 2)]
            assert original_model.recommend(prefix) == restored_model.recommend(
                prefix
            )
