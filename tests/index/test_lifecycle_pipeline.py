"""Tests for the daily lifecycle orchestration (repro.index.lifecycle.pipeline)."""

from __future__ import annotations

import pytest

from repro.core.types import Click
from repro.data.split import temporal_split
from repro.index.builder import IndexBuilder
from repro.index.lifecycle import (
    DailyIndexLifecycle,
    GatePolicy,
    IndexRegistry,
    IngestionPolicy,
    RolloutPolicy,
)
from repro.serving.app import ServingCluster


@pytest.fixture(scope="module")
def split(small_log):
    return temporal_split(small_log, test_days=1)


@pytest.fixture(scope="module")
def holdout(split):
    return split.test_sequences()


def make_lifecycle(tmp_path, **kwargs):
    kwargs.setdefault(
        "gate_policy",
        GatePolicy(max_predictions=50, m=100, k=50),
    )
    kwargs.setdefault(
        "rollout_policy",
        RolloutPolicy(canary_probe_requests=5, min_latency_samples=1_000_000),
    )
    return DailyIndexLifecycle(
        IndexRegistry(tmp_path / "registry"),
        max_sessions_per_item=100,
        **kwargs,
    )


class TestBuildAndRegister:
    def test_clean_log_registers_with_provenance(self, tmp_path, split):
        lifecycle = make_lifecycle(tmp_path)
        manifest, report = lifecycle.build_and_register(
            list(split.train), provenance={"click_log": "day-0.tsv"}
        )
        assert manifest is not None
        assert manifest.version == "v000001"
        assert manifest.provenance["click_log"] == "day-0.tsv"
        assert manifest.provenance["validation"]["input_clicks"] > 0
        assert manifest.build_stats["sessions"] == manifest.num_sessions
        assert report.quarantine_rate == 0.0

    def test_untrustworthy_log_refused(self, tmp_path):
        lifecycle = make_lifecycle(
            tmp_path, ingestion_policy=IngestionPolicy(max_quarantine_rate=0.1)
        )
        # one giant machine-speed session: 100% quarantined
        clicks = [Click(1, i, i // 20) for i in range(400)]
        manifest, report = lifecycle.build_and_register(clicks)
        assert manifest is None
        assert report.quarantine_rate == 1.0
        assert lifecycle.registry.versions() == []


class TestPromotion:
    def test_first_promotion_no_cluster(self, tmp_path, split, holdout):
        lifecycle = make_lifecycle(tmp_path)
        manifest, _ = lifecycle.build_and_register(list(split.train))
        outcome = lifecycle.promote(manifest.version, holdout)
        assert outcome.succeeded
        assert outcome.promoted_version == "v000001"
        assert lifecycle.registry.current_version() == "v000001"

    def test_degenerate_candidate_never_promoted(self, tmp_path, split, holdout):
        lifecycle = make_lifecycle(tmp_path)
        manifest, _ = lifecycle.build_and_register(list(split.train))
        lifecycle.promote(manifest.version, holdout)
        # day 2: a truncated export produces an implausible index
        tiny = [Click(s, s % 3, s * 60) for s in range(6)]
        bad_manifest, report = lifecycle.build_and_register(tiny)
        assert bad_manifest is not None  # clean clicks, registers fine
        outcome = lifecycle.promote(bad_manifest.version, holdout)
        assert not outcome.succeeded
        assert outcome.refused_at == "gate"
        assert outcome.refusal_reasons
        assert lifecycle.registry.current_version() == "v000001"


class TestFullRun:
    def test_day_zero_through_rollout(self, tmp_path, split, holdout):
        lifecycle = make_lifecycle(tmp_path)
        day_zero = IndexBuilder(max_sessions_per_item=100).build(
            list(split.train)
        )
        lifecycle.registry.register(day_zero)
        lifecycle.registry.promote("v000001")
        cluster = ServingCluster.with_index(
            lifecycle.registry.load("v000001"),
            num_pods=3,
            m=100,
            k=50,
            index_version="v000001",
        )
        outcome = lifecycle.run(list(split.train), holdout, cluster=cluster)
        assert outcome.succeeded, outcome.refusal_reasons
        assert outcome.validation is not None
        assert outcome.manifest is not None
        assert outcome.gate is not None and outcome.gate.passed
        assert outcome.rollout is not None and outcome.rollout.succeeded
        info = cluster.rollout_info()
        assert info["committed_version"] == outcome.manifest.version
        assert info["consistent"]

    def test_rollout_failure_restores_registry_pointer(
        self, tmp_path, split, holdout, monkeypatch
    ):
        from repro.index.lifecycle import pipeline as pipeline_module

        lifecycle = make_lifecycle(tmp_path)
        first, _ = lifecycle.build_and_register(list(split.train))
        lifecycle.promote(first.version, holdout)
        cluster = ServingCluster.with_index(
            lifecycle.registry.load(first.version),
            num_pods=2,
            m=100,
            k=50,
            index_version=first.version,
        )

        class AlwaysRollback:
            def __init__(self, *args, **kwargs):
                from repro.index.lifecycle.rollout import RolloutController

                self._inner = RolloutController(*args, **kwargs)

            def run(self, factory, version=None, canary_probe=None):
                from repro.index.lifecycle.rollout import CanaryStats

                return self._inner.run(
                    factory,
                    version,
                    canary_probe=lambda _c, _p: CanaryStats(
                        canary_requests=10, canary_failures=10
                    ),
                )

        monkeypatch.setattr(
            pipeline_module, "RolloutController", AlwaysRollback
        )
        outcome = lifecycle.run(list(split.train), holdout, cluster=cluster)
        assert not outcome.succeeded
        assert outcome.refused_at == "rollout"
        # the registry pointer went back with the fleet
        assert lifecycle.registry.current_version() == first.version
        assert outcome.promoted_version == first.version
        assert cluster.rollout_info()["committed_version"] == first.version
        assert cluster.rollback_count == 1
