"""Tests for the staged rolling rollout (repro.index.lifecycle.rollout)."""

from __future__ import annotations

import random

import pytest

from repro.core.index import SessionIndex
from repro.core.vmis import VMISKNN
from repro.index.lifecycle.rollout import (
    CanaryStats,
    RolloutController,
    RolloutError,
    RolloutPolicy,
    RolloutState,
)
from repro.serving.app import ServingCluster
from repro.serving.server import RecommendationRequest


@pytest.fixture()
def cluster(toy_index):
    return ServingCluster.with_index(
        toy_index, num_pods=4, m=10, k=10, index_version="v000001"
    )


def fresh_factory(toy_clicks):
    index = SessionIndex.from_clicks(toy_clicks, max_sessions_per_item=3)
    return lambda: VMISKNN(index, m=3, k=5)


def controller(cluster, **policy_kwargs):
    policy_kwargs.setdefault("canary_probe_requests", 10)
    policy_kwargs.setdefault("min_latency_samples", 1_000_000)  # disable p90
    return RolloutController(
        cluster,
        RolloutPolicy(**policy_kwargs),
        rng=random.Random(0),
        sleep=lambda _s: None,
    )


class TestPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"canary_fraction": 0.0},
            {"canary_fraction": 1.5},
            {"max_load_attempts": 0},
            {"max_p90_regression": 0.5},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RolloutPolicy(**kwargs)


class TestHappyPath:
    def test_full_rollout_converges(self, cluster, toy_clicks):
        report = controller(cluster).run(
            fresh_factory(toy_clicks), version="v000002"
        )
        assert report.succeeded
        assert report.state is RolloutState.COMPLETED
        info = cluster.rollout_info()
        assert info["committed_version"] == "v000002"
        assert info["consistent"]
        assert set(info["pod_versions"].values()) == {"v000002"}
        assert cluster.rollback_count == 0
        assert report.from_version == "v000001"
        assert report.to_version == "v000002"

    def test_canary_is_a_strict_subset(self, cluster, toy_clicks):
        report = controller(cluster, canary_fraction=0.25).run(
            fresh_factory(toy_clicks), version="v000002"
        )
        assert len(report.canary_pods) == 1
        assert set(report.canary_pods) < set(cluster.pods)
        assert len(report.swapped_pods) == len(cluster.pods)

    def test_canary_probe_ran(self, cluster, toy_clicks):
        report = controller(cluster).run(
            fresh_factory(toy_clicks), version="v000002"
        )
        assert report.canary is not None
        assert report.canary.canary_requests > 0
        assert report.canary.canary_failures == 0

    def test_probe_traffic_never_pollutes_sessions(self, cluster, toy_clicks):
        controller(cluster).run(fresh_factory(toy_clicks), version="v000002")
        for server in cluster.pods.values():
            for key in getattr(server.sessions, "keys", lambda: [])():
                assert not str(key).startswith("canary-probe-")

    def test_empty_cluster_raises(self, toy_index, toy_clicks):
        cluster = ServingCluster.with_index(toy_index, num_pods=1, m=10, k=10)
        cluster.pods.clear()
        with pytest.raises(RolloutError):
            controller(cluster).run(fresh_factory(toy_clicks))


class TestLoadFailures:
    def test_transient_load_failure_retried(self, cluster, toy_clicks):
        good = fresh_factory(toy_clicks)
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] % 2 == 1:
                raise OSError("shared storage hiccup")
            return good()

        report = controller(cluster, max_load_attempts=3).run(
            flaky, version="v000002"
        )
        assert report.succeeded
        assert report.load_retries > 0

    def test_persistent_load_failure_rolls_back(self, cluster):
        def broken():
            raise OSError("artifact store down")

        report = controller(cluster, max_load_attempts=2).run(
            broken, version="v000002"
        )
        assert not report.succeeded
        assert report.state is RolloutState.ROLLED_BACK
        assert "failed to load" in report.rollback_reason
        info = cluster.rollout_info()
        assert info["committed_version"] == "v000001"
        assert info["consistent"]
        assert cluster.rollback_count == 1

    def test_backoff_delays_are_jittered_exponential(self, cluster):
        delays = []

        def broken():
            raise OSError("down")

        RolloutController(
            cluster,
            RolloutPolicy(
                max_load_attempts=4,
                backoff_base_seconds=0.1,
                backoff_multiplier=2.0,
                backoff_jitter=0.5,
            ),
            rng=random.Random(42),
            sleep=delays.append,
        ).run(broken, version="v000002")
        assert len(delays) == 3  # attempts - 1 sleeps before giving up
        # each delay within +/- 50% of base * 2^i
        for i, delay in enumerate(delays):
            nominal = 0.1 * (2.0**i)
            assert 0.5 * nominal <= delay <= 1.5 * nominal
        assert len(set(delays)) == len(delays)  # jitter actually applied


class TestUnhealthyReplicas:
    def test_health_check_failure_rolls_back(self, cluster):
        class Broken:
            def recommend(self, session, how_many=21):
                raise RuntimeError("replica cannot answer")

        report = controller(cluster).run(Broken, version="v000002")
        assert not report.succeeded
        assert "health check" in report.rollback_reason
        assert cluster.rollout_info()["committed_version"] == "v000001"


class TestCanaryJudgement:
    def test_error_rate_regression_rolls_back(self, cluster, toy_clicks):
        bad_stats = CanaryStats(canary_requests=40, canary_failures=10)

        report = controller(cluster).run(
            fresh_factory(toy_clicks),
            version="v000002",
            canary_probe=lambda _c, _pods: bad_stats,
        )
        assert not report.succeeded
        assert "error rate" in report.rollback_reason
        info = cluster.rollout_info()
        assert info["committed_version"] == "v000001"
        assert info["consistent"]
        assert cluster.rollback_count == 1

    def test_p90_regression_rolls_back(self, cluster, toy_clicks):
        slow = CanaryStats(
            canary_requests=40,
            baseline_requests=40,
            canary_p90=0.100,
            baseline_p90=0.010,
        )
        report = controller(cluster, max_p90_regression=3.0).run(
            fresh_factory(toy_clicks),
            version="v000002",
            canary_probe=lambda _c, _pods: slow,
        )
        assert not report.succeeded
        assert "p90" in report.rollback_reason

    def test_no_probe_traffic_rolls_back(self, cluster, toy_clicks):
        report = controller(cluster).run(
            fresh_factory(toy_clicks),
            version="v000002",
            canary_probe=lambda _c, _pods: CanaryStats(),
        )
        assert not report.succeeded
        assert "no probe traffic" in report.rollback_reason

    def test_rollback_restores_serving_behaviour(self, cluster, toy_clicks):
        before = cluster.handle(
            RecommendationRequest("rollback-user", 1, consent=False)
        )
        controller(cluster).run(
            fresh_factory(toy_clicks),
            version="v000002",
            canary_probe=lambda _c, _p: CanaryStats(
                canary_requests=10, canary_failures=10
            ),
        )
        after = cluster.handle(
            RecommendationRequest("rollback-user", 1, consent=False)
        )
        assert [s.item_id for s in after.items] == [
            s.item_id for s in before.items
        ]


class TestMidRolloutPodDeath:
    def test_dead_pod_is_skipped_and_converges_on_restart(
        self, cluster, toy_clicks
    ):
        factory = fresh_factory(toy_clicks)
        victim = sorted(cluster.pods)[-1]  # not a canary pod

        def killing_probe(c, pods):
            c.kill_pod(victim)
            return CanaryStats(canary_requests=10, canary_failures=0)

        report = controller(cluster).run(
            factory, version="v000002", canary_probe=killing_probe
        )
        assert report.succeeded
        assert victim in report.skipped_pods
        # the dead pod converges to the committed version when restarted
        cluster.restart_pod(victim)
        info = cluster.rollout_info()
        assert info["pod_versions"][victim] == "v000002"
        assert info["consistent"]


class TestVersionSkewTolerance:
    def test_sessions_served_consistently_mid_rollout(self, cluster, toy_clicks):
        factory = fresh_factory(toy_clicks)

        def probing_probe(c, canary_pods):
            # mid-rollout: canaries on v2, the rest still on v1 — every
            # request must still be answered by the pod owning its key.
            for i in range(20):
                response = c.handle(
                    RecommendationRequest(f"skew-{i}", 1, consent=False)
                )
                assert response.served_by == c.route_live(f"skew-{i}")
            return CanaryStats(canary_requests=10, canary_failures=0)

        report = controller(cluster).run(
            factory, version="v000002", canary_probe=probing_probe
        )
        assert report.succeeded
