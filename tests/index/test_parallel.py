"""Tests for the data-parallel index builder."""

from __future__ import annotations

import pytest

from repro.core.index import SessionIndex
from repro.index.parallel import ParallelIndexBuilder, build_index_parallel


class TestParallelEquivalence:
    def test_inline_build_matches_sequential(self, small_log):
        parallel = build_index_parallel(
            list(small_log), max_sessions_per_item=20, num_workers=1
        )
        direct = SessionIndex.from_clicks(small_log, max_sessions_per_item=20)
        assert parallel.item_to_sessions == direct.item_to_sessions
        assert parallel.session_timestamps == direct.session_timestamps

    def test_multiprocess_build_matches_sequential(self, small_log):
        parallel = build_index_parallel(
            list(small_log), max_sessions_per_item=20, num_workers=2
        )
        direct = SessionIndex.from_clicks(small_log, max_sessions_per_item=20)
        assert parallel.item_to_sessions == direct.item_to_sessions
        assert parallel.session_items == direct.session_items

    def test_partition_count_does_not_change_result(self, small_log):
        few = ParallelIndexBuilder(20, num_workers=1, num_partitions=2).build(
            list(small_log)
        )
        many = ParallelIndexBuilder(20, num_workers=1, num_partitions=16).build(
            list(small_log)
        )
        assert few.item_to_sessions == many.item_to_sessions


class TestValidation:
    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            ParallelIndexBuilder(max_sessions_per_item=0)

    def test_worker_floor(self):
        builder = ParallelIndexBuilder(10, num_workers=-3)
        assert builder.num_workers == 1
