"""Tests for incremental index maintenance."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import Click
from repro.index.maintenance import IncrementalIndexer, rebuild_equivalent


def batched_clicks_strategy():
    """Batches whose session timestamps are strictly increasing across
    batches (each session entirely inside one batch)."""

    @st.composite
    def build(draw):
        num_batches = draw(st.integers(1, 4))
        batches = []
        next_session = 0
        clock = 0
        for _ in range(num_batches):
            num_sessions = draw(st.integers(0, 6))
            batch = []
            for _ in range(num_sessions):
                length = draw(st.integers(1, 5))
                for _ in range(length):
                    clock += draw(st.integers(1, 10))
                    item = draw(st.integers(0, 9))
                    batch.append(Click(next_session, item, clock))
                next_session += 1
            batches.append(batch)
        return batches

    return build()


class TestIncrementalEquivalence:
    @given(batches=batched_clicks_strategy(), m=st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_matches_full_rebuild(self, batches, m):
        indexer = IncrementalIndexer(max_sessions_per_item=m)
        for batch in batches:
            indexer.apply_batch(batch)
        full = rebuild_equivalent(batches, max_sessions_per_item=m)
        assert indexer.index.item_to_sessions == full.item_to_sessions
        assert indexer.index.session_timestamps == full.session_timestamps
        assert indexer.index.session_items == full.session_items
        assert indexer.index.item_session_counts == full.item_session_counts


class TestBatchRules:
    def test_out_of_order_batch_rejected(self):
        indexer = IncrementalIndexer()
        indexer.apply_batch([Click(0, 1, 1000)])
        with pytest.raises(ValueError, match="time-ordered"):
            indexer.apply_batch([Click(1, 2, 500)])

    def test_empty_batch_is_noop(self):
        indexer = IncrementalIndexer()
        assert indexer.apply_batch([]) == 0
        assert indexer.index.num_sessions == 0

    def test_returns_session_count(self):
        indexer = IncrementalIndexer()
        added = indexer.apply_batch(
            [Click(0, 1, 10), Click(0, 2, 11), Click(1, 1, 20)]
        )
        assert added == 2

    def test_idf_updates_after_batch(self):
        indexer = IncrementalIndexer()
        indexer.apply_batch([Click(0, 1, 10)])
        first_idf = indexer.index.idf(1)
        indexer.apply_batch([Click(1, 2, 20)])
        assert indexer.index.idf(1) != first_idf  # |H| grew

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            IncrementalIndexer(max_sessions_per_item=0)

    def test_empty_batch_between_real_batches(self):
        indexer = IncrementalIndexer()
        indexer.apply_batch([Click(0, 1, 10)])
        assert indexer.apply_batch([]) == 0
        indexer.apply_batch([Click(1, 1, 20)])
        assert indexer.index.num_sessions == 2

    def test_rebuild_equivalent_of_nothing_is_empty(self):
        index = rebuild_equivalent([], max_sessions_per_item=5)
        assert index.num_sessions == 0
        assert index.num_items == 0

    def test_rebuild_equivalent_skips_empty_batches(self):
        index = rebuild_equivalent(
            [[], [Click(0, 1, 10)], []], max_sessions_per_item=5
        )
        assert index.num_sessions == 1


class TestCapEviction:
    def test_postings_capped_and_newest_kept(self):
        """When a posting list exceeds m, the oldest sessions fall out —
        the paper keeps the m most recent historic sessions per item."""
        m = 3
        indexer = IncrementalIndexer(max_sessions_per_item=m)
        for session in range(6):
            indexer.apply_batch([Click(session, 7, 100 * (session + 1))])
        postings = indexer.index.item_to_sessions[7]
        assert len(postings) == m
        assert set(postings) == {3, 4, 5}  # the three newest sessions
        timestamps = [indexer.index.session_timestamps[s] for s in postings]
        assert timestamps == sorted(timestamps, reverse=True)  # newest first

    def test_eviction_matches_full_rebuild(self):
        m = 2
        batches = [
            [Click(s, item, s * 50 + i) for i, item in enumerate((1, 2))]
            for s in range(5)
        ]
        indexer = IncrementalIndexer(max_sessions_per_item=m)
        for batch in batches:
            indexer.apply_batch(batch)
        full = rebuild_equivalent(batches, max_sessions_per_item=m)
        assert indexer.index.item_to_sessions == full.item_to_sessions

    def test_eviction_does_not_drop_session_metadata(self):
        """Evicted-from-postings sessions stay resolvable: an old session
        can still appear in another item's (uncapped) posting list."""
        indexer = IncrementalIndexer(max_sessions_per_item=1)
        indexer.apply_batch([Click(0, 1, 10), Click(0, 2, 11)])
        indexer.apply_batch([Click(1, 1, 20)])
        assert indexer.index.item_to_sessions[1] == [1]  # capped, newest only
        assert indexer.index.item_to_sessions[2] == [0]  # still points at 0
        assert indexer.index.session_items[0] == (1, 2)
        assert indexer.index.session_timestamps[0] == 11


class TestAtLeastOnceHardening:
    """The streaming-path guarantees: idempotent replay, stale skipping,
    and replay-protection state that survives a save/load cycle."""

    SESSION = [Click(0, 1, 10), Click(0, 2, 11), Click(0, 1, 12)]

    def test_exact_redelivery_is_an_idempotent_noop(self):
        indexer = IncrementalIndexer(max_sessions_per_item=8)
        indexer.apply_batch(self.SESSION)
        snapshot = (
            dict(indexer.index.item_to_sessions),
            list(indexer.index.session_timestamps),
            dict(indexer.index.item_session_counts),
        )
        added = indexer.apply_batch(self.SESSION)  # crash-replay case
        assert added == 0
        assert indexer.last_report.sessions_skipped_duplicate == 1
        assert (
            dict(indexer.index.item_to_sessions),
            list(indexer.index.session_timestamps),
            dict(indexer.index.item_session_counts),
        ) == snapshot

    def test_changed_session_is_not_a_duplicate(self):
        """Same external id but a different item sequence: not a replay."""
        indexer = IncrementalIndexer()
        indexer.apply_batch(self.SESSION)
        grown = self.SESSION + [Click(0, 3, 13)]
        assert indexer.apply_batch(grown) == 1
        assert indexer.last_report.sessions_skipped_duplicate == 0

    def test_on_stale_skip_counts_instead_of_raising(self):
        indexer = IncrementalIndexer()
        indexer.apply_batch([Click(0, 1, 1000)])
        mixed = [Click(1, 2, 500), Click(2, 3, 1500)]
        added = indexer.apply_batch(mixed, on_stale="skip")
        assert added == 1  # the fresh session went in
        assert indexer.last_report.sessions_skipped_stale == 1
        assert indexer.last_report.sessions_seen == 2
        assert indexer.index.num_sessions == 2

    def test_on_stale_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="on_stale"):
            IncrementalIndexer().apply_batch([], on_stale="ignore")

    def test_applied_fingerprint_keeps_item_repeats(self):
        indexer = IncrementalIndexer()
        indexer.apply_batch(self.SESSION)
        assert indexer.applied_fingerprint(0) == (12, (1, 2, 1))
        assert indexer.applied_fingerprint(99) is None

    def test_state_dict_restore_round_trip(self):
        indexer = IncrementalIndexer(max_sessions_per_item=3)
        indexer.apply_batch(self.SESSION)
        indexer.apply_batch([Click(1, 2, 20)])

        resumed = IncrementalIndexer.restore(
            indexer.index, indexer.state_dict()
        )
        assert resumed.max_sessions_per_item == 3
        # Replay protection carried over: redelivery is still a no-op...
        assert resumed.apply_batch(self.SESSION) == 0
        assert resumed.last_report.sessions_skipped_duplicate == 1
        # ...and genuinely new sessions still apply.
        assert resumed.apply_batch([Click(2, 5, 30)]) == 1
        assert resumed.index.num_sessions == 3

    def test_state_dict_is_json_serialisable(self):
        import json

        indexer = IncrementalIndexer()
        indexer.apply_batch(self.SESSION)
        state = json.loads(json.dumps(indexer.state_dict()))
        resumed = IncrementalIndexer.restore(indexer.index, state)
        assert resumed.applied_fingerprint(0) == (12, (1, 2, 1))
