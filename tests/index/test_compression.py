"""Tests for the compressed query-time index."""

from __future__ import annotations

from repro.core.index import SessionIndex
from repro.core.vmis import VMISKNN
from repro.index.compression import (
    CompressedSessionIndex,
    compression_ratio,
    uncompressed_payload_bytes,
)


class TestInterfaceEquivalence:
    def test_postings_identical(self, toy_index):
        compressed = CompressedSessionIndex.from_index(toy_index)
        for item in toy_index.item_to_sessions:
            assert compressed.sessions_for_item(item) == toy_index.sessions_for_item(
                item
            )

    def test_unknown_item_empty(self, toy_index):
        compressed = CompressedSessionIndex.from_index(toy_index)
        assert compressed.sessions_for_item(999) == []

    def test_items_preserved_as_sets(self, toy_index):
        compressed = CompressedSessionIndex.from_index(toy_index)
        for session_id in range(toy_index.num_sessions):
            assert set(compressed.items_of(session_id)) == set(
                toy_index.items_of(session_id)
            )

    def test_timestamps_and_idf(self, toy_index):
        compressed = CompressedSessionIndex.from_index(toy_index)
        assert compressed.num_sessions == toy_index.num_sessions
        for session_id in range(toy_index.num_sessions):
            assert compressed.timestamp_of(session_id) == toy_index.timestamp_of(
                session_id
            )
        for item in toy_index.item_to_sessions:
            assert compressed.idf(item) == toy_index.idf(item)


class TestQueriesOnCompressedIndex:
    def test_vmis_results_identical(self, small_log):
        index = SessionIndex.from_clicks(small_log, max_sessions_per_item=50)
        compressed = CompressedSessionIndex.from_index(index)
        plain = VMISKNN(index, m=50, k=20)
        packed = VMISKNN(compressed, m=50, k=20)
        for sequence in list(small_log.session_item_sequences().values())[:25]:
            prefix = sequence[: max(1, len(sequence) // 2)]
            assert plain.recommend(prefix) == packed.recommend(prefix)


class TestCompressionWins:
    def test_ratio_above_one(self, small_log):
        index = SessionIndex.from_clicks(small_log, max_sessions_per_item=100)
        compressed = CompressedSessionIndex.from_index(index)
        assert compression_ratio(index, compressed) > 1.5
        assert compressed.compressed_bytes() < uncompressed_payload_bytes(index)

    def test_cache_eviction(self, toy_index):
        compressed = CompressedSessionIndex.from_index(toy_index, cache_size=2)
        for item in list(toy_index.item_to_sessions)[:4]:
            compressed.sessions_for_item(item)
        assert len(compressed._cache) <= 2

    def test_cache_hit_returns_same_list(self, toy_index):
        compressed = CompressedSessionIndex.from_index(toy_index)
        first = compressed.sessions_for_item(1)
        second = compressed.sessions_for_item(1)
        assert first is second  # cached object reused
