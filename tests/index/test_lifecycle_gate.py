"""Tests for the canary quality gate (repro.index.lifecycle.gate)."""

from __future__ import annotations

import pytest

from repro.core.index import SessionIndex
from repro.core.types import Click
from repro.data.split import temporal_split
from repro.index.builder import IndexBuilder
from repro.index.lifecycle.gate import CanaryQualityGate, GatePolicy


@pytest.fixture(scope="module")
def split(small_log):
    return temporal_split(small_log, test_days=1)


@pytest.fixture(scope="module")
def holdout(split):
    return split.test_sequences()


@pytest.fixture(scope="module")
def healthy_index(split):
    return IndexBuilder(max_sessions_per_item=100).build(list(split.train))


def tiny_index(num_sessions=3, num_items=2):
    clicks = [
        Click(s, i % num_items, s * 100 + i)
        for s in range(num_sessions)
        for i in range(2)
    ]
    return SessionIndex.from_clicks(clicks, max_sessions_per_item=10)


class TestPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_recall_drop": -0.1},
            {"max_mrr_drop": 2.0},
            {"min_coverage_ratio": 1.5},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GatePolicy(**kwargs)


class TestStructuralChecks:
    def test_first_build_passes_on_structure_only(self, healthy_index, holdout):
        gate = CanaryQualityGate(GatePolicy(max_predictions=50))
        report = gate.evaluate(healthy_index, holdout, current=None)
        assert report.passed
        names = [c.name for c in report.checks]
        assert "first_build" in names
        assert report.baseline_metrics == {}
        assert report.candidate_metrics["predictions"] > 0

    def test_truncated_export_refused(self, holdout):
        gate = CanaryQualityGate(GatePolicy(min_sessions=10, min_items=5))
        report = gate.evaluate(tiny_index(), holdout, current=None)
        assert not report.passed
        failed = {c.name for c in report.checks if not c.passed}
        assert "min_sessions" in failed
        # quality evaluation short-circuits on structural failure
        assert report.candidate_metrics == {}
        assert any("min_sessions" in reason for reason in report.reasons())

    def test_catalogue_loss_refused(self, healthy_index, holdout):
        # candidate covering ~none of the current catalogue
        offset_clicks = [
            Click(s, 100_000 + i, s * 50 + i) for s in range(40) for i in range(3)
        ]
        candidate = SessionIndex.from_clicks(
            offset_clicks, max_sessions_per_item=50
        )
        gate = CanaryQualityGate(GatePolicy(min_coverage_ratio=0.5))
        report = gate.evaluate(candidate, holdout, current=healthy_index)
        failed = {c.name for c in report.checks if not c.passed}
        assert "item_coverage" in failed

    def test_posting_bound_violation_refused(self, holdout):
        index = tiny_index(num_sessions=30)
        # simulate a buggy build: posting lists longer than the declared m
        index.max_sessions_per_item = 1
        gate = CanaryQualityGate(GatePolicy(min_sessions=1, min_items=1))
        report = gate.evaluate(index, holdout, current=None)
        failed = {c.name for c in report.checks if not c.passed}
        assert "posting_bounds" in failed


class TestQualityChecks:
    def test_equivalent_candidate_passes(self, healthy_index, holdout):
        gate = CanaryQualityGate(GatePolicy(max_predictions=50))
        report = gate.evaluate(healthy_index, holdout, current=healthy_index)
        assert report.passed
        assert report.candidate_metrics["recall"] == pytest.approx(
            report.baseline_metrics["recall"]
        )

    def test_degraded_candidate_refused(self, healthy_index, split, holdout):
        # candidate built from 5% of the training data: measurably worse
        train = list(split.train)
        starved = IndexBuilder(max_sessions_per_item=100).build(
            train[: len(train) // 20]
        )
        gate = CanaryQualityGate(
            GatePolicy(
                max_recall_drop=0.05,
                max_mrr_drop=0.05,
                min_coverage_ratio=0.0,
                min_sessions=1,
                min_items=1,
                max_predictions=100,
            )
        )
        report = gate.evaluate(starved, holdout, current=healthy_index)
        assert not report.passed
        failed = {c.name for c in report.checks if not c.passed}
        assert failed & {"recall_delta", "mrr_delta"}

    def test_summary_shape(self, healthy_index, holdout):
        import json

        gate = CanaryQualityGate(GatePolicy(max_predictions=20))
        report = gate.evaluate(healthy_index, holdout, current=healthy_index)
        payload = json.loads(json.dumps(report.summary()))
        assert payload["passed"] is True
        assert {c["name"] for c in payload["checks"]} >= {
            "min_sessions",
            "recall_delta",
            "mrr_delta",
        }
