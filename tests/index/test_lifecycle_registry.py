"""Tests for the versioned index registry (repro.index.lifecycle.registry)."""

from __future__ import annotations

import json

import pytest

from repro.core.types import Click
from repro.index.builder import IndexBuilder
from repro.index.lifecycle.registry import (
    ARTIFACT_NAME,
    CURRENT_POINTER,
    IndexManifest,
    IndexRegistry,
    MANIFEST_NAME,
    RegistryError,
    atomic_write_bytes,
)


def make_index(num_sessions=20, offset=0):
    clicks = [
        Click(s, (s + i + offset) % 17, s * 100 + i * 10)
        for s in range(num_sessions)
        for i in range(3)
    ]
    return IndexBuilder(max_sessions_per_item=50).build(clicks)


@pytest.fixture()
def registry(tmp_path):
    return IndexRegistry(tmp_path / "registry", clock=lambda: 1_700_000_000.0)


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "file.bin"
        atomic_write_bytes(target, b"one")
        atomic_write_bytes(target, b"two")
        assert target.read_bytes() == b"two"
        assert not target.with_name("file.bin.tmp").exists()


class TestRegistration:
    def test_first_version_layout(self, registry):
        manifest = registry.register(make_index())
        assert manifest.version == "v000001"
        directory = registry.root / "v000001"
        assert (directory / ARTIFACT_NAME).exists()
        assert (directory / MANIFEST_NAME).exists()
        assert manifest.created_at == 1_700_000_000.0

    def test_versions_are_sequential_and_sorted(self, registry):
        for _ in range(3):
            registry.register(make_index())
        assert registry.versions() == ["v000001", "v000002", "v000003"]

    def test_manifest_round_trip(self, registry):
        registered = registry.register(
            make_index(),
            build_stats={"sessions": 20},
            provenance={"click_log": "day.tsv"},
        )
        loaded = registry.manifest("v000001")
        assert loaded == registered
        assert loaded.build_stats["sessions"] == 20
        assert loaded.provenance["click_log"] == "day.tsv"

    def test_manifest_checksum_matches_artifact(self, registry):
        import hashlib

        manifest = registry.register(make_index())
        data = (registry.root / "v000001" / ARTIFACT_NAME).read_bytes()
        assert hashlib.sha256(data).hexdigest() == manifest.checksum_sha256
        assert len(data) == manifest.artifact_bytes

    def test_manifest_from_json_ignores_unknown_keys(self):
        manifest = IndexManifest(
            version="v000001",
            checksum_sha256="ab",
            artifact_bytes=1,
            created_at=0.0,
            num_sessions=1,
            num_items=1,
            max_sessions_per_item=5,
        )
        payload = json.loads(manifest.to_json())
        payload["added_by_future_release"] = True
        restored = IndexManifest.from_json(json.dumps(payload))
        assert restored == manifest

    def test_missing_manifest_raises(self, registry):
        with pytest.raises(RegistryError, match="no manifest"):
            registry.manifest("v000042")


class TestPromotion:
    def test_promote_and_current(self, registry):
        registry.register(make_index())
        assert registry.current_version() is None
        registry.promote("v000001")
        assert registry.current_version() == "v000001"
        assert (registry.root / CURRENT_POINTER).exists()

    def test_promote_unknown_version_refused(self, registry):
        with pytest.raises(RegistryError, match="unknown version"):
            registry.promote("v000099")

    def test_rollback_walks_to_previous_good(self, registry):
        for _ in range(3):
            registry.register(make_index())
        registry.promote("v000003")
        assert registry.rollback() == "v000002"
        assert registry.current_version() == "v000002"

    def test_rollback_skips_corrupt_predecessor(self, registry):
        for _ in range(3):
            registry.register(make_index())
        registry.promote("v000003")
        artifact = registry.root / "v000002" / ARTIFACT_NAME
        artifact.write_bytes(b"\x00corrupt")
        assert registry.rollback() == "v000001"

    def test_rollback_without_promotion_refused(self, registry):
        registry.register(make_index())
        with pytest.raises(RegistryError, match="nothing promoted"):
            registry.rollback()

    def test_rollback_with_no_older_version_refused(self, registry):
        registry.register(make_index())
        registry.promote("v000001")
        with pytest.raises(RegistryError, match="no good version"):
            registry.rollback()


class TestLoading:
    def test_load_round_trips_the_index(self, registry):
        index = make_index()
        registry.register(index)
        loaded = registry.load("v000001")
        assert loaded.num_sessions == index.num_sessions
        assert loaded.item_to_sessions == index.item_to_sessions

    def test_load_detects_corruption_before_deserialize(self, registry):
        registry.register(make_index())
        artifact = registry.root / "v000001" / ARTIFACT_NAME
        data = bytearray(artifact.read_bytes())
        data[len(data) // 2] ^= 0xFF
        artifact.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="corrupted"):
            registry.load("v000001")

    def test_verify(self, registry):
        registry.register(make_index())
        assert registry.verify("v000001")
        (registry.root / "v000001" / ARTIFACT_NAME).write_bytes(b"junk")
        assert not registry.verify("v000001")
        assert not registry.verify("v000099")

    def test_load_current_happy_path(self, registry):
        registry.register(make_index())
        registry.promote("v000001")
        _, version = registry.load_current()
        assert version == "v000001"
        assert registry.last_fallbacks == []

    def test_load_current_falls_back_past_corrupt_current(self, registry):
        good = make_index()
        registry.register(good)
        registry.register(make_index(offset=3))
        registry.promote("v000002")
        (registry.root / "v000002" / ARTIFACT_NAME).write_bytes(b"garbage")
        index, version = registry.load_current()
        assert version == "v000001"
        assert registry.last_fallbacks == ["v000002"]
        assert index.item_to_sessions == good.item_to_sessions

    def test_load_current_all_corrupt_raises(self, registry):
        registry.register(make_index())
        registry.promote("v000001")
        (registry.root / "v000001" / ARTIFACT_NAME).write_bytes(b"zz")
        with pytest.raises(RegistryError, match="no loadable version"):
            registry.load_current()

    def test_load_current_before_promotion_raises(self, registry):
        registry.register(make_index())
        with pytest.raises(RegistryError, match="nothing promoted"):
            registry.load_current()


class TestPrune:
    def test_prune_keeps_newest_and_current(self, registry):
        for _ in range(5):
            registry.register(make_index())
        registry.promote("v000002")
        removed = registry.prune(keep=2)
        assert removed == ["v000001"]  # v000002 is current, v000003 > keep cut
        assert registry.versions() == ["v000002", "v000003", "v000004", "v000005"]

    def test_prune_validates_keep(self, registry):
        with pytest.raises(ValueError):
            registry.prune(keep=0)
