"""Tests for the offline index build pipeline."""

from __future__ import annotations

import pytest

from repro.core.index import SessionIndex
from repro.core.types import Click
from repro.index.builder import IndexBuilder, build_index


class TestBuilderEquivalence:
    def test_matches_direct_construction(self, small_log):
        via_builder = build_index(list(small_log), max_sessions_per_item=20)
        direct = SessionIndex.from_clicks(small_log, max_sessions_per_item=20)
        assert via_builder.item_to_sessions == direct.item_to_sessions
        assert via_builder.session_timestamps == direct.session_timestamps
        assert via_builder.session_items == direct.session_items
        assert via_builder.item_session_counts == direct.item_session_counts


class TestBuildReport:
    def test_report_counts(self, toy_clicks):
        builder = IndexBuilder(max_sessions_per_item=2)
        index = builder.build(toy_clicks)
        report = builder.last_report
        assert report.input_clicks == len(toy_clicks)
        assert report.sessions == 6
        assert report.distinct_items == 5
        assert report.postings_after_truncation == sum(
            len(v) for v in index.item_to_sessions.values()
        )
        assert report.postings_after_truncation <= report.postings_before_truncation
        assert 0.0 < report.truncation_ratio <= 1.0

    def test_stage_timings_recorded(self, toy_clicks):
        builder = IndexBuilder()
        builder.build(toy_clicks)
        assert set(builder.last_report.stage_seconds) == {
            "sessionize",
            "assign_ids",
            "invert_and_pack",
        }


class TestMinSessionLength:
    def test_short_sessions_dropped(self):
        clicks = [Click(0, 1, 10), Click(1, 1, 20), Click(1, 2, 30)]
        index = IndexBuilder(min_session_length=2).build(clicks)
        assert index.num_sessions == 1

    def test_default_keeps_everything(self):
        clicks = [Click(0, 1, 10), Click(1, 2, 20)]
        assert build_index(clicks).num_sessions == 2


class TestValidation:
    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            IndexBuilder(max_sessions_per_item=0)
