"""Tests for index capacity planning."""

from __future__ import annotations

import pytest

from repro.core.index import SessionIndex
from repro.index.capacity import (
    CPYTHON,
    NATIVE,
    estimate_capacity,
    extrapolate,
    measure_index,
)


class TestEstimate:
    def test_components_sum_to_total(self):
        estimate = estimate_capacity(
            sessions=100, items=50, postings=400, stored_session_items=300
        )
        assert estimate.total_bytes == pytest.approx(
            estimate.posting_bytes
            + estimate.session_item_bytes
            + estimate.timestamp_bytes
            + estimate.overhead_bytes
        )

    def test_schedules_differ(self):
        native = estimate_capacity(100, 50, 400, 300, schedule=NATIVE)
        cpython = estimate_capacity(100, 50, 400, 300, schedule=CPYTHON)
        assert cpython.total_bytes > native.total_bytes

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            estimate_capacity(-1, 1, 1, 1)

    def test_render_contains_total(self):
        estimate = estimate_capacity(100, 50, 400, 300)
        assert "TOTAL" in estimate.render()


class TestMeasure:
    def test_counts_match_profile(self, toy_index):
        estimate = measure_index(toy_index)
        profile = toy_index.memory_profile()
        assert estimate.sessions == profile["num_sessions"]
        assert estimate.postings == profile["posting_entries"]


class TestExtrapolate:
    def test_linear_in_sessions(self, small_log):
        index = SessionIndex.from_clicks(small_log, max_sessions_per_item=10**6)
        base = extrapolate(index, target_sessions=10_000, target_items=index.num_items)
        double = extrapolate(
            index, target_sessions=20_000, target_items=index.num_items
        )
        # Timestamps and stored items double; postings grow (unsaturated).
        assert double.timestamp_bytes == pytest.approx(2 * base.timestamp_bytes)
        assert double.stored_session_items == pytest.approx(
            2 * base.stored_session_items, rel=1e-6
        )
        assert double.postings > base.postings

    def test_posting_saturation_at_m(self, small_log):
        index = SessionIndex.from_clicks(small_log, max_sessions_per_item=5)
        estimate = extrapolate(
            index,
            target_sessions=10**7,
            target_items=index.num_items,
            max_sessions_per_item=5,
        )
        # Every posting list is clipped at m: postings <= items * m.
        assert estimate.postings <= index.num_items * 5

    def test_validation(self, toy_index):
        with pytest.raises(ValueError):
            extrapolate(toy_index, target_sessions=0, target_items=10)

    def test_paper_scale_order_of_magnitude(self, medium_log):
        """§4.2: ~111M sessions / 6.5M items need "around 13 gigabytes".
        The extrapolation from a small sample must land in the right
        order of magnitude (single-digit to low-tens of GiB)."""
        index = SessionIndex.from_clicks(medium_log, max_sessions_per_item=500)
        estimate = extrapolate(
            index, target_sessions=111_000_000, target_items=6_500_000
        )
        assert 1.0 < estimate.total_gigabytes < 40.0
