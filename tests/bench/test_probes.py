"""Latency/memory probes and provenance helpers."""

from __future__ import annotations

import tracemalloc

import pytest

from repro.bench.probes import (
    LatencyProbe,
    MemoryProbe,
    current_git_sha,
    fingerprint_env,
    percentile,
)


class FakeClock:
    """Deterministic clock: each call advances by the next step."""

    def __init__(self, steps):
        self._steps = iter(steps)
        self._now = 0.0

    def __call__(self) -> float:
        self._now += next(self._steps, 0.0)
        return self._now


class TestPercentile:
    def test_nearest_rank(self):
        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 50) == 3.0
        assert percentile(samples, 100) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no samples"):
            percentile([], 50)


class TestLatencyProbe:
    def test_sample_uses_injected_clock(self):
        probe = LatencyProbe(clock=FakeClock([0.0, 0.25, 0.0, 0.75]))
        assert probe.sample(lambda: "x") == "x"
        probe.sample(lambda: None)
        assert probe.samples == [0.25, 0.75]
        assert probe.percentile_ms(100) == 750.0
        assert probe.total_seconds() == 1.0
        assert probe.throughput_rps() == 2.0

    def test_sla_attainment(self):
        probe = LatencyProbe()
        for seconds in (0.01, 0.02, 0.2):
            probe.record(seconds)
        assert probe.sla_attainment(50.0) == pytest.approx(2 / 3)

    def test_merge_best_keeps_per_position_minimum(self):
        first = LatencyProbe()
        second = LatencyProbe()
        for value in (3.0, 1.0):
            first.record(value)
        for value in (2.0, 2.0):
            second.record(value)
        first.merge_best(second)
        assert first.samples == [2.0, 1.0]

    def test_merge_best_rejects_length_mismatch(self):
        first, second = LatencyProbe(), LatencyProbe()
        first.record(1.0)
        with pytest.raises(ValueError, match="same call sequence"):
            first.merge_best(second)

    def test_empty_probe_rejects_reduction(self):
        probe = LatencyProbe()
        with pytest.raises(ValueError):
            probe.percentile_ms(90)
        with pytest.raises(ValueError):
            probe.throughput_rps()
        with pytest.raises(ValueError):
            probe.sla_attainment(50.0)


class TestMemoryProbe:
    def test_captures_peak(self):
        with MemoryProbe() as probe:
            blob = bytearray(4_000_000)
            del blob
        assert probe.peak_bytes >= 4_000_000

    def test_nesting_leaves_outer_trace_running(self):
        was_tracing = tracemalloc.is_tracing()
        if not was_tracing:
            tracemalloc.start()
        try:
            with MemoryProbe():
                pass
            assert tracemalloc.is_tracing()
        finally:
            if not was_tracing:
                tracemalloc.stop()


class TestProvenance:
    def test_fingerprint_shape(self):
        env = fingerprint_env()
        assert set(env) == {
            "python",
            "implementation",
            "platform",
            "machine",
            "cpu_count",
        }
        assert env["cpu_count"] >= 1

    def test_git_sha_inside_repo(self):
        sha = current_git_sha()
        assert sha == "unknown" or len(sha) == 40

    def test_git_sha_outside_repo(self, tmp_path):
        assert current_git_sha(root=str(tmp_path)) == "unknown"
