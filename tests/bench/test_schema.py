"""BENCH_*.json schema: round-trips, versioning, validation."""

from __future__ import annotations

import json

import pytest

from repro.bench.schema import (
    CORE_METRICS,
    HIGHER,
    LOWER,
    SCHEMA_VERSION,
    BenchRecord,
    BenchSchemaError,
    Metric,
    iter_record_paths,
    load_record,
    record_filename,
    record_from_dict,
    record_path,
    save_record,
    validate_record,
)


def make_record(arm="fig3a", **metric_overrides) -> BenchRecord:
    values = {
        "latency_p50_ms": 1.0,
        "latency_p90_ms": 2.0,
        "latency_p99_ms": 4.0,
        "throughput_rps": 1000.0,
        "sla_attainment": 1.0,
        "peak_memory_bytes": 10_000_000.0,
    }
    values.update(metric_overrides)
    metrics = {
        name: Metric(
            value,
            unit="ms" if "ms" in name else "",
            direction=(
                HIGHER
                if name in ("throughput_rps", "sla_attainment")
                else LOWER
            ),
        )
        for name, value in values.items()
    }
    return BenchRecord(
        arm=arm,
        profile="quick",
        seed=2022,
        git_sha="deadbeef",
        created_unix=1_700_000_000.0,
        env={"python": "3.11.7"},
        workload={"sessions": 8000},
        metrics=metrics,
        notes=("test record",),
    )


class TestRoundTrip:
    def test_dict_round_trip(self):
        record = make_record()
        clone = record_from_dict(record.to_dict())
        assert clone == record

    def test_json_round_trip(self, tmp_path):
        record = make_record()
        path = save_record(record, tmp_path)
        assert path == record_path(tmp_path, "fig3a")
        assert load_record(path) == record

    def test_filename_layout(self):
        assert record_filename("capacity") == "BENCH_capacity.json"

    def test_iter_record_paths(self, tmp_path):
        save_record(make_record("fig3a"), tmp_path)
        save_record(make_record("capacity"), tmp_path)
        (tmp_path / "unrelated.json").write_text("{}")
        arms = [arm for arm, _ in iter_record_paths(tmp_path)]
        assert arms == ["capacity", "fig3a"]

    def test_iter_missing_directory(self, tmp_path):
        assert list(iter_record_paths(tmp_path / "nope")) == []


class TestValidation:
    def test_core_metrics_enforced(self):
        record = make_record()
        validate_record(record)  # fine as built
        crippled = BenchRecord(
            arm=record.arm,
            profile=record.profile,
            seed=record.seed,
            git_sha=record.git_sha,
            created_unix=record.created_unix,
            env=record.env,
            workload=record.workload,
            metrics={
                k: v
                for k, v in record.metrics.items()
                if k != "latency_p90_ms"
            },
        )
        with pytest.raises(BenchSchemaError, match="latency_p90_ms"):
            validate_record(crippled)

    def test_all_core_metrics_named(self):
        record = make_record()
        assert set(CORE_METRICS) <= set(record.metrics)

    def test_bad_direction_rejected(self):
        with pytest.raises(BenchSchemaError, match="direction"):
            Metric(1.0, "ms", direction="sideways")

    def test_old_schema_version_rejected(self):
        payload = make_record().to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(BenchSchemaError, match="regenerate"):
            record_from_dict(payload)

    def test_missing_field_rejected(self):
        payload = make_record().to_dict()
        del payload["git_sha"]
        with pytest.raises(BenchSchemaError, match="git_sha"):
            record_from_dict(payload)

    def test_wrong_type_rejected(self):
        payload = make_record().to_dict()
        payload["seed"] = "not-a-seed"
        with pytest.raises(BenchSchemaError, match="seed"):
            record_from_dict(payload)

    def test_malformed_metric_rejected(self):
        payload = make_record().to_dict()
        payload["metrics"]["latency_p50_ms"] = "fast"
        with pytest.raises(BenchSchemaError, match="latency_p50_ms"):
            record_from_dict(payload)

    def test_malformed_json_file(self, tmp_path):
        path = tmp_path / "BENCH_fig3a.json"
        path.write_text("{not json")
        with pytest.raises(BenchSchemaError, match="cannot read"):
            load_record(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(BenchSchemaError, match="cannot read"):
            load_record(tmp_path / "BENCH_fig3a.json")


class TestAtomicity:
    def test_save_leaves_no_tmp(self, tmp_path):
        save_record(make_record(), tmp_path)
        assert [p.name for p in tmp_path.iterdir()] == ["BENCH_fig3a.json"]

    def test_saved_json_is_stable(self, tmp_path):
        path = save_record(make_record(), tmp_path)
        first = path.read_text()
        save_record(make_record(), tmp_path)
        assert path.read_text() == first
        assert json.loads(first)["schema_version"] == SCHEMA_VERSION
