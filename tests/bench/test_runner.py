"""The structured runner: arms, profiles, records end to end."""

from __future__ import annotations

import pytest

from repro.bench.arms import ARMS, PROFILES
from repro.bench.comparator import compare_dirs
from repro.bench.runner import (
    arm_names,
    baseline_status,
    resolve_arms,
    resolve_profile,
    run_arm,
    run_arms,
    summarize_record,
)
from repro.bench.schema import (
    CORE_METRICS,
    SCHEMA_VERSION,
    load_record,
    record_path,
    validate_record,
)


class TestResolution:
    def test_arm_names_are_the_registry(self):
        assert arm_names() == sorted(ARMS)
        assert set(arm_names()) == {
            "capacity",
            "fig3a",
            "fig3a_vec",
            "fig3b",
            "ring",
            "streaming",
        }

    def test_resolve_all(self):
        assert [s.name for s in resolve_arms(None)] == arm_names()
        assert [s.name for s in resolve_arms(["all"])] == arm_names()

    def test_resolve_subset_and_unknown(self):
        assert [s.name for s in resolve_arms(["fig3a"])] == ["fig3a"]
        with pytest.raises(ValueError, match="unknown arm"):
            resolve_arms(["fig9z"])

    def test_resolve_profile(self):
        assert resolve_profile("smoke") is PROFILES["smoke"]
        with pytest.raises(ValueError, match="unknown profile"):
            resolve_profile("leisurely")


@pytest.fixture(scope="module")
def smoke_records(tmp_path_factory):
    """One real smoke run of every arm, shared across the module."""
    out = tmp_path_factory.mktemp("bench-smoke")
    return out, run_arms(None, "smoke", out, seed=7)


class TestRunArms:
    def test_every_arm_produces_a_valid_record(self, smoke_records):
        out, published = smoke_records
        assert [record.arm for record, _ in published] == arm_names()
        for record, path in published:
            assert path == record_path(out, record.arm)
            reloaded = load_record(path)
            validate_record(reloaded)
            assert reloaded.schema_version == SCHEMA_VERSION
            assert reloaded.profile == "smoke"
            assert reloaded.seed == 7
            assert reloaded.workload["regime"]
            assert set(CORE_METRICS) <= set(reloaded.metrics)

    def test_metrics_are_sane(self, smoke_records):
        _, published = smoke_records
        for record, _ in published:
            assert record.metric_value("latency_p50_ms") > 0
            assert (
                record.metric_value("latency_p50_ms")
                <= record.metric_value("latency_p90_ms")
                <= record.metric_value("latency_p99_ms")
            )
            assert record.metric_value("throughput_rps") > 0
            assert 0.0 <= record.metric_value("sla_attainment") <= 1.0
            assert record.metric_value("peak_memory_bytes") > 0

    def test_self_comparison_passes_the_gate(self, smoke_records):
        out, _ = smoke_records
        report = compare_dirs(out, out)
        assert report.exit_code == 0
        assert report.render().endswith("gate verdict: PASS")

    def test_summary_line(self, smoke_records):
        _, published = smoke_records
        line = summarize_record(published[0][0])
        assert published[0][0].arm in line
        assert "p90" in line and "SLA" in line

    def test_injected_clock_is_used(self):
        """SRN001-style clock injection: a fake clock, not wall time."""
        ticks = iter(range(1, 100_000))

        def fake_clock() -> float:
            return next(ticks) * 1e-4

        record = run_arm(
            ARMS["fig3a"],
            PROFILES["smoke"],
            seed=7,
            clock=fake_clock,
            wall_clock=lambda: 123.0,
        )
        assert record.created_unix == 123.0
        # Every fake-clock interval is exactly 0.1 ms.
        assert record.metric_value("latency_p50_ms") == pytest.approx(0.1)


class TestBaselineStatus:
    def test_lists_every_arm(self, smoke_records, tmp_path):
        out, _ = smoke_records
        lines = baseline_status(out)
        text = "\n".join(lines)
        for name in arm_names():
            assert name in text
        assert "no baseline committed" not in text
        empty = "\n".join(baseline_status(tmp_path))
        assert empty.count("no baseline committed") == len(arm_names())

    def test_unreadable_baseline_is_surfaced(self, tmp_path):
        record_path(tmp_path, "fig3a").write_text("{broken")
        text = "\n".join(baseline_status(tmp_path))
        assert "UNREADABLE" in text
