"""The regression gate: envelopes, verdicts, ratchet discipline."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.bench.comparator import (
    ARM_ERROR,
    ARM_IMPROVED,
    ARM_MISSING,
    ARM_NEW,
    ARM_OK,
    ARM_REGRESSION,
    METRIC_IMPROVED,
    METRIC_MISSING,
    METRIC_NEW,
    METRIC_OK,
    METRIC_REGRESSED,
    Envelope,
    EnvelopePolicy,
    compare_dirs,
    compare_records,
    tighten_baseline,
)
from repro.bench.schema import (
    SCHEMA_VERSION,
    BenchSchemaError,
    Metric,
    load_record,
    save_record,
)

from .test_schema import make_record


def with_metrics(record, **overrides):
    metrics = dict(record.metrics)
    for name, value in overrides.items():
        metrics[name] = replace(metrics[name], value=value)
    return replace(record, metrics=metrics)


def verdict_for(comparison, metric):
    return next(v for v in comparison.verdicts if v.metric == metric)


class TestEnvelopeSemantics:
    def test_identical_records_pass(self):
        record = make_record()
        comparison = compare_records(record, record)
        assert comparison.status == ARM_OK
        assert all(v.status == METRIC_OK for v in comparison.verdicts)

    def test_within_envelope_passes(self):
        baseline = make_record()
        # +50% p90 is inside the 75% relative envelope.
        candidate = with_metrics(baseline, latency_p90_ms=3.0)
        comparison = compare_records(baseline, candidate)
        assert comparison.status == ARM_OK
        assert verdict_for(comparison, "latency_p90_ms").status == METRIC_OK

    def test_injected_2x_slowdown_fails_the_gate(self):
        """The CI failure mode: double every latency metric -> exit 1."""
        baseline = make_record()
        candidate = with_metrics(
            baseline,
            latency_p50_ms=2.0,
            latency_p90_ms=4.0,
            latency_p99_ms=9.0,
        )
        comparison = compare_records(baseline, candidate)
        assert comparison.status == ARM_REGRESSION
        regressed = {v.metric for v in comparison.regressions}
        assert "latency_p90_ms" in regressed

    def test_both_bounds_must_trip(self):
        # A huge relative change below the absolute floor stays quiet:
        # p50 0.02 -> 0.06 ms is +200% but only 0.04 ms (< 0.05 floor).
        baseline = with_metrics(make_record(), latency_p50_ms=0.02)
        candidate = with_metrics(baseline, latency_p50_ms=0.06)
        comparison = compare_records(baseline, candidate)
        assert verdict_for(comparison, "latency_p50_ms").status == METRIC_OK

    def test_higher_is_better_direction(self):
        baseline = make_record()
        # Throughput halving is a regression even though the value fell.
        candidate = with_metrics(baseline, throughput_rps=400.0)
        comparison = compare_records(baseline, candidate)
        assert (
            verdict_for(comparison, "throughput_rps").status
            == METRIC_REGRESSED
        )
        # Doubling is an improvement.
        faster = with_metrics(baseline, throughput_rps=2000.0)
        comparison = compare_records(baseline, faster)
        assert comparison.status == ARM_IMPROVED

    def test_sla_absolute_drop_gates(self):
        baseline = make_record()
        candidate = with_metrics(baseline, sla_attainment=0.95)
        comparison = compare_records(baseline, candidate)
        assert comparison.status == ARM_REGRESSION

    def test_vanished_metric_is_a_regression(self):
        baseline = make_record()
        candidate = replace(
            baseline,
            metrics={
                k: v
                for k, v in baseline.metrics.items()
                if k != "peak_memory_bytes"
            },
        )
        comparison = compare_records(baseline, candidate)
        assert comparison.status == ARM_REGRESSION
        assert (
            verdict_for(comparison, "peak_memory_bytes").status
            == METRIC_MISSING
        )

    def test_new_metric_is_not_a_regression(self):
        baseline = make_record()
        metrics = dict(baseline.metrics)
        metrics["cache_hit_rate"] = Metric(0.9, "", "higher")
        candidate = replace(baseline, metrics=metrics)
        comparison = compare_records(baseline, candidate)
        assert comparison.status == ARM_OK
        assert (
            verdict_for(comparison, "cache_hit_rate").status == METRIC_NEW
        )


class TestIncomparableRecords:
    def test_profile_mismatch_is_an_error(self):
        baseline = make_record()
        candidate = replace(baseline, profile="full")
        comparison = compare_records(baseline, candidate)
        assert comparison.status == ARM_ERROR
        assert "profile mismatch" in comparison.message

    def test_seed_mismatch_is_an_error(self):
        baseline = make_record()
        candidate = replace(baseline, seed=7)
        comparison = compare_records(baseline, candidate)
        assert comparison.status == ARM_ERROR
        assert "seed mismatch" in comparison.message

    def test_direction_flip_is_an_error(self):
        baseline = make_record()
        metrics = dict(baseline.metrics)
        metrics["latency_p50_ms"] = Metric(1.0, "ms", "higher")
        candidate = replace(baseline, metrics=metrics)
        comparison = compare_records(baseline, candidate)
        assert comparison.status == ARM_ERROR


class TestCompareDirs:
    def test_missing_baseline_is_new_and_passes(self, tmp_path):
        baseline_dir = tmp_path / "base"
        candidate_dir = tmp_path / "cand"
        baseline_dir.mkdir()
        save_record(make_record(), candidate_dir)
        report = compare_dirs(baseline_dir, candidate_dir)
        assert report.arms[0].status == ARM_NEW
        assert report.exit_code == 0
        assert "commit" in report.arms[0].message

    def test_vanished_arm_fails(self, tmp_path):
        baseline_dir = tmp_path / "base"
        candidate_dir = tmp_path / "cand"
        candidate_dir.mkdir()
        save_record(make_record(), baseline_dir)
        report = compare_dirs(baseline_dir, candidate_dir)
        assert report.arms[0].status == ARM_MISSING
        assert report.exit_code == 1

    def test_requested_arm_absent_everywhere_is_an_error(self, tmp_path):
        (tmp_path / "base").mkdir()
        (tmp_path / "cand").mkdir()
        report = compare_dirs(
            tmp_path / "base", tmp_path / "cand", arms=["fig3a"]
        )
        assert report.arms[0].status == ARM_ERROR
        assert report.exit_code == 2

    def test_malformed_candidate_is_an_error(self, tmp_path):
        baseline_dir = tmp_path / "base"
        candidate_dir = tmp_path / "cand"
        save_record(make_record(), baseline_dir)
        candidate_dir.mkdir()
        (candidate_dir / "BENCH_fig3a.json").write_text("{broken")
        report = compare_dirs(baseline_dir, candidate_dir)
        assert report.arms[0].status == ARM_ERROR
        assert report.exit_code == 2

    def test_old_schema_version_is_an_error(self, tmp_path):
        baseline_dir = tmp_path / "base"
        candidate_dir = tmp_path / "cand"
        save_record(make_record(), baseline_dir)
        payload = make_record().to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        candidate_dir.mkdir()
        (candidate_dir / "BENCH_fig3a.json").write_text(json.dumps(payload))
        report = compare_dirs(baseline_dir, candidate_dir)
        assert report.arms[0].status == ARM_ERROR
        assert report.exit_code == 2
        assert "schema version" in report.arms[0].message

    def test_render_states_the_verdict(self, tmp_path):
        save_record(make_record(), tmp_path / "base")
        save_record(make_record(), tmp_path / "cand")
        report = compare_dirs(tmp_path / "base", tmp_path / "cand")
        assert report.render().endswith("gate verdict: PASS")


class TestRatchet:
    def test_improvement_beyond_envelope_tightens(self):
        baseline = make_record()
        candidate = with_metrics(baseline, latency_p90_ms=0.2)  # -90%
        tightened = tighten_baseline(baseline, candidate)
        assert tightened is not None
        assert tightened.metric_value("latency_p90_ms") == 0.2
        # Untouched metrics keep the baseline value.
        assert tightened.metric_value("latency_p50_ms") == 1.0
        assert any("ratcheted" in note for note in tightened.notes)

    def test_noise_improvement_does_not_tighten(self):
        baseline = make_record()
        candidate = with_metrics(baseline, latency_p90_ms=1.8)  # -10%
        assert tighten_baseline(baseline, candidate) is None

    def test_regression_refuses_to_refresh(self):
        baseline = make_record()
        candidate = with_metrics(baseline, latency_p90_ms=40.0)
        with pytest.raises(BenchSchemaError, match="regressed"):
            tighten_baseline(baseline, candidate)

    def test_ratchet_never_loosens(self):
        baseline = make_record()
        fast = with_metrics(baseline, latency_p90_ms=0.2)
        tightened = tighten_baseline(baseline, fast)
        # A later run back at the old speed is now a regression.
        comparison = compare_records(tightened, baseline)
        assert comparison.status == ARM_REGRESSION


class TestEnvelopePolicy:
    def test_policy_file_overrides(self, tmp_path):
        policy_path = tmp_path / "envelopes.json"
        policy_path.write_text(
            json.dumps(
                {
                    "latency_p90_ms": {"rel": 0.0, "abs": 0.0},
                    "default": {"rel": 9.0, "abs": 9.0},
                }
            )
        )
        policy = EnvelopePolicy.from_json(policy_path)
        assert policy.envelope_for("latency_p90_ms") == Envelope(0.0, 0.0)
        assert policy.envelope_for("unheard_of") == Envelope(9.0, 9.0)
        # The zero envelope turns any wiggle into a regression.
        baseline = make_record()
        candidate = with_metrics(baseline, latency_p90_ms=2.001)
        comparison = compare_records(baseline, candidate, policy)
        assert comparison.status == ARM_REGRESSION

    def test_malformed_policy_rejected(self, tmp_path):
        path = tmp_path / "envelopes.json"
        path.write_text(json.dumps({"latency_p90_ms": {"rel": 0.1}}))
        with pytest.raises(BenchSchemaError, match="rel"):
            EnvelopePolicy.from_json(path)

    def test_unreadable_policy_rejected(self, tmp_path):
        with pytest.raises(BenchSchemaError, match="cannot read"):
            EnvelopePolicy.from_json(tmp_path / "nope.json")


class TestDiskRoundTrip:
    def test_tightened_baseline_survives_reload(self, tmp_path):
        baseline = make_record()
        candidate = with_metrics(baseline, latency_p90_ms=0.2)
        tightened = tighten_baseline(baseline, candidate)
        path = save_record(tightened, tmp_path)
        assert load_record(path) == tightened
