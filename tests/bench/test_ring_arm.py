"""The ring bench arm: hedged-vs-unhedged tail latency, deterministically.

ISSUE acceptance: under a 10%-of-requests straggler regime (one slow pod
out of ten), p99 with hedging stays inside the 50 ms SLA and is at least
2x better than with hedging disabled — measured on the virtual clock, so
the record is bit-reproducible for the regression gate.
"""

from __future__ import annotations

import pytest

from repro.bench.arms import ARMS, PROFILES, SLA_BUDGET_MS, run_ring
from repro.bench.schema import CORE_METRICS

SMOKE = PROFILES["smoke"]


@pytest.fixture(scope="module")
def result():
    return run_ring(SMOKE, seed=2022)


def value(result, name):
    return result.metrics[name].value


class TestRegistration:
    def test_ring_arm_registered(self):
        assert "ring" in ARMS
        assert ARMS["ring"].run is run_ring
        assert "straggler" in ARMS["ring"].description


class TestMetrics:
    def test_core_metrics_present(self, result):
        assert set(CORE_METRICS) <= set(result.metrics)
        assert value(result, "latency_p50_ms") > 0
        assert value(result, "peak_memory_bytes") > 0
        assert 0.0 <= value(result, "sla_attainment") <= 1.0

    def test_hedging_holds_the_sla_under_stragglers(self, result):
        """The acceptance bar: hedged p99 inside 50 ms, >= 2x better."""
        assert value(result, "latency_p99_ms") <= SLA_BUDGET_MS
        assert value(result, "latency_p99_unhedged_ms") > SLA_BUDGET_MS
        assert value(result, "hedge_improvement") >= 2.0

    def test_hedge_race_resolves_at_the_derived_delay(self, result):
        """hedge delay (12.5 ms) + follower base stall (5 ms) exactly:
        the virtual-clock race is arithmetic, not a measurement."""
        assert value(result, "latency_p99_ms") == pytest.approx(17.5)
        assert value(result, "latency_p99_unhedged_ms") == pytest.approx(
            SMOKE.ring_straggler_ms
        )

    def test_workload_describes_the_regime(self, result):
        workload = result.workload
        assert workload["regime"] == "ring-flash-sale-straggler"
        assert workload["straggler"] == "pod-0"
        assert workload["replication_factor"] == 2
        assert workload["requests"] > 0
        assert workload["hedges_fired"] > 0
        assert workload["hedge_wins"] > 0


class TestDeterminism:
    def test_identical_runs_modulo_memory(self, result):
        """Same profile + seed => identical metrics and workload, except
        peak memory (tracemalloc is not bit-stable across runs)."""
        again = run_ring(SMOKE, seed=2022)
        strip = lambda r: {  # noqa: E731 - local one-liner
            name: metric
            for name, metric in r.metrics.items()
            if name != "peak_memory_bytes"
        }
        assert strip(result) == strip(again)
        assert dict(result.workload) == dict(again.workload)

    def test_seed_changes_the_trace(self, result):
        other = run_ring(SMOKE, seed=7)
        assert other.workload["requests"] != result.workload["requests"]
