"""BenchReport: one source of truth, two artifacts."""

from __future__ import annotations

import json

import pytest

from repro.bench.report import (
    REPORT_SCHEMA_VERSION,
    BenchReport,
    Column,
)
from repro.bench.schema import HIGHER


def sample_report() -> BenchReport:
    report = BenchReport(
        "demo", title="Demo table", metadata={"sessions": 100}
    )
    report.table(
        Column("name", 8, align="<"),
        Column("us", 8, fmt=".1f"),
    )
    report.row("vmis", 12.34567)
    report.row("vsknn", 45.6)
    report.note()
    report.check("vmis faster", True)
    report.metric("speedup", 3.7, "x", HIGHER)
    return report


class TestRendering:
    def test_text_has_header_rows_and_checks(self):
        text = sample_report().render_text()
        assert "Demo table" in text
        assert "name" in text and "us" in text
        assert "12.3" in text  # fmt applied
        assert "shape check: vmis faster: True" in text

    def test_column_alignment(self):
        column = Column("x", 6, align="<")
        assert column.format_cell("ab") == "ab    "
        assert Column("x", 6).format_cell("ab") == "    ab"

    def test_column_fmt_skips_strings_and_bools(self):
        column = Column("x", 6, fmt=".1f")
        assert column.format_cell("X").strip() == "X"
        assert column.format_cell(True).strip() == "True"
        assert column.format_cell(1.25).strip() == "1.2"

    def test_row_before_table_rejected(self):
        report = BenchReport("demo")
        with pytest.raises(ValueError, match="table"):
            report.row(1)

    def test_row_width_mismatch_rejected(self):
        report = BenchReport("demo")
        report.table(Column("a"), Column("b"))
        with pytest.raises(ValueError, match="cells"):
            report.row(1)


class TestChecksAndMetrics:
    def test_check_returns_outcome(self):
        report = BenchReport("demo")
        assert report.check("yes", True) is True
        assert report.check("no", False) is False
        assert report.checks == [("yes", True), ("no", False)]
        assert not report.all_checks_passed()

    def test_metric_recorded(self):
        report = sample_report()
        assert report.metrics["speedup"].value == 3.7
        assert report.metrics["speedup"].direction == HIGHER


class TestArtifacts:
    def test_write_produces_text_and_json(self, tmp_path):
        text = sample_report().write(tmp_path)
        assert (tmp_path / "demo.txt").read_text() == text + "\n"
        payload = json.loads((tmp_path / "demo.json").read_text())
        assert payload["report_schema_version"] == REPORT_SCHEMA_VERSION
        assert payload["report"] == "demo"
        assert payload["metadata"] == {"sessions": 100}
        assert payload["tables"][0]["columns"] == ["name", "us"]
        assert payload["tables"][0]["rows"][0] == ["vmis", 12.34567]
        assert payload["checks"] == [{"label": "vmis faster", "passed": True}]
        assert payload["metrics"]["speedup"]["value"] == 3.7
