"""Protocol conformance across the whole registry.

Every registered recommender must satisfy the unified API: it is a
``SessionRecommender`` (recommend + recommend_batch), it is constructible
both as ``cls(**kwargs).fit(clicks)`` and ``cls.from_clicks(clicks,
**kwargs)`` with identical results, and its ``recommend_batch`` agrees
item-for-item with a loop of ``recommend`` calls.
"""

from __future__ import annotations

import pytest

from repro.core.predictor import SessionRecommender, TrainableRecommender
from repro.data.synthetic import generate_clickstream
from repro.experiments.registry import (
    RecommenderConfig,
    build_recommender,
    recommender_class,
    registered_models,
)

# keep the neural baselines cheap; ignored by models without these knobs
FAST_PARAMS: dict[str, dict] = {
    "gru4rec": {"epochs": 1, "embedding_dim": 8, "hidden_dim": 8},
    "narm": {"epochs": 1, "embedding_dim": 8, "hidden_dim": 8},
    "stamp": {"epochs": 1, "embedding_dim": 8},
    "vmis": {"m": 50, "k": 20},
    "vsknn": {"m": 50, "k": 20},
    "sknn": {"m": 50, "k": 20},
    "stan": {"m": 50, "k": 20},
    "itemknn": {"neighbors_per_item": 20},
}


@pytest.fixture(scope="module")
def train_clicks():
    return list(
        generate_clickstream(num_sessions=150, num_items=40, days=4, seed=31)
    )


@pytest.fixture(scope="module")
def probe_sessions(train_clicks):
    by_session: dict[int, list[int]] = {}
    for click in train_clicks:
        by_session.setdefault(click.session_id, []).append(click.item_id)
    sequences = list(by_session.values())
    probes = [[], [999_999]]
    for sequence in sequences[:10]:
        for cut in range(1, len(sequence)):
            probes.append(sequence[:cut])
    return probes


@pytest.fixture(scope="module")
def fitted_models(train_clicks):
    return {
        name: build_recommender(
            name,
            RecommenderConfig.from_params(FAST_PARAMS.get(name, {})),
            clicks=train_clicks,
        )
        for name in registered_models()
    }


@pytest.mark.parametrize("name", registered_models())
class TestRegistryConformance:
    def test_satisfies_session_recommender(self, fitted_models, name):
        model = fitted_models[name]
        assert isinstance(model, SessionRecommender)
        assert isinstance(model, TrainableRecommender)

    def test_recommend_batch_equals_loop(self, fitted_models, probe_sessions, name):
        model = fitted_models[name]
        batched = model.recommend_batch(probe_sessions, how_many=10)
        assert len(batched) == len(probe_sessions)
        for probe, ranked in zip(probe_sessions, batched):
            serial = model.recommend(probe, how_many=10)
            assert [(s.item_id, s.score) for s in ranked] == [
                (s.item_id, s.score) for s in serial
            ]

    def test_fit_and_from_clicks_agree(
        self, train_clicks, probe_sessions, name
    ):
        params = FAST_PARAMS.get(name, {})
        cls = recommender_class(name)
        assert cls is not None
        via_fit = cls(**params).fit(list(train_clicks))
        via_classmethod = cls.from_clicks(list(train_clicks), **params)
        for probe in probe_sessions[:8]:
            assert [
                (s.item_id, s.score) for s in via_fit.recommend(probe, how_many=8)
            ] == [
                (s.item_id, s.score)
                for s in via_classmethod.recommend(probe, how_many=8)
            ]

    def test_unfitted_model_never_fabricates(self, name):
        """Before fit(): either a clear error or an empty list, never junk."""
        cls = recommender_class(name)
        model = cls(**FAST_PARAMS.get(name, {}))
        try:
            result = model.recommend([1, 2])
        except (RuntimeError, ValueError, TypeError):
            return
        assert result == []
