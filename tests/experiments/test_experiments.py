"""Tests for the declarative experiment framework."""

from __future__ import annotations

import json

import pytest

from repro.core.types import ScoredItem
from repro.experiments import (
    DatasetSpec,
    ExperimentConfig,
    ModelSpec,
    ProtocolSpec,
    RecommenderConfig,
    build_recommender,
    register_model,
    register_recommender,
    registered_models,
    run_experiment,
)
from repro.experiments.registry import recommender_class


def tiny_config(**overrides):
    defaults = dict(
        name="t",
        dataset=DatasetSpec(sessions=400, items=120, days=6, seed=1),
        models=(ModelSpec("vmis", {"m": 50, "k": 20}),),
        protocol=ProtocolSpec(max_predictions=50),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestDatasetSpec:
    def test_exactly_one_source(self):
        with pytest.raises(ValueError):
            DatasetSpec().validate()
        with pytest.raises(ValueError):
            DatasetSpec(profile="rsc15-sim", sessions=10).validate()

    def test_unknown_profile(self):
        with pytest.raises(ValueError, match="rsc15-sim"):
            DatasetSpec(profile="cifar").validate()

    def test_generator_source_loads(self):
        log = DatasetSpec(sessions=200, items=50, days=5, seed=2).load()
        assert log.num_sessions() == 200

    def test_profile_source_loads(self):
        log = DatasetSpec(profile="retailrocket-sim", scale=0.01, seed=2).load()
        assert log.num_sessions() > 0

    def test_path_source_loads(self, small_log, tmp_path):
        path = tmp_path / "c.tsv"
        small_log.to_tsv(path)
        log = DatasetSpec(path=str(path)).load()
        assert len(log) == len(small_log)


class TestConfigValidation:
    def test_needs_models(self):
        with pytest.raises(ValueError):
            tiny_config(models=()).validate()

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            tiny_config(
                models=(ModelSpec("vmis"), ModelSpec("vmis"))
            ).validate()

    def test_labels_disambiguate(self):
        config = tiny_config(
            models=(
                ModelSpec("vmis", {"m": 10}, label="vmis-small"),
                ModelSpec("vmis", {"m": 100}, label="vmis-big"),
            )
        )
        config.validate()

    def test_protocol_validation(self):
        with pytest.raises(ValueError):
            ProtocolSpec(test_days=0).validate()
        with pytest.raises(ValueError):
            ProtocolSpec(cutoff=0).validate()

    def test_json_roundtrip(self, tmp_path):
        config = tiny_config()
        path = tmp_path / "config.json"
        config.save(path)
        assert ExperimentConfig.load(path) == config

    def test_malformed_json_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            ExperimentConfig.from_dict({"name": "x"})


class TestRegistry:
    def test_builtins_present(self):
        names = registered_models()
        for expected in ("vmis", "vsknn", "stan", "itemknn", "gru4rec"):
            assert expected in names

    def test_unknown_model(self):
        with pytest.raises(ValueError, match="unknown model"):
            build_recommender("alexnet", RecommenderConfig(), clicks=[])

    def test_custom_registration(self):
        class Constant:
            def recommend(self, session_items, how_many=21):
                return [ScoredItem(1, 1.0)]

        register_model("constant-test", lambda clicks, params: Constant())
        try:
            model = build_recommender(
                "constant-test", RecommenderConfig(), clicks=[]
            )
            assert model.recommend([5])[0].item_id == 1
        finally:
            from repro.experiments import registry

            del registry._REGISTRY["constant-test"]

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_model("", lambda clicks, params: None)


class TestFactory:
    def test_config_round_trip(self):
        config = RecommenderConfig.from_params(
            {"m": 50, "k": 20, "exclude_current_items": True, "window": 3}
        )
        assert config.m == 50 and config.k == 20
        assert config.extra == {"window": 3}
        assert config.kwargs() == {
            "m": 50, "k": 20, "exclude_current_items": True, "window": 3,
        }

    def test_none_fields_omitted(self):
        assert RecommenderConfig().kwargs() == {}
        assert RecommenderConfig(k=20).kwargs() == {"k": 20}

    def test_build_fitted(self):
        from repro.data.synthetic import generate_clickstream

        clicks = list(generate_clickstream(num_sessions=80, num_items=30, seed=4))
        model = build_recommender(
            "vmis", RecommenderConfig(m=20, k=10), clicks=clicks
        )
        assert model.recommend([clicks[0].item_id], how_many=5)

    def test_build_unfitted_then_fit(self):
        from repro.data.synthetic import generate_clickstream

        clicks = list(generate_clickstream(num_sessions=80, num_items=30, seed=4))
        model = build_recommender("vmis", RecommenderConfig(m=20, k=10))
        assert model.index is None
        model.fit(clicks)
        assert model.index is not None

    def test_legacy_builder_requires_clicks(self):
        register_model("legacy-test", lambda clicks, params: object())
        try:
            with pytest.raises(ValueError, match="legacy builder"):
                build_recommender("legacy-test")
        finally:
            from repro.experiments import registry

            del registry._REGISTRY["legacy-test"]

    def test_register_recommender_class(self):
        class Constant:
            def __init__(self, value=1):
                self.value = value

            def fit(self, clicks):
                return self

            def recommend(self, session_items, how_many=21):
                return [ScoredItem(self.value, 1.0)]

        register_recommender("constant-class-test", Constant)
        try:
            assert recommender_class("constant-class-test") is Constant
            model = build_recommender(
                "constant-class-test",
                RecommenderConfig.from_params({"value": 9}),
                clicks=[],
            )
            assert model.recommend([5])[0].item_id == 9
        finally:
            from repro.experiments import registry

            del registry._CLASSES["constant-class-test"]

    def test_build_model_removed(self):
        import repro.experiments

        assert not hasattr(repro.experiments, "build_model")
        assert "build_model" not in repro.experiments.__all__


class TestRunner:
    def test_runs_and_reports(self):
        config = tiny_config(
            models=(
                ModelSpec("vmis", {"m": 50, "k": 20}),
                ModelSpec("popularity"),
            )
        )
        report = run_experiment(config)
        assert len(report.outcomes) == 2
        assert report.train_clicks > 0
        assert report.test_sessions > 0
        rendered = report.render()
        assert "vmis" in rendered and "popularity" in rendered

    def test_best_by_metric(self):
        config = tiny_config(
            models=(
                ModelSpec("vmis", {"m": 50, "k": 20}),
                ModelSpec("popularity"),
            )
        )
        report = run_experiment(config)
        top_mrr = max(outcome.result.mrr for outcome in report.outcomes)
        assert report.best("mrr").result.mrr == top_mrr

    def test_results_json(self, tmp_path):
        report = run_experiment(tiny_config())
        out = tmp_path / "results.json"
        report.save_json(out)
        payload = json.loads(out.read_text())
        assert payload["experiment"] == "t"
        assert payload["outcomes"][0]["metrics"]["MRR@20"] >= 0

    def test_invalid_config_rejected_before_work(self):
        config = tiny_config(models=())
        with pytest.raises(ValueError):
            run_experiment(config)
