"""Tests for the (k, m) grid search behind Figure 2."""

from __future__ import annotations

import pytest

from repro.data.split import temporal_split
from repro.eval.gridsearch import grid_search, _unimodal


@pytest.fixture(scope="module")
def split(small_log):
    return temporal_split(small_log)


@pytest.fixture(scope="module")
def result(split):
    return grid_search(
        list(split.train),
        split.test_sequences(),
        ks=[5, 20, 50],
        ms=[10, 50, 100],
        max_predictions=150,
    )


class TestGridSearch:
    def test_evaluates_full_grid(self, result):
        assert len(result.points) == 9
        assert {(p.k, p.m) for p in result.points} == {
            (k, m) for k in (5, 20, 50) for m in (10, 50, 100)
        }

    def test_best_is_maximum(self, result):
        best = result.best("mrr")
        assert all(best.metric("mrr") >= p.metric("mrr") for p in result.points)

    def test_matrix_layout(self, result):
        matrix = result.matrix("mrr")
        assert len(matrix) == 3 and len(matrix[0]) == 3
        assert matrix[0][0] == result.points[0].metric("mrr")

    def test_heatmap_renders(self, result):
        heatmap = result.heatmap("mrr")
        assert "k=5" in heatmap and "m:" in heatmap

    def test_metric_variants(self, result):
        assert result.best("precision").metric("precision") >= 0.0

    def test_unknown_metric_raises(self, result):
        with pytest.raises(ValueError):
            result.best("nope")

    def test_empty_grid_rejected(self, split):
        with pytest.raises(ValueError):
            grid_search(list(split.train), split.test_sequences(), ks=[], ms=[5])


class TestUnimodal:
    def test_monotone_is_unimodal(self):
        assert _unimodal([1, 2, 3], 0.0)
        assert _unimodal([3, 2, 1], 0.0)

    def test_peak_in_middle(self):
        assert _unimodal([1, 3, 2], 0.0)

    def test_valley_is_not_unimodal(self):
        assert not _unimodal([3, 1, 4], 0.0)

    def test_tolerance_allows_noise(self):
        assert _unimodal([1.0, 0.99, 2.0, 1.0], 0.05)
