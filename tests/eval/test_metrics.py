"""Tests for the ranking metrics."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.eval.metrics import (
    average_precision,
    coverage,
    hit,
    precision,
    recall,
    reciprocal_rank,
)


class TestReciprocalRank:
    def test_first_rank(self):
        assert reciprocal_rank([5, 6, 7], 5) == 1.0

    def test_third_rank(self):
        assert reciprocal_rank([5, 6, 7], 7) == pytest.approx(1 / 3)

    def test_absent(self):
        assert reciprocal_rank([5, 6, 7], 9) == 0.0


class TestHit:
    def test_present_and_absent(self):
        assert hit([1, 2], 2) == 1.0
        assert hit([1, 2], 3) == 0.0


class TestPrecisionRecall:
    def test_precision(self):
        assert precision([1, 2, 3, 4], [2, 4, 9]) == pytest.approx(0.5)

    def test_precision_empty_recommendations(self):
        assert precision([], [1]) == 0.0

    def test_recall(self):
        assert recall([1, 2, 3], [2, 3, 7, 8]) == pytest.approx(0.5)

    def test_recall_no_relevant(self):
        assert recall([1, 2], []) == 0.0

    def test_duplicate_recommendations_counted_once_for_recall(self):
        assert recall([2, 2, 2], [2, 3]) == pytest.approx(0.5)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision([1, 2], [1, 2]) == 1.0

    def test_paper_style_example(self):
        # Relevant at ranks 1 and 3 of 3: (1/1 + 2/3)/2 = 5/6.
        assert average_precision([1, 9, 2], [1, 2]) == pytest.approx(5 / 6)

    def test_no_hits(self):
        assert average_precision([1, 2], [3]) == 0.0

    def test_empty_relevant(self):
        assert average_precision([1, 2], []) == 0.0


class TestCoverage:
    def test_counts_distinct_items(self):
        assert coverage([[1, 2], [2, 3]], catalog_size=10) == pytest.approx(0.3)

    def test_invalid_catalog(self):
        with pytest.raises(ValueError):
            coverage([[1]], catalog_size=0)


class TestMetricBounds:
    @given(
        recommended=st.lists(st.integers(0, 20), max_size=20),
        relevant=st.lists(st.integers(0, 20), min_size=1, max_size=10),
    )
    def test_all_metrics_in_unit_interval(self, recommended, relevant):
        next_item = relevant[0]
        values = [
            reciprocal_rank(recommended, next_item),
            hit(recommended, next_item),
            precision(recommended, relevant),
            recall(recommended, relevant),
            average_precision(recommended, relevant),
        ]
        for value in values:
            assert 0.0 <= value <= 1.0

    @given(recommended=st.lists(st.integers(0, 20), min_size=1, max_size=20))
    def test_mrr_is_one_iff_target_first(self, recommended):
        target = recommended[0]
        assert reciprocal_rank(recommended, target) == 1.0

    @given(
        recommended=st.lists(st.integers(0, 20), min_size=1, max_size=20, unique=True),
        relevant=st.lists(st.integers(0, 20), min_size=1, max_size=10, unique=True),
    )
    def test_precision_times_n_is_hit_count(self, recommended, relevant):
        hits = len(set(recommended) & set(relevant))
        assert precision(recommended, relevant) * len(recommended) == pytest.approx(
            hits
        )
