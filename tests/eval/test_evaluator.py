"""Tests for the incremental next-item evaluator."""

from __future__ import annotations

import pytest

from repro.core.types import ScoredItem
from repro.eval.evaluator import evaluate_next_item


class PerfectOracle:
    """Knows every sequence; always puts the true next item first."""

    def __init__(self, sequences):
        self._answers = {}
        for sequence in sequences:
            for cut in range(1, len(sequence)):
                self._answers[tuple(sequence[:cut])] = sequence[cut]

    def recommend(self, session_items, how_many=21):
        answer = self._answers.get(tuple(session_items))
        if answer is None:
            return []
        return [ScoredItem(answer, 1.0)] + [
            ScoredItem(10_000 + i, 0.5 - i * 0.01) for i in range(how_many - 1)
        ]


class UselessModel:
    def recommend(self, session_items, how_many=21):
        return [ScoredItem(999_000 + i, 1.0) for i in range(how_many)]


@pytest.fixture()
def sequences():
    return [[1, 2, 3, 4], [5, 6, 7], [8, 9]]


class TestEvaluator:
    def test_perfect_oracle_scores_one_on_mrr_and_hr(self, sequences):
        result = evaluate_next_item(PerfectOracle(sequences), sequences)
        assert result.mrr == 1.0
        assert result.hit_rate == 1.0
        assert result.predictions == sum(len(s) - 1 for s in sequences)

    def test_useless_model_scores_zero(self, sequences):
        result = evaluate_next_item(UselessModel(), sequences)
        assert result.mrr == 0.0
        assert result.precision == 0.0
        assert result.recall == 0.0

    def test_accepts_mapping_input(self, sequences):
        as_mapping = {i: s for i, s in enumerate(sequences)}
        result = evaluate_next_item(PerfectOracle(sequences), as_mapping)
        assert result.mrr == 1.0

    def test_max_predictions_caps_work(self, sequences):
        result = evaluate_next_item(
            PerfectOracle(sequences), sequences, max_predictions=2
        )
        assert result.predictions == 2

    def test_latency_measurement(self, sequences):
        result = evaluate_next_item(
            PerfectOracle(sequences), sequences, measure_latency=True
        )
        assert len(result.latencies_seconds) == result.predictions
        assert result.latency_percentile(50) >= 0.0
        assert result.latency_percentile(90) >= result.latency_percentile(10)

    def test_latency_percentile_without_measurement_raises(self, sequences):
        result = evaluate_next_item(PerfectOracle(sequences), sequences)
        with pytest.raises(ValueError):
            result.latency_percentile(90)

    def test_summary_keys_follow_cutoff(self, sequences):
        result = evaluate_next_item(PerfectOracle(sequences), sequences, cutoff=10)
        assert set(result.summary()) == {
            "MRR@10",
            "HR@10",
            "Prec@10",
            "R@10",
            "MAP@10",
        }

    def test_empty_input(self):
        result = evaluate_next_item(UselessModel(), [])
        assert result.predictions == 0
        assert result.mrr == 0.0
