"""Tests for the diagnostic evaluation breakdowns."""

from __future__ import annotations

import pytest

from repro.core.types import Click, ScoredItem
from repro.eval.analysis import (
    SliceMetrics,
    breakdown_evaluation,
    popularity_buckets,
)


class FixedRecommender:
    """Always recommends the same list."""

    def __init__(self, items):
        self._items = items

    def recommend(self, session_items, how_many=21):
        return [ScoredItem(i, 1.0) for i in self._items[:how_many]]


class TestPopularityBuckets:
    def test_head_torso_tail_assignment(self):
        clicks = (
            [Click(0, 1, t) for t in range(60)]
            + [Click(1, 2, t) for t in range(30)]
            + [Click(2, 3, t) for t in range(10)]
        )
        buckets = popularity_buckets(clicks, head_share=0.5, torso_share=0.9)
        assert buckets[1] == "head"  # 60% of clicks... first item exceeds 50%
        assert buckets[3] == "tail"

    def test_shares_validated(self):
        with pytest.raises(ValueError):
            popularity_buckets([], head_share=0.9, torso_share=0.5)

    def test_every_item_assigned(self, small_log):
        buckets = popularity_buckets(list(small_log))
        assert set(buckets) == {c.item_id for c in small_log}
        assert set(buckets.values()) <= {"head", "torso", "tail"}


class TestSliceMetrics:
    def test_accumulates(self):
        slice_metrics = SliceMetrics()
        slice_metrics.record([5, 6], 5)
        slice_metrics.record([5, 6], 6)
        slice_metrics.record([5, 6], 7)
        assert slice_metrics.predictions == 3
        assert slice_metrics.mrr == pytest.approx((1.0 + 0.5 + 0.0) / 3)
        assert slice_metrics.hit_rate == pytest.approx(2 / 3)

    def test_empty_is_zero(self):
        assert SliceMetrics().mrr == 0.0
        assert SliceMetrics().hit_rate == 0.0


class TestBreakdownEvaluation:
    @pytest.fixture()
    def train_clicks(self):
        return [Click(0, i % 5, t) for t, i in enumerate(range(50))]

    def test_prefix_length_slicing(self, train_clicks):
        sequences = {0: [1, 2, 3, 4]}
        report = breakdown_evaluation(
            FixedRecommender([2]), sequences, train_clicks
        )
        # Steps: prefix length 1 (target 2), 2 (target 3), 3 (target 4).
        assert set(report.by_prefix_length) == {1, 2, 3}
        assert report.by_prefix_length[1].hit_rate == 1.0
        assert report.by_prefix_length[2].hit_rate == 0.0

    def test_long_prefixes_folded(self, train_clicks):
        sequences = {0: list(range(15))}
        report = breakdown_evaluation(
            FixedRecommender([99]),
            sequences,
            train_clicks,
            max_prefix_length=5,
        )
        assert max(report.by_prefix_length) == 5
        assert report.by_prefix_length[5].predictions == 10

    def test_popularity_slicing_uses_train_buckets(self, train_clicks):
        # Target 999 never seen in training -> tail by definition.
        sequences = {0: [1, 999]}
        report = breakdown_evaluation(
            FixedRecommender([999]), sequences, train_clicks
        )
        assert report.by_popularity["tail"].predictions == 1
        assert report.by_popularity["tail"].hit_rate == 1.0

    def test_max_predictions_cap(self, train_clicks):
        sequences = {0: [1, 2, 3, 4, 0]}
        report = breakdown_evaluation(
            FixedRecommender([1]),
            sequences,
            train_clicks,
            max_predictions=2,
        )
        total = sum(s.predictions for s in report.by_prefix_length.values())
        assert total == 2

    def test_render_contains_both_sections(self, train_clicks):
        sequences = {0: [1, 2, 3]}
        report = breakdown_evaluation(
            FixedRecommender([2]), sequences, train_clicks
        )
        text = report.render()
        assert "prefix length" in text
        assert "popularity" in text
        assert "head" in text and "tail" in text
