"""The batched evaluation path must reproduce serial evaluation exactly."""

from __future__ import annotations

import pytest

from repro.core.batch import BatchPredictionEngine
from repro.core.vmis import VMISKNN
from repro.data.split import temporal_split
from repro.eval.evaluator import evaluate_next_item, evaluate_next_item_batched


@pytest.fixture(scope="module")
def split(small_log):
    return temporal_split(small_log, test_days=1)


@pytest.fixture(scope="module")
def model(split):
    return VMISKNN.from_clicks(
        list(split.train), m=60, k=30, exclude_current_items=True
    )


@pytest.fixture(scope="module")
def serial_result(model, split):
    return evaluate_next_item(
        model, split.test_sequences(), cutoff=10, max_predictions=300
    )


@pytest.mark.parametrize("batch_size", [1, 7, 64, 1000])
def test_metrics_identical_to_serial(model, split, serial_result, batch_size):
    batched = evaluate_next_item_batched(
        model,
        split.test_sequences(),
        cutoff=10,
        batch_size=batch_size,
        max_predictions=300,
    )
    assert batched.predictions == serial_result.predictions
    assert batched.summary() == serial_result.summary()


def test_through_batch_engine(model, split, serial_result):
    with BatchPredictionEngine(model, num_workers=3, cache_size=512) as engine:
        batched = evaluate_next_item_batched(
            engine,
            split.test_sequences(),
            cutoff=10,
            batch_size=64,
            max_predictions=300,
        )
        assert batched.summary() == serial_result.summary()
        info = engine.cache_info()
        assert info["misses"] > 0  # the replay actually went through the cache


def test_fallback_without_recommend_batch(split, serial_result, model):
    class LoopOnly:
        def recommend(self, session_items, how_many=21):
            return model.recommend(session_items, how_many=how_many)

    batched = evaluate_next_item_batched(
        LoopOnly(), split.test_sequences(), cutoff=10, max_predictions=300
    )
    assert batched.summary() == serial_result.summary()


def test_latency_is_amortised_per_batch(model, split):
    result = evaluate_next_item_batched(
        model,
        split.test_sequences(),
        cutoff=10,
        batch_size=50,
        measure_latency=True,
        max_predictions=100,
    )
    assert len(result.latencies_seconds) == result.predictions
    # every prediction in a batch carries the same amortised cost
    assert len(set(result.latencies_seconds[:50])) == 1


def test_rejects_bad_batch_size(model, split):
    with pytest.raises(ValueError):
        evaluate_next_item_batched(model, split.test_sequences(), batch_size=0)
