"""Tests for the discrete-event cluster simulator."""

from __future__ import annotations

import pytest

from repro.cluster.loadgen import TimedRequest, TrafficGenerator, constant_rate
from repro.cluster.simulation import ClusterSimulator, format_timeline
from repro.core.index import SessionIndex
from repro.serving.app import ServingCluster
from repro.serving.server import RecommendationRequest
from repro.testing.clock import VirtualClock


@pytest.fixture(scope="module")
def sim_cluster(medium_log):
    index = SessionIndex.from_clicks(medium_log, max_sessions_per_item=100)
    return ServingCluster.with_index(index, num_pods=2, m=100, k=50)


class TestSimulation:
    def test_low_load_means_no_queueing(self, sim_cluster, medium_log):
        generator = TrafficGenerator(medium_log, seed=11)
        simulator = ClusterSimulator(sim_cluster, cores_per_pod=3)
        result = simulator.run(
            generator.generate(constant_rate(20), duration=10),
            bucket_seconds=5.0,
        )
        assert result.total_requests > 0
        # At 20 rps across 6 cores, waiting time is negligible: response
        # latency should be close to pure service time (well under SLA).
        assert result.sla_attainment > 0.99
        assert result.latency.percentile(90) < 0.050

    def test_timeline_produced(self, sim_cluster, medium_log):
        generator = TrafficGenerator(medium_log, seed=12)
        simulator = ClusterSimulator(sim_cluster, cores_per_pod=3)
        result = simulator.run(
            generator.generate(constant_rate(50), duration=10),
            bucket_seconds=5.0,
        )
        assert len(result.timeline) >= 1
        for bucket in result.timeline:
            assert bucket.requests_per_second > 0
            assert bucket.latency_p75_ms <= bucket.latency_p995_ms

    def test_queueing_grows_under_overload(self, sim_cluster):
        """A single slow core fed faster than it can serve must queue."""
        clock = VirtualClock()

        class SlowRecommender:
            def recommend(self, session_items, how_many=21):
                clock.advance(0.004)  # 4 ms of virtual compute, no sleep
                return []

        slow_cluster = ServingCluster(lambda: SlowRecommender(), num_pods=1)
        simulator = ClusterSimulator(
            slow_cluster, cores_per_pod=1, perf_clock=clock
        )
        arrivals = [
            TimedRequest(i * 0.001, RecommendationRequest(f"u{i}", 1))
            for i in range(100)
        ]
        result = simulator.run(arrivals, bucket_seconds=1.0)
        # Service takes 4 ms but arrivals come every 1 ms: the tail of the
        # queue waits for ~100 * 3 ms of backlog.
        assert result.latency.percentile(99) > result.latency.percentile(10) * 5

    def test_format_timeline_renders(self, sim_cluster, medium_log):
        generator = TrafficGenerator(medium_log, seed=13)
        simulator = ClusterSimulator(sim_cluster)
        result = simulator.run(generator.generate(constant_rate(30), 5))
        rendered = format_timeline(result.timeline)
        assert "rps" in rendered and "p99.5ms" in rendered

    def test_rejects_bad_cores(self, sim_cluster):
        with pytest.raises(ValueError):
            ClusterSimulator(sim_cluster, cores_per_pod=0)
