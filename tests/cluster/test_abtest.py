"""Tests for the A/B experiment framework."""

from __future__ import annotations

import pytest

from repro.cluster.abtest import ABTest, VariantRecommender
from repro.core.types import ScoredItem
from repro.serving.variants import ServingVariant


class OracleRecommender:
    """Always ranks the true next item first (needs the cheat sheet)."""

    def __init__(self, answers):
        self._answers = answers  # prefix tuple -> next item

    def recommend(self, session_items, how_many=21):
        answer = self._answers.get(tuple(session_items))
        if answer is None:
            return []
        return [ScoredItem(answer, 1.0)]


class RandomJunkRecommender:
    """Never recommends anything useful."""

    def recommend(self, session_items, how_many=21):
        return [ScoredItem(10_000 + i, 1.0) for i in range(how_many)]


def build_answers(sequences):
    answers = {}
    for sequence in sequences.values():
        for cut in range(1, len(sequence)):
            answers[tuple(sequence[:cut])] = sequence[cut]
    return answers


@pytest.fixture()
def sequences():
    return {i: [i, i + 1, i + 2, i + 3] for i in range(200)}


class TestAssignment:
    def test_sticky(self, sequences):
        test = ABTest(
            arms={"a": RandomJunkRecommender(), "b": RandomJunkRecommender()},
            control="a",
        )
        assert all(
            test.assign("user-7") == test.assign("user-7") for _ in range(5)
        )

    def test_roughly_balanced(self):
        test = ABTest(
            arms={"a": RandomJunkRecommender(), "b": RandomJunkRecommender()},
            control="a",
        )
        assignments = [test.assign(f"u{i}") for i in range(2000)]
        share = assignments.count("a") / len(assignments)
        assert 0.4 < share < 0.6

    def test_control_must_be_an_arm(self):
        with pytest.raises(ValueError):
            ABTest(arms={"a": RandomJunkRecommender()}, control="missing")


class TestEngagementMechanism:
    def test_better_recommender_earns_higher_slot_rate(self, sequences):
        answers = build_answers(sequences)
        test = ABTest(
            arms={
                "legacy": RandomJunkRecommender(),
                "oracle": OracleRecommender(answers),
            },
            control="legacy",
            seed=5,
        )
        report = test.run(sequences)
        assert (
            report.arms["oracle"].slot_rate > report.arms["legacy"].slot_rate
        )
        assert report.slot_uplift("oracle") > 1.0  # oracle is far better

    def test_uplift_significant_with_enough_sessions(self, sequences):
        answers = build_answers(sequences)
        test = ABTest(
            arms={
                "legacy": RandomJunkRecommender(),
                "oracle": OracleRecommender(answers),
            },
            control="legacy",
        )
        report = test.run(sequences)
        assert report.slot_tests["oracle"].significant()

    def test_exposures_count_prediction_steps(self, sequences):
        test = ABTest(
            arms={"a": RandomJunkRecommender(), "b": RandomJunkRecommender()},
            control="a",
        )
        report = test.run(sequences)
        total_exposures = sum(o.exposures for o in report.arms.values())
        expected = sum(len(s) - 1 for s in sequences.values())
        assert total_exposures == expected

    def test_deterministic_given_seed(self, sequences):
        def run_once():
            test = ABTest(
                arms={
                    "a": RandomJunkRecommender(),
                    "b": RandomJunkRecommender(),
                },
                control="a",
                seed=11,
            )
            report = test.run(sequences)
            return [
                (o.exposures, o.slot_conversions)
                for o in report.arms.values()
            ]

        assert run_once() == run_once()


class TestCannibalisation:
    def test_overlapping_arm_suppresses_other_slot(self, sequences):
        answers = build_answers(sequences)

        class CoPurchaseClone(OracleRecommender):
            pass

        co_slot = OracleRecommender(
            {(s[-1],): a for s, a in ((k, v) for k, v in answers.items())}
        )
        # Arm "clone" recommends exactly what the co-purchase slot shows.
        clone_answers = {
            prefix: answers[prefix] for prefix in answers
        }
        test = ABTest(
            arms={
                "control": RandomJunkRecommender(),
                "clone": OracleRecommender(clone_answers),
            },
            control="control",
            cannibalisation=1.0,
        )
        report = test.run(sequences, reference_cooccurrence=co_slot)
        assert (
            report.arms["clone"].cannibalisation_pressure
            > report.arms["control"].cannibalisation_pressure
        )
        assert (
            report.arms["clone"].other_slot_rate
            < report.arms["control"].other_slot_rate
        )

    def test_no_reference_means_no_pressure(self, sequences):
        test = ABTest(
            arms={"a": RandomJunkRecommender(), "b": RandomJunkRecommender()},
            control="a",
        )
        report = test.run(sequences)
        assert all(
            o.cannibalisation_pressure == 0.0 for o in report.arms.values()
        )


class TestVariantRecommender:
    def test_view_projection(self):
        calls = []

        class Spy:
            def recommend(self, session_items, how_many=21):
                calls.append(list(session_items))
                return []

        recent = VariantRecommender(Spy(), ServingVariant.RECENT)
        recent.recommend([1, 2, 3])
        hist = VariantRecommender(Spy(), ServingVariant.HIST)
        hist.recommend([1, 2, 3])
        assert calls == [[3], [2, 3]]

    def test_empty_session(self):
        class Boom:
            def recommend(self, session_items, how_many=21):
                raise AssertionError("must not be called")

        assert VariantRecommender(Boom(), ServingVariant.RECENT).recommend([]) == []


class TestReportRendering:
    def test_summary_table(self, sequences):
        answers = build_answers(sequences)
        test = ABTest(
            arms={
                "legacy": RandomJunkRecommender(),
                "serenade": OracleRecommender(answers),
            },
            control="legacy",
        )
        report = test.run(sequences)
        text = report.summary()
        assert "legacy" in text and "serenade" in text
        assert "%" in text
