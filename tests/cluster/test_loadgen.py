"""Tests for the traffic generator and rate profiles."""

from __future__ import annotations

import pytest

from repro.cluster.loadgen import (
    TrafficGenerator,
    constant_rate,
    diurnal_rate,
    ramp_rate,
)
from repro.data.clicklog import ClickLog


class TestRateProfiles:
    def test_constant(self):
        profile = constant_rate(500)
        assert profile(0) == 500
        assert profile(10_000) == 500

    def test_ramp(self):
        profile = ramp_rate(100, 1100, duration=100)
        assert profile(0) == pytest.approx(100)
        assert profile(50) == pytest.approx(600)
        assert profile(100) == pytest.approx(1100)
        assert profile(500) == pytest.approx(1100)

    def test_diurnal_bounds_and_peak(self):
        profile = diurnal_rate(200, 600, peak_hour=20)
        values = [profile(hour * 3600.0) for hour in range(24)]
        assert min(values) >= 200 - 1e-6
        assert max(values) <= 600 + 1e-6
        assert values.index(max(values)) == 20

    def test_diurnal_is_periodic(self):
        profile = diurnal_rate(200, 600)
        assert profile(3600.0) == pytest.approx(profile(3600.0 + 86_400.0))


class TestTrafficGenerator:
    def test_arrival_times_ordered_within_step(self, small_log):
        generator = TrafficGenerator(small_log, seed=1)
        arrivals = list(generator.generate(constant_rate(50), duration=5))
        assert arrivals
        times = [a.arrival_time for a in arrivals]
        assert times == sorted(times)
        assert all(0 <= t < 5 for t in times)

    def test_rate_roughly_respected(self, small_log):
        generator = TrafficGenerator(small_log, seed=2)
        arrivals = list(generator.generate(constant_rate(100), duration=20))
        assert 1400 <= len(arrivals) <= 2600  # 2000 expected, Poisson noise

    def test_sampling_thins_traffic(self, small_log):
        full = list(
            TrafficGenerator(small_log, seed=3).generate(
                constant_rate(100), duration=10
            )
        )
        thinned = list(
            TrafficGenerator(small_log, seed=3).generate(
                constant_rate(100), duration=10, sample_fraction=0.1
            )
        )
        assert len(thinned) < len(full) / 5

    def test_sessions_replay_item_sequences(self, small_log):
        generator = TrafficGenerator(small_log, seed=4)
        arrivals = list(generator.generate(constant_rate(30), duration=10))
        by_session: dict[str, list[int]] = {}
        for timed in arrivals:
            by_session.setdefault(timed.request.session_key, []).append(
                timed.request.item_id
            )
        known = {
            tuple(items) for items in small_log.session_item_sequences().values()
        }
        for items in by_session.values():
            # Every replayed stream must be a prefix of some real session.
            assert any(tuple(items) == seq[: len(items)] for seq in known)

    def test_deterministic_given_seed(self, small_log):
        first = list(
            TrafficGenerator(small_log, seed=5).generate(constant_rate(40), 5)
        )
        second = list(
            TrafficGenerator(small_log, seed=5).generate(constant_rate(40), 5)
        )
        assert [(a.arrival_time, a.request.session_key) for a in first] == [
            (a.arrival_time, a.request.session_key) for a in second
        ]

    def test_bad_sample_fraction(self, small_log):
        generator = TrafficGenerator(small_log, seed=1)
        with pytest.raises(ValueError):
            list(generator.generate(constant_rate(10), 1, sample_fraction=0))

    def test_empty_source_rejected(self):
        with pytest.raises(ValueError):
            TrafficGenerator(ClickLog([]))
