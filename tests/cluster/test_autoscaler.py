"""Tests for the autoscaling policy and simulator."""

from __future__ import annotations

import pytest

from repro.cluster.autoscaler import (
    AutoscalePolicy,
    AutoscalingSimulator,
)
from repro.cluster.loadgen import TimedRequest
from repro.serving.app import ServingCluster
from repro.serving.server import RecommendationRequest


class TestPolicy:
    def test_decide_scale_up(self):
        policy = AutoscalePolicy(scale_up_at=0.6, scale_down_at=0.1)
        assert policy.decide(0.7, current_pods=3) == 4

    def test_decide_scale_down(self):
        policy = AutoscalePolicy(scale_up_at=0.6, scale_down_at=0.1, min_pods=2)
        assert policy.decide(0.05, current_pods=3) == 2

    def test_hysteresis_band_holds(self):
        policy = AutoscalePolicy(scale_up_at=0.6, scale_down_at=0.1)
        assert policy.decide(0.3, current_pods=3) == 3

    def test_bounds_respected(self):
        policy = AutoscalePolicy(min_pods=2, max_pods=4)
        assert policy.decide(0.99, current_pods=4) == 4
        assert policy.decide(0.0, current_pods=2) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(scale_up_at=0.1, scale_down_at=0.6).validate()
        with pytest.raises(ValueError):
            AutoscalePolicy(min_pods=5, max_pods=2).validate()
        with pytest.raises(ValueError):
            AutoscalePolicy(cooldown_seconds=-1).validate()


class BusyRecommender:
    """Burns a fixed amount of CPU per request (deterministic-ish load)."""

    def __init__(self, loops: int = 20_000) -> None:
        self.loops = loops

    def recommend(self, session_items, how_many=21):
        total = 0
        for i in range(self.loops):
            total += i
        return []


def make_cluster(num_pods=2, loops=20_000):
    return ServingCluster(lambda: BusyRecommender(loops), num_pods=num_pods)


def arrivals(rate_per_second: float, duration: float):
    count = int(rate_per_second * duration)
    step = duration / max(count, 1)
    return [
        TimedRequest(i * step, RecommendationRequest(f"u{i % 50}", i % 100))
        for i in range(count)
    ]


class TestSimulator:
    def test_scales_up_under_load(self):
        cluster = make_cluster(num_pods=2)
        policy = AutoscalePolicy(
            scale_up_at=0.005,
            scale_down_at=0.0001,
            min_pods=2,
            max_pods=5,
            cooldown_seconds=2.0,
        )
        simulator = AutoscalingSimulator(
            cluster, policy, cores_per_pod=1, evaluation_interval=2.0
        )
        result = simulator.run(arrivals(60, 20.0))
        assert result.total_requests == 1200
        up_actions = [a for a in result.actions if a.to_pods > a.from_pods]
        assert up_actions, "policy should have scaled up"
        assert result.max_pods_used > 2
        assert len(cluster.pods) == result.pods_over_time[-1][1]

    def test_scales_down_when_idle(self):
        cluster = make_cluster(num_pods=3, loops=100)
        policy = AutoscalePolicy(
            scale_up_at=0.9,
            scale_down_at=0.5,
            min_pods=1,
            max_pods=4,
            cooldown_seconds=0.0,
        )
        simulator = AutoscalingSimulator(
            cluster, policy, cores_per_pod=2, evaluation_interval=1.0
        )
        result = simulator.run(arrivals(5, 10.0))
        down_actions = [a for a in result.actions if a.to_pods < a.from_pods]
        assert down_actions, "idle cluster should shrink"
        assert len(cluster.pods) >= policy.min_pods

    def test_cooldown_limits_action_rate(self):
        cluster = make_cluster(num_pods=2)
        policy = AutoscalePolicy(
            scale_up_at=0.001,
            scale_down_at=0.0001,
            min_pods=2,
            max_pods=10,
            cooldown_seconds=5.0,
        )
        simulator = AutoscalingSimulator(
            cluster, policy, cores_per_pod=1, evaluation_interval=1.0
        )
        result = simulator.run(arrivals(60, 10.0))
        # With a 5 s cooldown over 10 s there can be at most ~2-3 actions.
        assert len(result.actions) <= 3

    def test_respects_max_pods(self):
        cluster = make_cluster(num_pods=2)
        policy = AutoscalePolicy(
            scale_up_at=0.0001,
            scale_down_at=0.00001,
            min_pods=2,
            max_pods=3,
            cooldown_seconds=0.0,
        )
        simulator = AutoscalingSimulator(
            cluster, policy, cores_per_pod=1, evaluation_interval=1.0
        )
        result = simulator.run(arrivals(50, 10.0))
        assert result.max_pods_used <= 3

    def test_parameter_validation(self, toy_index):
        cluster = ServingCluster.with_index(toy_index, num_pods=1, m=5, k=5)
        with pytest.raises(ValueError):
            AutoscalingSimulator(cluster, AutoscalePolicy(), cores_per_pod=0)
        with pytest.raises(ValueError):
            AutoscalingSimulator(
                cluster, AutoscalePolicy(), evaluation_interval=0
            )
