"""Replicated-ring chaos suite: failover, hedging, fencing, rebalance.

ISSUE acceptance, executable: a leader ``kill_pod`` mid-traffic loses
zero acknowledged session clicks; the post-failover cluster's
recommendations are bit-identical to an unfailed oracle cluster
(including through the DifferentialRunner against the VS-kNN reference);
hedged reads beat a straggler leader inside the 50 ms budget; partitioned
stale followers are fenced, never hedged to, and drop stale sessions on
promotion; scale-up rebalances and scale-down drains before deleting the
WAL — all deterministic on the virtual clock.
"""

from __future__ import annotations

import pytest

from repro.cluster.autoscaler import AutoscalePolicy, AutoscalingSimulator
from repro.cluster.chaos import ChaosSchedule, NetworkPartition, PodKill, PodSlowdown
from repro.cluster.loadgen import TrafficGenerator, constant_rate
from repro.core.index import SessionIndex
from repro.core.vmis import VMISKNN
from repro.serving.app import ServingCluster
from repro.serving.ring import ReplicationPolicy
from repro.serving.server import RecommendationRequest
from repro.serving.variants import ServingVariant
from repro.testing.clock import VirtualClock
from repro.testing.generators import WorkloadConfig
from repro.testing.oracle import DifferentialRunner, HyperParams
from repro.testing.simulation import SimulatedCluster

pytestmark = pytest.mark.chaos

POLICY = ReplicationPolicy(replication_factor=2)


def ring_cluster(log, num_pods=3, policy=POLICY, clock=None, **kwargs):
    index = SessionIndex.from_clicks(log, max_sessions_per_item=100)
    clock = clock or VirtualClock()
    cluster = ServingCluster.with_index(
        index,
        num_pods=num_pods,
        m=100,
        k=50,
        clock=clock,
        perf_clock=clock,
        replication=policy,
        **kwargs,
    )
    return cluster, clock


def leader_of(cluster, session_key):
    return cluster.router.preference_list(session_key, 2)[0]


def follower_of(cluster, session_key):
    return cluster.router.preference_list(session_key, 2)[1]


class TestZeroClickLoss:
    """Leader kills mid-traffic lose zero acknowledged clicks."""

    @pytest.mark.parametrize("seed", [11, 29, 47])
    def test_kill_storm_degrades_nothing(self, small_log, seed):
        index = SessionIndex.from_clicks(small_log, max_sessions_per_item=100)
        simulated = SimulatedCluster.with_index(
            index, num_pods=5, m=100, k=50, replication=POLICY
        )
        generator = TrafficGenerator(small_log, seed=seed)
        schedule = ChaosSchedule(
            [PodKill(at_time=4.0, pod_id="pod-1"), PodKill(at_time=8.0, pod_id="pod-3")]
        )
        report = simulated.run(
            generator.generate(constant_rate(60), duration=12), schedule
        )
        assert report.total_requests > 100
        assert report.failed_requests == 0
        # The replicated ring's whole point: every acknowledged click is
        # still there after both kills (the seed cluster loses them).
        assert report.degraded_requests == 0
        assert report.ring["enabled"]
        # Both dead pods were healed off the ring by the request path.
        assert "pod-1" not in report.ring["ring_pods"]
        assert "pod-3" not in report.ring["ring_pods"]

    def test_promoted_follower_serves_the_very_next_request(self, small_log):
        cluster, _ = ring_cluster(small_log)
        key = "promote-me"
        for item in (1, 2, 3):
            cluster.handle(RecommendationRequest(key, item))
        leader = leader_of(cluster, key)
        follower = follower_of(cluster, key)
        cluster.kill_pod(leader)
        response = cluster.handle(RecommendationRequest(key, 4))
        assert response.served_by == follower
        stored = cluster.pods[follower].sessions.get_session(key)
        assert stored == [1, 2, 3, 4]
        assert cluster.ring_info()["failovers"] == 1

    def test_replica_copies_stay_in_sync_per_append(self, small_log):
        cluster, _ = ring_cluster(small_log)
        key = "in-sync"
        for item in (5, 6, 7):
            cluster.handle(RecommendationRequest(key, item))
        leader, follower = cluster.router.preference_list(key, 2)
        assert cluster.pods[leader].sessions.get_session(key) == [5, 6, 7]
        assert cluster.pods[follower].sessions.get_session(key) == [5, 6, 7]
        assert cluster.ring_info()["max_replication_lag"] == 0

    def test_no_consent_requests_do_not_replicate(self, small_log):
        cluster, _ = ring_cluster(small_log)
        key = "incognito"
        cluster.handle(RecommendationRequest(key, 1, consent=False))
        leader, follower = cluster.router.preference_list(key, 2)
        assert cluster.pods[leader].sessions.get_session(key) is None
        assert cluster.pods[follower].sessions.get_session(key) is None


class TestFailoverBitIdentical:
    """Post-failover recommendations match an unfailed oracle cluster."""

    @pytest.mark.parametrize("which", [0, 1, 2])
    def test_failed_and_unfailed_clusters_agree(self, small_log, which):
        sequences = [
            items
            for items in small_log.session_item_sequences().values()
            if len(items) >= 4
        ]
        sequence = sequences[which % len(sequences)]
        failed, _ = ring_cluster(small_log, num_pods=4)
        oracle, _ = ring_cluster(small_log, num_pods=4)
        key = f"oracle-{which}"

        def request(item):
            return RecommendationRequest(
                key, item, variant=ServingVariant.FULL, how_many=20
            )

        for item in sequence[:-1]:
            failed.handle(request(item))
            oracle.handle(request(item))
        failed.kill_pod(leader_of(failed, key))
        final_failed = failed.handle(request(sequence[-1]))
        final_oracle = oracle.handle(request(sequence[-1]))
        assert final_failed.served_by != final_oracle.served_by
        assert final_failed.items == final_oracle.items

    def test_differential_runner_holds_failover_to_bit_exactness(self):
        """The ring path (leader write → replicate → kill leader →
        promoted follower serves) is one more implementation the oracle
        holds to exact equivalence with VS-kNN."""

        def ring_failover(clicks, params):
            return _RingFailoverImpl(clicks, params)

        runner = DifferentialRunner(
            how_many=20, extra_implementations={"ring-failover": ring_failover}
        )
        report = runner.run_corpus(
            [
                WorkloadConfig(seed=3, num_sessions=40, num_items=30),
                WorkloadConfig(seed=9, num_sessions=25, num_items=20),
            ],
            grid=[HyperParams(m=64, k=20), HyperParams(m=5, k=3)],
            queries_per_workload=2,
        )
        assert report.equivalent, report.divergences[0].describe()


class _RingFailoverImpl:
    """Oracle adapter: answer queries through a ring cluster that loses
    its leader immediately before the final click of every session."""

    def __init__(self, clicks, params):
        index = SessionIndex.from_clicks(clicks, max_sessions_per_item=params.m)
        clock = VirtualClock()
        self.cluster = ServingCluster(
            lambda: VMISKNN(
                index,
                m=params.m,
                k=params.k,
                decay=params.decay,
                match_weight=params.match_weight,
            ),
            num_pods=3,
            clock=clock,
            perf_clock=clock,
            replication=POLICY,
        )
        self._counter = 0

    def recommend(self, query, how_many):
        key = f"diff-{self._counter}"
        self._counter += 1
        cluster = self.cluster
        response = None
        for position, item in enumerate(query):
            request = RecommendationRequest(
                key, item, variant=ServingVariant.FULL, how_many=how_many
            )
            if position == len(query) - 1:
                leader = leader_of(cluster, key)
                cluster.kill_pod(leader)
                response = cluster.handle(request)
                cluster.restart_pod(leader)
            else:
                response = cluster.handle(request)
        assert response is not None
        return list(response.items)


class TestHedgedReads:
    def test_hedge_beats_straggler_leader_inside_budget(self, small_log):
        cluster, _ = ring_cluster(small_log)
        key = "hedge-me"
        straggler = leader_of(cluster, key)
        cluster.pods[straggler].injected_stall_seconds = 0.2
        response = cluster.handle(RecommendationRequest(key, 1))
        # hedge delay = 50 ms × 0.25 = 12.5 ms; the healthy follower
        # answers instantly, so the race resolves at exactly 12.5 ms.
        assert response.served_by == follower_of(cluster, key)
        assert response.service_seconds == pytest.approx(0.0125)
        info = cluster.ring_info()
        assert info["hedges_fired"] == 1
        assert info["hedge_wins"] == 1

    def test_hedging_disabled_pays_the_straggler_in_full(self, small_log):
        policy = ReplicationPolicy(replication_factor=2, hedge_enabled=False)
        cluster, _ = ring_cluster(small_log, policy=policy)
        key = "no-hedge"
        straggler = leader_of(cluster, key)
        cluster.pods[straggler].injected_stall_seconds = 0.2
        response = cluster.handle(RecommendationRequest(key, 1))
        assert response.served_by == straggler
        assert response.service_seconds == pytest.approx(0.2)
        assert cluster.ring_info()["hedges_fired"] == 0

    def test_fast_leader_never_hedges(self, small_log):
        cluster, _ = ring_cluster(small_log)
        for i in range(30):
            cluster.handle(RecommendationRequest(f"fast-{i}", 1))
        info = cluster.ring_info()
        assert info["hedges_fired"] == 0

    def test_slowdown_storm_through_chaos_schedule(self, small_log):
        """A PodSlowdown storm: p99 stays within the 50 ms budget because
        every straggler-owned request hedges to a healthy follower."""
        index = SessionIndex.from_clicks(small_log, max_sessions_per_item=100)
        simulated = SimulatedCluster.with_index(
            index, num_pods=4, m=100, k=50, replication=POLICY
        )
        generator = TrafficGenerator(small_log, seed=21)
        schedule = ChaosSchedule(
            slowdowns=[PodSlowdown(at_time=0.0, pod_id="pod-0", delay_seconds=0.2)]
        )
        report = simulated.run(
            generator.generate(constant_rate(50), duration=10), schedule
        )
        assert report.slowdowns_applied == 1
        assert report.failed_requests == 0
        assert report.degraded_requests == 0
        assert report.ring["hedge_wins"] >= 1
        assert report.latency.percentile(99) <= 0.05
        assert report.latency.fraction_within(0.05) == 1.0


class TestPartitionFencing:
    def test_stale_follower_is_never_hedged_to(self, small_log):
        cluster, _ = ring_cluster(small_log)
        key = "fenced"
        leader, follower = cluster.router.preference_list(key, 2)
        cluster.partition(leader, follower)
        cluster.handle(RecommendationRequest(key, 1))  # appended while cut
        cluster.pods[leader].injected_stall_seconds = 0.2
        response = cluster.handle(RecommendationRequest(key, 2))
        # The only follower is stale: the hedge is fenced and the slow
        # leader's answer (with the full history) is served instead.
        assert response.served_by == leader
        info = cluster.ring_info()
        assert info["fenced_hedges"] >= 1
        assert info["hedge_wins"] == 0
        assert f"{leader}->{follower}" in info["partitioned_links"]

    def test_promoted_stale_follower_drops_fenced_sessions(self, small_log):
        cluster, _ = ring_cluster(small_log)
        key = "rewound"
        leader, follower = cluster.router.preference_list(key, 2)
        cluster.handle(RecommendationRequest(key, 1))  # replicated: in sync
        cluster.partition(leader, follower)
        cluster.handle(RecommendationRequest(key, 2))  # leader-only
        cluster.kill_pod(leader)
        response = cluster.handle(RecommendationRequest(key, 3))
        # Promotion fences the stale copy: honest loss, not a rewind —
        # the session restarts from the post-failover click.
        assert response.served_by == follower
        assert cluster.pods[follower].sessions.get_session(key) == [3]
        info = cluster.ring_info()
        assert info["fenced_sessions"] >= 1
        assert info["failovers"] == 1

    def test_healed_partition_catches_up_and_lifts_the_fence(self, small_log):
        cluster, _ = ring_cluster(small_log)
        key = "healed"
        leader, follower = cluster.router.preference_list(key, 2)
        cluster.partition(leader, follower)
        cluster.handle(RecommendationRequest(key, 1))
        cluster.handle(RecommendationRequest(key, 2))
        assert cluster.pods[follower].sessions.get_session(key) is None
        cluster.heal_partition(leader, follower)
        cluster.handle(RecommendationRequest(key, 3))  # ships catch-up tail
        assert cluster.pods[follower].sessions.get_session(key) == [1, 2, 3]
        # Caught up: promotion now serves the full history, nothing fenced.
        cluster.kill_pod(leader)
        response = cluster.handle(RecommendationRequest(key, 4))
        assert response.served_by == follower
        assert cluster.pods[follower].sessions.get_session(key) == [1, 2, 3, 4]
        assert cluster.ring_info()["fenced_sessions"] == 0

    def test_partition_storm_through_chaos_schedule(self, small_log):
        index = SessionIndex.from_clicks(small_log, max_sessions_per_item=100)
        simulated = SimulatedCluster.with_index(
            index, num_pods=3, m=100, k=50, replication=POLICY
        )
        generator = TrafficGenerator(small_log, seed=33)
        schedule = ChaosSchedule(
            partitions=[
                NetworkPartition(
                    at_time=2.0, pod_a="pod-0", pod_b="pod-1", heal_at=6.0
                )
            ]
        )
        report = simulated.run(
            generator.generate(constant_rate(50), duration=10), schedule
        )
        assert report.partitions_applied == 1
        assert report.partitions_healed == 1
        assert report.failed_requests == 0
        # Requests keep flowing during the cut; nothing is lost because
        # the leaders (not the cut links) own the authoritative copies.
        assert report.degraded_requests == 0


class TestRebalancing:
    def test_scale_up_rebalances_without_failing_requests(self, small_log):
        cluster, _ = ring_cluster(small_log, num_pods=2)
        keys = [f"r{i}" for i in range(40)]
        for key in keys:
            for item in (1, 2):
                cluster.handle(RecommendationRequest(key, item))
        cluster.scale_to(3)
        assert cluster.ring_info()["rebalanced_sessions"] > 0
        for key in keys:
            response = cluster.handle(RecommendationRequest(key, 3))
            leader = leader_of(cluster, key)
            assert response.served_by in cluster.pods
            assert cluster.pods[leader].sessions.get_session(key) == [1, 2, 3]
        # A second interleaved pass: fresh links' full-log resyncs must
        # not replay pre-rebalance records over copies that advanced
        # since (regression for the stale-delete/stale-put rewind).
        for key in keys:
            cluster.handle(RecommendationRequest(key, 4))
        for key in keys:
            leader = leader_of(cluster, key)
            assert cluster.pods[leader].sessions.get_session(key) == [1, 2, 3, 4]

    def test_restarted_pod_rejoins_and_receives_its_sessions_back(self, small_log):
        cluster, _ = ring_cluster(small_log, num_pods=3)
        keys = [f"b{i}" for i in range(30)]
        for key in keys:
            cluster.handle(RecommendationRequest(key, 1))
        victims = [key for key in keys if leader_of(cluster, key) == "pod-0"]
        assert victims
        cluster.kill_pod("pod-0")
        for key in victims:  # failover heals the ring per key
            cluster.handle(RecommendationRequest(key, 2))
        cluster.restart_pod("pod-0")
        assert "pod-0" in cluster.router.pods
        for key in victims:
            response = cluster.handle(RecommendationRequest(key, 3))
            assert response.served_by in cluster.pods
            leader = leader_of(cluster, key)
            assert cluster.pods[leader].sessions.get_session(key) == [1, 2, 3]

    def test_decommission_drains_before_deleting_wal(self, small_log, tmp_path):
        """Satellite regression: drain-then-delete ordering. Scale-down
        must hand every session to its new owners *before* the WAL goes."""
        cluster, _ = ring_cluster(small_log, num_pods=3, wal_dir=tmp_path)
        keys = [f"d{i}" for i in range(30)]
        for key in keys:
            for item in (1, 2):
                cluster.handle(RecommendationRequest(key, item))
        moved = [key for key in keys if leader_of(cluster, key) == "pod-2"]
        assert moved  # some sessions were led by the decommissioned pod
        cluster.scale_to(2)
        assert not (tmp_path / "pod-2.wal").exists()
        assert cluster.ring_info()["drained_sessions"] > 0
        for key in keys:
            response = cluster.handle(RecommendationRequest(key, 3))
            assert response.served_by in cluster.pods
            leader = leader_of(cluster, key)
            # Full history survived the planned scale-down: zero loss,
            # unlike the seed's accepted-loss scale-down.
            assert cluster.pods[leader].sessions.get_session(key) == [1, 2, 3]


class TestAutoscalerThroughRing:
    def test_scaling_actions_flow_through_the_coordinator(self, small_log):
        cluster, _ = ring_cluster(small_log, num_pods=2)
        for server in cluster.pods.values():
            server.injected_stall_seconds = 0.02
        policy = AutoscalePolicy(
            scale_up_at=0.5,
            scale_down_at=0.05,
            min_pods=2,
            max_pods=4,
            cooldown_seconds=0.0,
        )
        simulator = AutoscalingSimulator(
            cluster, policy, cores_per_pod=1, evaluation_interval=5.0
        )
        generator = TrafficGenerator(small_log, seed=41)
        result = simulator.run(
            generator.generate(constant_rate(80), duration=30)
        )
        assert result.total_requests > 0
        assert result.actions  # the policy did scale the ring
        assert any(action.to_pods > action.from_pods for action in result.actions)
        assert result.max_pods_used >= 3
        assert cluster.ring_info()["enabled"]
