"""Crash recovery under fault injection: re-routing and WAL replay.

These tests drive a killed-and-restarted pod through the chaos harness
and verify the two recovery paths: requests for a dead pod re-route over
the surviving ring (never error), and a pod restarted on a WAL volume
recovers its pre-kill sessions.
"""

from __future__ import annotations

import pytest

from repro.cluster.chaos import ChaosInjector, ChaosSchedule, PodKill
from repro.cluster.loadgen import TrafficGenerator, constant_rate
from repro.core.index import SessionIndex
from repro.serving.app import ServingCluster
from repro.serving.resilience import ResiliencePolicy
from repro.serving.server import RecommendationRequest

pytestmark = pytest.mark.chaos


def make_cluster(log, num_pods=2, **kwargs):
    index = SessionIndex.from_clicks(log, max_sessions_per_item=100)
    return ServingCluster.with_index(index, num_pods=num_pods, m=100, k=50, **kwargs)


class TestSchedule:
    def test_kills_sorted_by_time(self):
        schedule = ChaosSchedule(
            [PodKill(9.0, "pod-1"), PodKill(2.0, "pod-0")]
        )
        assert [kill.at_time for kill in schedule] == [2.0, 9.0]
        assert len(schedule) == 2

    def test_invalid_restart_rejected_at_construction(self):
        with pytest.raises(ValueError):
            ChaosSchedule([PodKill(5.0, "pod-0", restart_at=1.0)])


class TestDeadPodRerouting:
    def test_requests_for_killed_pod_reroute_instead_of_erroring(self, small_log):
        """Regression: a stale ring entry must heal, not raise KeyError."""
        cluster = make_cluster(small_log, num_pods=3)
        # Find sessions owned by pod-1 and seed state there.
        victims = [f"v{i}" for i in range(200) if cluster.router.route(f"v{i}") == "pod-1"]
        assert victims
        for key in victims:
            cluster.handle(RecommendationRequest(key, 1))
        cluster.kill_pod("pod-1")
        assert "pod-1" in cluster.router.pods  # died without deregistering
        for key in victims:
            response = cluster.handle(RecommendationRequest(key, 2))
            assert response.served_by in ("pod-0", "pod-2")
            assert response.items
        assert "pod-1" not in cluster.router.pods  # healed lazily
        assert cluster.rerouted_requests >= 1

    def test_rerouting_through_chaos_schedule(self, small_log):
        cluster = make_cluster(small_log, num_pods=3)
        generator = TrafficGenerator(small_log, seed=11)
        injector = ChaosInjector(
            cluster, ChaosSchedule([PodKill(at_time=4.0, pod_id="pod-0")])
        )
        report = injector.run(generator.generate(constant_rate(60), duration=12))
        assert report.availability == 1.0
        assert report.failed_requests == 0
        survivors = set(cluster.pods)
        assert set(report.session_moves.values()) <= survivors

    def test_recovery_horizon_measured_for_displaced_sessions(self, small_log):
        cluster = make_cluster(small_log, num_pods=2)
        generator = TrafficGenerator(small_log, seed=12)
        injector = ChaosInjector(cluster, [PodKill(at_time=5.0, pod_id="pod-0")])
        report = injector.run(generator.generate(constant_rate(80), duration=20))
        assert report.recovery_horizon  # some sessions regained context
        assert all(horizon >= 0.0 for horizon in report.recovery_horizon.values())
        assert report.mean_recovery_horizon is not None
        assert report.mean_recovery_horizon >= 0.0


class TestWALRecovery:
    def test_restarted_pod_recovers_sessions_from_wal(self, small_log, tmp_path):
        """ISSUE acceptance: >= 95% of pre-kill live sessions restored."""
        cluster = make_cluster(small_log, num_pods=2, wal_dir=tmp_path)
        generator = TrafficGenerator(small_log, seed=13)
        injector = ChaosInjector(
            cluster,
            ChaosSchedule([PodKill(at_time=6.0, pod_id="pod-0", restart_at=9.0)]),
        )
        report = injector.run(generator.generate(constant_rate(60), duration=14))
        event = report.events[0]
        assert event.sessions_lost > 0
        assert event.recovery_rate >= 0.95
        assert report.recovered_sessions == event.sessions_recovered
        assert cluster.recovered_sessions == report.recovered_sessions

    def test_without_wal_restarted_pod_is_empty(self, small_log):
        cluster = make_cluster(small_log, num_pods=2)  # no wal_dir
        generator = TrafficGenerator(small_log, seed=13)
        injector = ChaosInjector(
            cluster,
            ChaosSchedule([PodKill(at_time=6.0, pod_id="pod-0", restart_at=9.0)]),
        )
        report = injector.run(generator.generate(constant_rate(60), duration=14))
        event = report.events[0]
        assert event.sessions_lost > 0
        assert event.sessions_recovered == 0
        assert report.recovered_sessions == 0

    def test_wal_replay_restores_exact_histories(self, small_log, tmp_path):
        """Replay equality: the restarted store holds the same sessions."""
        cluster = make_cluster(small_log, num_pods=2, wal_dir=tmp_path)
        for i in range(60):
            for item in (1, 2, 3):
                cluster.handle(RecommendationRequest(f"w{i}", item))
        victim = cluster.kill_pod("pod-0")  # crash: store never closed
        before = victim.sessions.as_dict()
        assert before
        restarted = cluster.restart_pod("pod-0")
        assert restarted.sessions.as_dict() == before

    def test_graceful_scale_down_deletes_wal(self, small_log, tmp_path):
        cluster = make_cluster(small_log, num_pods=2, wal_dir=tmp_path)
        for i in range(30):
            cluster.handle(RecommendationRequest(f"g{i}", 1))
        cluster.scale_to(1)
        assert not (tmp_path / "pod-1.wal").exists()
        # Scaling back up must not resurrect the decommissioned sessions.
        cluster.scale_to(2)
        assert len(cluster.pods["pod-1"].sessions) == 0


class TestChaosWithGuardrails:
    def test_guardrailed_cluster_survives_kill_and_restart(self, small_log, tmp_path):
        cluster = make_cluster(
            small_log,
            num_pods=2,
            wal_dir=tmp_path,
            resilience=ResiliencePolicy(queue_capacity=512),
        )
        generator = TrafficGenerator(small_log, seed=14)
        injector = ChaosInjector(
            cluster,
            ChaosSchedule([PodKill(at_time=5.0, pod_id="pod-1", restart_at=8.0)]),
        )
        report = injector.run(generator.generate(constant_rate(50), duration=12))
        assert report.availability == 1.0
        assert report.events[0].recovery_rate >= 0.95
        info = cluster.resilience_info()
        assert info["enabled"]
        assert info["requests"] > 0
        assert info["recovered_sessions"] == report.recovered_sessions
        # Breaker states exposed per pod and stage.
        assert any(key.endswith("/primary") for key in info["breaker_states"])
