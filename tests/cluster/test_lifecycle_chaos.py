"""Chaos tests for the hardened index lifecycle (ISSUE PR 3 acceptance).

The headline scenario: kill a pod mid-rollout *and* inject one corrupt
index artifact. The fleet must serve zero failed requests throughout,
the corrupt index must never be promoted, the cluster must converge to a
single consistent version, and the automatic rollback must be counted on
``/metrics``.
"""

from __future__ import annotations

import random

import pytest

from repro.core.vmis import VMISKNN
from repro.data.split import temporal_split
from repro.index.builder import IndexBuilder
from repro.index.lifecycle import (
    DailyIndexLifecycle,
    GatePolicy,
    IndexRegistry,
    RolloutController,
    RolloutPolicy,
)
from repro.index.lifecycle.registry import ARTIFACT_NAME
from repro.serving.app import ServingCluster
from repro.serving.http import SerenadeService
from repro.serving.server import RecommendationRequest

pytestmark = pytest.mark.chaos


@pytest.fixture()
def split(small_log):
    return temporal_split(small_log, test_days=1)


@pytest.fixture()
def registry(tmp_path, split):
    """v000001: good, promoted. v000002: corrupt on disk. v000003: good."""
    registry = IndexRegistry(tmp_path / "registry")
    train = list(split.train)
    builder = IndexBuilder(max_sessions_per_item=100)
    registry.register(builder.build(train))
    registry.promote("v000001")
    registry.register(builder.build(train))
    artifact = registry.root / "v000002" / ARTIFACT_NAME
    data = bytearray(artifact.read_bytes())
    data[len(data) // 3] ^= 0xFF  # the injected bit-flip
    artifact.write_bytes(bytes(data))
    registry.register(builder.build(train))
    return registry


@pytest.fixture()
def cluster(registry):
    return ServingCluster.with_index(
        registry.load("v000001"),
        num_pods=4,
        m=100,
        k=50,
        index_version="v000001",
    )


def drive_traffic(cluster, count, prefix, failures):
    """Send real consented traffic; record any exception or empty answer."""
    for i in range(count):
        try:
            response = cluster.handle(
                RecommendationRequest(f"{prefix}-{i % 40}", 1 + i % 5)
            )
            if response.degraded:
                failures.append((f"{prefix}-{i}", "degraded"))
        except Exception as error:  # noqa: BLE001 - chaos harness counts all
            failures.append((f"{prefix}-{i}", repr(error)))


def version_factory(registry, version):
    return lambda: VMISKNN(
        registry.load(version), m=100, k=50, exclude_current_items=True
    )


def make_controller(cluster, **kwargs):
    kwargs.setdefault("canary_probe_requests", 10)
    kwargs.setdefault("min_latency_samples", 1_000_000)
    kwargs.setdefault("backoff_base_seconds", 0.0)
    return RolloutController(
        cluster,
        RolloutPolicy(**kwargs),
        rng=random.Random(0),
        sleep=lambda _s: None,
    )


class TestCorruptArtifactNeverPromoted:
    def test_pipeline_refuses_corrupt_candidate(self, registry, cluster, split):
        lifecycle = DailyIndexLifecycle(
            registry, gate_policy=GatePolicy(max_predictions=30, m=100, k=50)
        )
        failures = []
        drive_traffic(cluster, 40, "before", failures)
        outcome = lifecycle.promote(
            "v000002", split.test_sequences(), cluster=cluster
        )
        drive_traffic(cluster, 40, "after", failures)
        assert not outcome.succeeded
        assert outcome.refused_at == "artifact"
        assert "corrupted" in outcome.refusal_reasons[0]
        assert registry.current_version() == "v000001"
        assert failures == []
        info = cluster.rollout_info()
        assert info["consistent"]
        assert info["committed_version"] == "v000001"

    def test_rollout_of_corrupt_artifact_rolls_back(self, registry, cluster):
        failures = []
        drive_traffic(cluster, 30, "pre", failures)
        report = make_controller(cluster, max_load_attempts=2).run(
            version_factory(registry, "v000002"), version="v000002"
        )
        drive_traffic(cluster, 30, "post", failures)
        assert not report.succeeded
        assert cluster.rollback_count == 1
        assert failures == []
        info = cluster.rollout_info()
        assert info["committed_version"] == "v000001"
        assert info["consistent"]


class TestKillMidRolloutPlusCorruptArtifact:
    def test_acceptance_scenario(self, registry, cluster):
        """Pod kill mid-rollout + one corrupt artifact: zero failed
        requests, no corrupt promotion, convergence, rollback on /metrics."""
        service = SerenadeService(cluster)
        failures = []
        drive_traffic(cluster, 40, "day0", failures)

        # Phase 1: the corrupt artifact is attempted and rolled back.
        corrupt = make_controller(cluster, max_load_attempts=2).run(
            version_factory(registry, "v000002"), version="v000002"
        )
        assert not corrupt.succeeded
        drive_traffic(cluster, 40, "day1", failures)

        # Phase 2: the good build rolls out while a pod dies mid-rollout
        # with live traffic in flight.
        victim = sorted(cluster.pods)[-1]
        controller = make_controller(cluster)
        default_probe = controller._default_canary_probe

        def chaotic_probe(c, canary_pods):
            drive_traffic(c, 20, "mid-rollout", failures)
            c.kill_pod(victim)
            drive_traffic(c, 20, "after-kill", failures)
            return default_probe(c, canary_pods)

        good = controller.run(
            version_factory(registry, "v000003"),
            version="v000003",
            canary_probe=chaotic_probe,
        )
        assert good.succeeded
        assert victim in good.skipped_pods
        drive_traffic(cluster, 40, "day2", failures)

        # Zero failed requests across every phase.
        assert failures == []

        # The corrupt version was never promoted anywhere.
        assert registry.current_version() == "v000001"  # pointer untouched
        info = cluster.rollout_info()
        assert "v000002" not in info["pod_versions"].values()
        assert info["committed_version"] == "v000003"

        # The killed pod converges to the committed version on restart.
        cluster.restart_pod(victim)
        info = cluster.rollout_info()
        assert info["consistent"]
        assert set(info["pod_versions"].values()) == {"v000003"}

        # The rollback is visible on /metrics.
        lines = service.render_metrics().splitlines()
        assert "serenade_index_rollbacks_total 1" in lines
        assert "serenade_rollout_state 3" in lines  # completed
        for pod_id in cluster.pods:
            assert f'serenade_index_version{{pod="{pod_id}"}} 3' in lines


class TestRepeatedChaos:
    def test_alternating_corrupt_and_good_rollouts_stay_available(
        self, registry, cluster
    ):
        """Every failed day must leave the fleet exactly as available as
        the day before; rollbacks accumulate on the counter."""
        failures = []
        for day in range(3):
            bad = make_controller(cluster, max_load_attempts=1).run(
                version_factory(registry, "v000002"), version="v000002"
            )
            assert not bad.succeeded
            drive_traffic(cluster, 25, f"chaos-day-{day}", failures)
            info = cluster.rollout_info()
            assert info["consistent"]
        assert cluster.rollback_count == 3
        assert failures == []
        good = make_controller(cluster).run(
            version_factory(registry, "v000003"), version="v000003"
        )
        assert good.succeeded
        assert cluster.rollout_info()["committed_version"] == "v000003"
