"""Tests for latency/utilisation metrics and timeline aggregation."""

from __future__ import annotations

import pytest

from repro.cluster.metrics import LatencyRecorder, TimelineAggregator, percentile


class TestPercentile:
    def test_exact_values(self):
        samples = sorted(float(v) for v in range(1, 101))
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 100.0
        assert percentile(samples, 50) == pytest.approx(50.0, abs=1.0)

    def test_single_sample(self):
        assert percentile([7.0], 99.5) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)


class TestLatencyRecorder:
    def test_summary_in_milliseconds(self):
        recorder = LatencyRecorder()
        for value in (0.001, 0.002, 0.010):
            recorder.record(value)
        summary = recorder.summary_ms()
        assert summary["p75"] <= summary["p90"] <= summary["p99.5"]
        assert summary["p99.5"] == pytest.approx(10.0)

    def test_len(self):
        recorder = LatencyRecorder()
        recorder.record(0.5)
        assert len(recorder) == 1


class TestTimelineAggregator:
    def test_bucketing(self):
        timeline = TimelineAggregator(bucket_seconds=10.0)
        timeline.record_request(1.0, 0.002, "pod-a", 0.001)
        timeline.record_request(5.0, 0.004, "pod-a", 0.002)
        timeline.record_request(15.0, 0.006, "pod-b", 0.003)
        buckets = timeline.buckets(cores_per_pod=1)
        assert len(buckets) == 2
        assert buckets[0].start == 0.0
        assert buckets[0].requests_per_second == pytest.approx(0.2)
        assert buckets[1].requests_per_second == pytest.approx(0.1)

    def test_core_usage_computation(self):
        timeline = TimelineAggregator(bucket_seconds=10.0)
        # 2 seconds of busy time in a 10-second bucket on 1 core = 20 %.
        timeline.record_request(0.0, 0.1, "pod-a", 2.0)
        bucket = timeline.buckets(cores_per_pod=1)[0]
        assert bucket.core_usage_percent["pod-a"] == pytest.approx(20.0)
        # On 2 cores the same busy time is 10 %.
        bucket2 = timeline.buckets(cores_per_pod=2)[0]
        assert bucket2.core_usage_percent["pod-a"] == pytest.approx(10.0)

    def test_observed_fraction_scales_throughput(self):
        timeline = TimelineAggregator(bucket_seconds=10.0, observed_fraction=0.1)
        for offset in range(5):
            timeline.record_request(float(offset), 0.001, "p", 0.001)
        bucket = timeline.buckets()[0]
        # 5 observed requests at 10% sampling = 50 nominal in 10 s = 5 rps.
        assert bucket.requests_per_second == pytest.approx(5.0)

    def test_latency_percentiles_per_bucket(self):
        timeline = TimelineAggregator(bucket_seconds=60.0)
        for latency in (0.001, 0.002, 0.003, 0.100):
            timeline.record_request(0.0, latency, "p", latency)
        bucket = timeline.buckets()[0]
        assert bucket.latency_p995_ms == pytest.approx(100.0)
        assert bucket.latency_p75_ms <= bucket.latency_p90_ms

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TimelineAggregator(bucket_seconds=0)
        with pytest.raises(ValueError):
            TimelineAggregator(bucket_seconds=1, observed_fraction=0.0)
