"""Tests for the statistical machinery, cross-checked against scipy."""

from __future__ import annotations


import pytest
from scipy import stats as scipy_stats

from repro.cluster.significance import (
    two_proportion_ztest,
    wilson_interval,
)


class TestZTest:
    def test_identical_arms_not_significant(self):
        result = two_proportion_ztest(100, 1000, 100, 1000)
        assert result.z_score == 0.0
        assert result.p_value == pytest.approx(1.0)
        assert not result.significant()

    def test_clear_uplift_significant(self):
        result = two_proportion_ztest(100, 10_000, 150, 10_000)
        assert result.significant()
        assert result.relative_uplift == pytest.approx(0.5)
        assert result.z_score > 0

    def test_direction_of_z(self):
        worse = two_proportion_ztest(150, 1000, 100, 1000)
        assert worse.z_score < 0

    def test_p_value_matches_normal_sf(self):
        result = two_proportion_ztest(120, 5000, 160, 5000)
        expected_p = 2 * scipy_stats.norm.sf(abs(result.z_score))
        assert result.p_value == pytest.approx(expected_p, rel=1e-9)

    def test_matches_scipy_chi2_without_correction(self):
        # A 2x2 chi-square test without Yates correction equals z^2.
        table = [[100, 900], [140, 860]]
        chi2, p, _, _ = scipy_stats.chi2_contingency(table, correction=False)
        result = two_proportion_ztest(100, 1000, 140, 1000)
        assert result.z_score**2 == pytest.approx(chi2, rel=1e-9)
        assert result.p_value == pytest.approx(p, rel=1e-9)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            two_proportion_ztest(1, 0, 1, 10)
        with pytest.raises(ValueError):
            two_proportion_ztest(11, 10, 1, 10)
        with pytest.raises(ValueError):
            two_proportion_ztest(1, 10, -1, 10)

    def test_uplift_requires_nonzero_control(self):
        result = two_proportion_ztest(0, 100, 10, 100)
        with pytest.raises(ZeroDivisionError):
            result.relative_uplift

    def test_degenerate_all_convert(self):
        result = two_proportion_ztest(10, 10, 10, 10)
        assert result.p_value == 1.0


class TestWilson:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.30 < high

    def test_narrower_with_more_data(self):
        narrow = wilson_interval(300, 1000)
        wide = wilson_interval(30, 100)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_bounds_in_unit_interval(self):
        low, high = wilson_interval(0, 50)
        assert 0.0 <= low <= high <= 1.0
        low, high = wilson_interval(50, 50)
        assert 0.0 <= low <= high <= 1.0

    def test_matches_scipy_binomtest_ci(self):
        result = scipy_stats.binomtest(30, 100)
        expected = result.proportion_ci(confidence_level=0.95, method="wilson")
        low, high = wilson_interval(30, 100)
        assert low == pytest.approx(expected.low, abs=1e-4)
        assert high == pytest.approx(expected.high, abs=1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 100, confidence=0.42)
