"""Tests for the §7 operational-cost model."""

from __future__ import annotations

import pytest

from repro.cluster.costmodel import (
    MachinePrices,
    cost_comparison,
    neural_ranker_cost,
    serenade_cost,
)


class TestSerenadeCost:
    def test_paper_deployment_is_under_30_eur(self):
        """§7: two pods x three cores + a 40-minute 75-machine build must
        land under 30 euros per day at list prices."""
        cost = serenade_cost()
        assert cost.total_eur_per_day < 30.0
        assert cost.serving_eur_per_day > 0
        assert cost.training_eur_per_day > 0

    def test_components_sum(self):
        cost = serenade_cost()
        assert cost.total_eur_per_day == pytest.approx(
            cost.serving_eur_per_day + cost.training_eur_per_day
        )

    def test_scales_with_pods(self):
        base = serenade_cost(serving_pods=2)
        double = serenade_cost(serving_pods=4)
        assert double.serving_eur_per_day == pytest.approx(
            2 * base.serving_eur_per_day
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            serenade_cost(MachinePrices(serving_core_hour=0))
        with pytest.raises(ValueError):
            serenade_cost(serving_pods=0)


class TestComparison:
    def test_neural_costs_an_order_of_magnitude_more(self):
        serenade = serenade_cost()
        neural = neural_ranker_cost()
        assert neural.total_eur_per_day > 2 * serenade.total_eur_per_day

    def test_report_renders(self):
        report = cost_comparison()
        assert "serenade" in report and "neural" in report
        assert "ratio" in report

    def test_prices_are_parameters(self):
        cheap_gpu = MachinePrices(gpu_machine_hour=0.10)
        neural = neural_ranker_cost(cheap_gpu)
        assert neural.training_eur_per_day < neural_ranker_cost().training_eur_per_day
