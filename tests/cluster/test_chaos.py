"""Tests for fault injection — the §4.2 fault-tolerance trade-off."""

from __future__ import annotations

import pytest

from repro.cluster.chaos import ChaosInjector, PodKill
from repro.cluster.loadgen import TimedRequest, TrafficGenerator, constant_rate
from repro.core.index import SessionIndex
from repro.serving.app import ServingCluster
from repro.serving.server import RecommendationRequest

pytestmark = pytest.mark.chaos


def make_cluster(log, num_pods=3):
    index = SessionIndex.from_clicks(log, max_sessions_per_item=100)
    return ServingCluster.with_index(index, num_pods=num_pods, m=100, k=50)


class TestPodKill:
    def test_restart_must_follow_kill(self):
        with pytest.raises(ValueError):
            PodKill(at_time=5.0, pod_id="pod-0", restart_at=4.0).validate()

    def test_unknown_pod_rejected(self, small_log):
        cluster = make_cluster(small_log)
        injector = ChaosInjector(cluster, [PodKill(0.0, "pod-99")])
        arrivals = [TimedRequest(1.0, RecommendationRequest("u", 1))]
        with pytest.raises(ValueError, match="unknown pod"):
            injector.run(arrivals)


class TestKillWithoutRestart:
    def test_cluster_stays_available(self, small_log):
        cluster = make_cluster(small_log, num_pods=3)
        generator = TrafficGenerator(small_log, seed=1)
        injector = ChaosInjector(cluster, [PodKill(at_time=5.0, pod_id="pod-1")])
        report = injector.run(generator.generate(constant_rate(60), duration=15))
        assert report.availability == 1.0
        assert report.total_requests > 200
        assert [e.pod_id for e in report.events] == ["pod-1"]
        assert "pod-1" not in cluster.router.pods

    def test_lost_sessions_counted(self, small_log):
        cluster = make_cluster(small_log, num_pods=2)
        # Seed state onto both pods before the kill.
        for i in range(40):
            cluster.handle(RecommendationRequest(f"seed-{i}", 1))
        victim_sessions = len(cluster.pods["pod-0"].sessions)
        generator = TrafficGenerator(small_log, seed=2)
        injector = ChaosInjector(cluster, [PodKill(at_time=0.0, pod_id="pod-0")])
        report = injector.run(generator.generate(constant_rate(20), duration=2))
        assert report.events[0].sessions_lost == victim_sessions

    def test_degraded_sessions_recover_with_new_clicks(self, small_log):
        """The paper's argument: lost sessions quickly rebuild context."""
        cluster = make_cluster(small_log, num_pods=2)
        generator = TrafficGenerator(small_log, seed=3)
        injector = ChaosInjector(cluster, [PodKill(at_time=6.0, pod_id="pod-0")])
        report = injector.run(generator.generate(constant_rate(80), duration=20))
        # Some requests see shorter-than-true history (state was lost)...
        assert report.degraded_requests > 0
        # ...but a decent share already re-accumulated >= 2 items.
        assert report.recovered_requests > 0


class TestKillWithRestart:
    def test_pod_comes_back_empty(self, small_log):
        cluster = make_cluster(small_log, num_pods=2)
        for i in range(20):
            cluster.handle(RecommendationRequest(f"warm-{i}", 1))
        generator = TrafficGenerator(small_log, seed=4)
        injector = ChaosInjector(
            cluster, [PodKill(at_time=3.0, pod_id="pod-1", restart_at=8.0)]
        )
        injector.run(generator.generate(constant_rate(50), duration=15))
        assert "pod-1" in cluster.router.pods
        # Only sessions created after the restart live on the new pod-1.
        assert len(cluster.pods["pod-1"].sessions) >= 0

    def test_routing_restored_after_restart(self, small_log):
        cluster = make_cluster(small_log, num_pods=3)
        before = {f"k{i}": cluster.router.route(f"k{i}") for i in range(50)}
        generator = TrafficGenerator(small_log, seed=5)
        injector = ChaosInjector(
            cluster, [PodKill(at_time=2.0, pod_id="pod-2", restart_at=4.0)]
        )
        injector.run(generator.generate(constant_rate(40), duration=10))
        after = {key: cluster.router.route(key) for key in before}
        # Rendezvous hashing: with the pod back, the mapping is restored.
        assert after == before

    def test_moved_sessions_routed_to_survivors(self, small_log):
        cluster = make_cluster(small_log, num_pods=2)
        generator = TrafficGenerator(small_log, seed=6)
        injector = ChaosInjector(cluster, [PodKill(at_time=5.0, pod_id="pod-0")])
        report = injector.run(generator.generate(constant_rate(80), duration=15))
        assert all(pod == "pod-1" for pod in report.session_moves.values())
