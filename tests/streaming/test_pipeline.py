"""The streaming indexer: sealing, convergence, commits, backpressure."""

from __future__ import annotations

import random

import pytest

from repro.core.index import SessionIndex
from repro.core.types import Click
from repro.index.maintenance import IncrementalIndexer
from repro.serving.resilience import AdmissionController
from repro.streaming import (
    BackpressurePolicy,
    ClickProducer,
    ConsumerGroup,
    DeliveryFaultPlan,
    DeliveryFaults,
    PartitionedLog,
    StreamingIndexer,
    StreamingPolicy,
)
from tests.streaming.conftest import (
    assert_index_equal,
    publish_order,
    safe_session_gap,
)


def make_pipeline(log, *, gap=100.0, lateness=0.0, poll=16, **kwargs):
    policy = StreamingPolicy(
        session_gap_seconds=gap,
        allowed_lateness_seconds=lateness,
        poll_max_records=poll,
        backpressure=kwargs.pop("backpressure", BackpressurePolicy()),
    )
    indexer = IncrementalIndexer(max_sessions_per_item=100)
    return StreamingIndexer(log, indexer, policy=policy, **kwargs)


class TestPolicy:
    def test_rejects_inconsistent_knobs(self):
        with pytest.raises(ValueError, match="session_gap_seconds"):
            StreamingPolicy(session_gap_seconds=0.0)
        with pytest.raises(ValueError, match="allowed_lateness_seconds"):
            StreamingPolicy(allowed_lateness_seconds=-1.0)
        with pytest.raises(ValueError, match="poll_max_records"):
            StreamingPolicy(poll_max_records=0)
        with pytest.raises(ValueError, match="staleness_bound_events"):
            StreamingPolicy(staleness_bound_events=0)

    def test_lateness_beyond_the_gap_is_rejected(self):
        """lateness > gap would let an on-time click be older than the
        newest sealed session — the indexer would have to drop it."""
        with pytest.raises(ValueError, match="must not exceed"):
            StreamingPolicy(
                session_gap_seconds=60.0, allowed_lateness_seconds=61.0
            )

    def test_backpressure_capacity_curve(self):
        policy = BackpressurePolicy(
            target_lag_events=100, max_lag_events=300, min_capacity=4
        )
        assert policy.capacity_for(0, 64) == 64
        assert policy.capacity_for(100, 64) == 64
        assert policy.capacity_for(200, 64) == 34  # halfway down the ramp
        assert policy.capacity_for(300, 64) == 4
        assert policy.capacity_for(10_000, 64) == 4
        with pytest.raises(ValueError, match="max_lag_events"):
            BackpressurePolicy(target_lag_events=10, max_lag_events=10)


class TestSealing:
    def test_sessions_seal_only_after_the_gap(self):
        log = PartitionedLog(num_partitions=1)
        producer = ClickProducer(log, "p")
        pipeline = make_pipeline(log, gap=100.0)
        producer.publish_all([Click(0, 1, 1000), Click(0, 2, 1010)])
        pipeline.run_until_caught_up()
        # Watermark is 1010; session 0's last event + gap is not passed.
        assert pipeline.sessions_applied == 0
        assert pipeline.health()["pending_sessions"] == 1

        producer.publish(Click(1, 5, 1200))  # pushes the watermark past
        pipeline.run_until_caught_up()
        assert pipeline.sessions_applied == 1
        assert pipeline.indexer.index.session_items[0] == (1, 2)

    def test_flush_seals_everything(self):
        log = PartitionedLog(num_partitions=1)
        ClickProducer(log, "p").publish_all([Click(0, 1, 10), Click(1, 2, 20)])
        pipeline = make_pipeline(log, gap=1000.0)
        pipeline.run_until_caught_up()
        assert pipeline.sessions_applied == 0
        assert pipeline.flush() == 2
        assert pipeline.lag_events() == 0

    def test_duplicate_delivery_is_idempotent(self):
        """Every polled record delivered twice: the offset-keyed buffers
        absorb it and the index matches the clean batch build."""
        log = PartitionedLog(num_partitions=2)
        clicks = [Click(s, 1 + s % 3, 100 + 10 * s) for s in range(12)]
        ClickProducer(log, "p").publish_all(clicks)
        duplicate_all = DeliveryFaults(
            DeliveryFaultPlan(duplicate_rate=1.0), random.Random(0)
        )
        pipeline = make_pipeline(log, gap=50.0, poll_transform=duplicate_all)
        pipeline.run_until_caught_up()
        pipeline.flush()
        assert duplicate_all.duplicated > 0
        assert_index_equal(
            pipeline.indexer.index,
            SessionIndex.from_clicks(clicks, max_sessions_per_item=100),
        )
        # Duplicates of already *applied* sessions are counted, not lost.
        assert pipeline.sessions_duplicate == 0  # absorbed pre-seal here


class TestConvergence:
    def test_streamed_index_equals_batch_rebuild(self, workload_clicks):
        """The convergence half of the bounded-staleness contract, under
        duplicated + reordered delivery."""
        lateness = 20.0
        gap = safe_session_gap(workload_clicks, lateness)
        log = PartitionedLog(num_partitions=3)
        producer = ClickProducer(log, "p")
        faults = DeliveryFaults(
            DeliveryFaultPlan(duplicate_rate=0.3, shuffle_rate=0.5),
            random.Random(5),
        )
        pipeline = make_pipeline(
            log, gap=gap, lateness=lateness, poll=8, poll_transform=faults
        )
        ordered = publish_order(workload_clicks)
        for start in range(0, len(ordered), 16):
            producer.publish_all(ordered[start : start + 16])
            pipeline.run_until_caught_up()
        pipeline.flush()

        assert faults.duplicated > 0 and faults.shuffled_batches > 0
        assert pipeline.too_late_events == 0
        assert pipeline.sessions_stale == 0
        assert_index_equal(
            pipeline.indexer.index,
            SessionIndex.from_clicks(workload_clicks, max_sessions_per_item=100),
        )

    def test_every_acked_click_is_accounted_for(self, workload_clicks):
        log = PartitionedLog(num_partitions=2)
        ClickProducer(log, "p").publish_all(publish_order(workload_clicks))
        pipeline = make_pipeline(log, gap=safe_session_gap(workload_clicks, 0.0))
        pipeline.run_until_caught_up()
        pipeline.flush()
        assert pipeline.events_consumed == len(workload_clicks)
        # The applied fingerprints keep every click of every session (the
        # index itself collapses repeats), so the ledger must balance:
        # applied + replayed + too-late == acknowledged.
        applied_clicks = sum(
            len(items)
            for _, _, items in pipeline.indexer.state_dict()["applied"]
        )
        accounted = (
            applied_clicks
            + pipeline.replayed_records
            + pipeline.too_late_events
        )
        assert accounted == len(workload_clicks)


class TestCommits:
    def test_commit_low_watermark_holds_back_unsealed_clicks(self):
        log = PartitionedLog(num_partitions=1)
        producer = ClickProducer(log, "p")
        pipeline = make_pipeline(log, gap=100.0)
        producer.publish_all(
            [Click(0, 1, 1000), Click(1, 2, 1300), Click(1, 3, 1310)]
        )
        pipeline.run_until_caught_up()
        # Session 0 sealed (offset 0 applied); session 1 is still open
        # from offset 1 — the commit must stop there.
        assert pipeline.sessions_applied == 1
        assert pipeline.group.offsets.get(0) == 1

    def test_commit_each_step_false_defers_to_explicit_commit(self):
        log = PartitionedLog(num_partitions=1)
        ClickProducer(log, "p").publish_all([Click(0, 1, 10), Click(1, 2, 500)])
        pipeline = make_pipeline(log, gap=100.0, commit_each_step=False)
        pipeline.run_until_caught_up()
        pipeline.flush()
        assert pipeline.group.offsets.as_dict() == {}
        pipeline.commit()
        assert pipeline.group.offsets.get(0) == 2


class TestObservability:
    def test_staleness_and_watermark_series(self):
        log = PartitionedLog(num_partitions=1)
        producer = ClickProducer(log, "p")
        pipeline = make_pipeline(log, gap=100.0)
        assert pipeline.staleness_seconds() == 0.0
        producer.publish_all([Click(0, 1, 1000), Click(1, 2, 1200)])
        pipeline.run_until_caught_up()
        # Session 0 sealed at 1000; the log head is at 1200.
        assert pipeline.staleness_seconds() == 200.0
        assert pipeline.watermark_seconds() == 1200.0
        assert pipeline.within_staleness_bound()

    def test_health_snapshot_shape(self):
        log = PartitionedLog(num_partitions=1)
        pipeline = make_pipeline(log)
        health = pipeline.health()
        assert health["crashed"] is False
        assert health["lag_events"] == 0
        assert health["within_staleness_bound"] is True
        assert health["group"]["members"] == ["indexer-0"]

    def test_shared_group_rejects_duplicate_member(self):
        log = PartitionedLog(num_partitions=2)
        group = ConsumerGroup(log, "indexer")
        make_pipeline(log, group=group, member_id="a")
        with pytest.raises(ValueError, match="already joined"):
            make_pipeline(log, group=group, member_id="a")


class TestBackpressure:
    def test_lag_resizes_admission_and_recovers(self):
        log = PartitionedLog(num_partitions=1)
        producer = ClickProducer(log, "p")
        admission = AdmissionController(capacity=64, clock=lambda: 0.0)
        pipeline = make_pipeline(
            log,
            gap=10.0,
            poll=4,
            admission=admission,
            backpressure=BackpressurePolicy(
                target_lag_events=8, max_lag_events=32, min_capacity=2
            ),
        )
        producer.publish_all([Click(s, 1, 100 + s) for s in range(40)])
        pipeline.step()  # polls 4 of 40: lag is far over the max
        assert admission.capacity == 2
        pipeline.run_until_caught_up()
        pipeline.flush()
        # Lag drained: full serving capacity is restored.
        assert admission.capacity == 64
