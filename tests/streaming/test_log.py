"""The partitioned log: offsets, producer dedup, durable replay."""

from __future__ import annotations

import pytest

from repro.core.types import Click
from repro.streaming import PartitionedLog


class TestPartitioning:
    def test_session_routing_is_stable_and_in_range(self):
        log = PartitionedLog(num_partitions=3)
        for session_id in range(50):
            partition = log.partition_for(session_id)
            assert 0 <= partition < 3
            assert partition == log.partition_for(session_id)

    def test_rejects_bad_partition_count(self):
        with pytest.raises(ValueError, match="num_partitions"):
            PartitionedLog(num_partitions=0)

    def test_read_and_append_validate_partition(self):
        log = PartitionedLog(num_partitions=2)
        with pytest.raises(ValueError, match="out of range"):
            log.read(2, 0)
        with pytest.raises(ValueError, match="out of range"):
            log.append(-1, Click(0, 1, 10), "p", 0)


class TestAppendRead:
    def test_offsets_are_dense_per_partition(self):
        log = PartitionedLog(num_partitions=2)
        for sequence, session in enumerate((0, 2, 4)):
            result = log.append(0, Click(session, 1, 10 + sequence), "p", sequence)
            assert result.offset == sequence
            assert not result.deduplicated
        assert log.end_offset(0) == 3
        assert log.end_offset(1) == 0
        assert log.end_offsets() == {0: 3, 1: 0}
        assert log.total_records() == 3

    def test_read_returns_the_requested_window(self):
        log = PartitionedLog(num_partitions=1)
        for sequence in range(10):
            log.append(0, Click(sequence, 1, sequence), "p", sequence)
        window = log.read(0, 3, max_records=4)
        assert [r.offset for r in window] == [3, 4, 5, 6]
        assert log.read(0, 10) == []
        assert log.read(0, 0, max_records=0) == []
        with pytest.raises(ValueError, match="offset"):
            log.read(0, -1)

    def test_max_event_time_tracks_the_high_water(self):
        log = PartitionedLog(num_partitions=1)
        assert log.max_event_time() is None
        log.append(0, Click(0, 1, 500), "p", 0)
        log.append(0, Click(1, 1, 300), "p", 1)  # older, does not regress
        assert log.max_event_time() == 500


class TestProducerDedup:
    def test_retried_sequence_is_reacked_not_reappended(self):
        log = PartitionedLog(num_partitions=1)
        first = log.append(0, Click(0, 1, 10), "p", 0)
        retry = log.append(0, Click(0, 1, 10), "p", 0)
        assert retry.deduplicated
        assert retry.offset == first.offset
        assert log.total_records() == 1

    def test_dedup_is_per_producer_and_partition(self):
        log = PartitionedLog(num_partitions=2)
        log.append(0, Click(0, 1, 10), "alice", 0)
        # Same sequence, different producer: a distinct record.
        assert not log.append(0, Click(2, 1, 11), "bob", 0).deduplicated
        # Same producer and sequence, different partition: also distinct.
        assert not log.append(1, Click(1, 1, 12), "alice", 0).deduplicated
        assert log.total_records() == 3

    def test_stale_sequence_below_high_water_is_deduplicated(self):
        log = PartitionedLog(num_partitions=1)
        log.append(0, Click(0, 1, 10), "p", 0)
        log.append(0, Click(0, 2, 11), "p", 1)
        # A very late redelivery of sequence 0: recognised as stale and
        # never re-appended. (The broker only remembers the high-water
        # pair, so the re-ack carries the latest offset — what matters
        # is that the log contents did not grow.)
        result = log.append(0, Click(0, 1, 10), "p", 0)
        assert result.deduplicated
        assert log.total_records() == 2

    def test_negative_sequence_rejected(self):
        log = PartitionedLog(num_partitions=1)
        with pytest.raises(ValueError, match="sequence"):
            log.append(0, Click(0, 1, 10), "p", -1)


class TestDurability:
    def test_replay_restores_records_dedup_and_event_time(self, tmp_path):
        directory = tmp_path / "events"
        log = PartitionedLog(num_partitions=2, directory=directory)
        log.append(0, Click(0, 1, 100), "p", 0)
        log.append(1, Click(1, 2, 250), "p", 0)
        log.append(0, Click(2, 3, 180), "p", 1)
        log.close()

        reopened = PartitionedLog.open(directory)
        assert reopened.num_partitions == 2
        assert reopened.end_offsets() == {0: 2, 1: 1}
        assert reopened.max_event_time() == 250
        # Dedup state survived: the old sequences are still burned.
        assert reopened.append(0, Click(0, 1, 100), "p", 1).deduplicated
        # And appending continues at the next dense offset.
        assert reopened.append(0, Click(4, 5, 300), "p", 2).offset == 2
        reopened.close()

    def test_open_requires_an_existing_log(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            PartitionedLog.open(tmp_path / "nowhere")

    def test_partition_count_is_fixed_at_creation(self, tmp_path):
        directory = tmp_path / "events"
        PartitionedLog(num_partitions=2, directory=directory).close()
        with pytest.raises(ValueError, match="partition count is fixed"):
            PartitionedLog(num_partitions=4, directory=directory)
