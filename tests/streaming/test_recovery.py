"""The recovery matrix: crashes, handovers, storms — zero acked loss.

Every scenario here runs against the same acceptance bar: after the
consumer recovers and the stream is drained + flushed, the streamed
index equals the batch rebuild of every acknowledged click, exactly.
All scheduling is virtual or event-driven (SRN001), so each scenario
replays bit-identically under its seed.
"""

from __future__ import annotations

import random

import pytest

from repro.core.index import SessionIndex
from repro.core.types import Click
from repro.index.maintenance import IncrementalIndexer
from repro.streaming import (
    ClickProducer,
    ConsumerGroup,
    DeliveryFaultPlan,
    DeliveryFaults,
    FlakyTransport,
    PartitionedLog,
    PublishFailed,
    StreamingIndexer,
    StreamingPolicy,
    TransportFaultPlan,
)
from repro.testing.clock import VirtualClock
from tests.streaming.conftest import (
    assert_index_equal,
    publish_order,
    safe_session_gap,
)

pytestmark = pytest.mark.chaos


def make_policy(clicks, lateness=20.0, poll=8):
    return StreamingPolicy(
        session_gap_seconds=safe_session_gap(clicks, lateness),
        allowed_lateness_seconds=lateness,
        poll_max_records=poll,
    )


def oracle(clicks, m=100):
    return SessionIndex.from_clicks(clicks, max_sessions_per_item=m)


class TestCrashRecovery:
    def test_crash_before_any_commit_replays_everything(self, workload_clicks):
        """Crash mid-batch with nothing committed: the restart replays
        the entire log and the idempotent indexer absorbs it."""
        log = PartitionedLog(num_partitions=3)
        ClickProducer(log, "p").publish_all(publish_order(workload_clicks))
        pipeline = StreamingIndexer(
            log,
            IncrementalIndexer(max_sessions_per_item=100),
            policy=make_policy(workload_clicks),
            commit_each_step=False,  # nothing commits before the crash
        )
        for _ in range(4):
            pipeline.step()
        consumed_before = pipeline.events_consumed
        assert consumed_before > 0

        pipeline.crash()
        with pytest.raises(RuntimeError, match="restart"):
            pipeline.step()
        pipeline.restart()
        # Positions rewound to the (empty) committed offsets.
        assert pipeline.group.lag() == log.total_records()

        pipeline.run_until_caught_up()
        pipeline.flush()
        assert pipeline.crash_count == 1
        assert_index_equal(pipeline.indexer.index, oracle(workload_clicks))

    def test_crash_after_commit_replays_only_the_suffix(self, workload_clicks):
        """Crash mid-batch with the low watermark committed: the restart
        replays the unsealed suffix only — still zero acked loss."""
        log = PartitionedLog(num_partitions=3)
        ClickProducer(log, "p").publish_all(publish_order(workload_clicks))
        pipeline = StreamingIndexer(
            log,
            IncrementalIndexer(max_sessions_per_item=100),
            policy=make_policy(workload_clicks),
        )
        while pipeline.sessions_applied == 0:
            pipeline.step()

        pipeline.crash()
        pipeline.restart()
        # The committed low watermark spared the applied prefix.
        assert pipeline.group.lag() < log.total_records()

        pipeline.run_until_caught_up()
        pipeline.flush()
        assert_index_equal(pipeline.indexer.index, oracle(workload_clicks))

    def test_repeated_crashes_still_converge(self, workload_clicks):
        log = PartitionedLog(num_partitions=2)
        producer = ClickProducer(log, "p")
        pipeline = StreamingIndexer(
            log,
            IncrementalIndexer(max_sessions_per_item=100),
            policy=make_policy(workload_clicks),
        )
        ordered = publish_order(workload_clicks)
        for round_number, start in enumerate(range(0, len(ordered), 25)):
            producer.publish_all(ordered[start : start + 25])
            pipeline.step()
            if round_number % 2 == 0:  # crash every other round
                pipeline.crash()
                pipeline.restart()
        pipeline.run_until_caught_up()
        pipeline.flush()
        assert pipeline.crash_count >= 2
        assert_index_equal(pipeline.indexer.index, oracle(workload_clicks))


class TestRebalanceHandover:
    def test_partition_handover_mid_stream(self, workload_clicks):
        """Consumer A dies mid-partition; consumer B joins the same group
        and the same index, replays the uncommitted suffix and finishes
        the job — the rebalance loses nothing."""
        log = PartitionedLog(num_partitions=3)
        ClickProducer(log, "p").publish_all(publish_order(workload_clicks))
        group = ConsumerGroup(log, "indexer")
        indexer = IncrementalIndexer(max_sessions_per_item=100)
        policy = make_policy(workload_clicks)

        first = StreamingIndexer(
            log, indexer, group=group, member_id="indexer-0", policy=policy
        )
        while first.sessions_applied == 0:
            first.step()
        first.crash()  # leaves the group; partitions are orphaned
        committed = sum(group.offsets.as_dict().values())

        second = StreamingIndexer(
            log, indexer, group=group, member_id="indexer-1", policy=policy
        )
        assert group.members() == ["indexer-1"]
        second.run_until_caught_up()
        second.flush()
        # The new owner consumed exactly the records past the committed
        # offsets — the uncommitted suffix was redelivered, the committed
        # prefix was not, and nothing acknowledged went missing.
        assert second.events_consumed == log.total_records() - committed
        assert_index_equal(indexer.index, oracle(workload_clicks))


class TestRetryStorm:
    def test_storm_plus_faulty_delivery_converges(self, workload_clicks):
        """The full gauntlet: rejects, lost acks, duplicated + shuffled
        delivery, and a crash in the middle. Exactly-once contents."""
        lateness = 20.0
        gap = safe_session_gap(workload_clicks, lateness)
        for seed in (11, 23, 37):
            log = PartitionedLog(num_partitions=3)
            transport = FlakyTransport(
                log,
                TransportFaultPlan(reject_rate=0.2, ack_loss_rate=0.2),
                random.Random(seed),
            )
            producer = ClickProducer(
                log,
                "p",
                transport=transport,
                sleep=lambda _: None,
                rng=random.Random(seed + 1),
            )
            faults = DeliveryFaults(
                DeliveryFaultPlan(duplicate_rate=0.3, shuffle_rate=0.5),
                random.Random(seed + 2),
            )
            pipeline = StreamingIndexer(
                log,
                IncrementalIndexer(max_sessions_per_item=100),
                policy=StreamingPolicy(
                    session_gap_seconds=gap,
                    allowed_lateness_seconds=lateness,
                    poll_max_records=8,
                ),
                poll_transform=faults,
            )
            ordered = publish_order(workload_clicks)
            published = 0
            for start in range(0, len(ordered), 16):
                for click in ordered[start : start + 16]:
                    while True:
                        try:
                            producer.publish(click)
                            break
                        except PublishFailed:
                            continue
                    published += 1
                pipeline.run_until_caught_up()
                if start == 32:
                    pipeline.crash()
                    pipeline.restart()
            pipeline.run_until_caught_up()
            pipeline.flush()

            assert published == len(workload_clicks)
            assert producer.retry_count > 0
            # Broker dedup held: exactly one record per acknowledged click.
            assert log.total_records() == len(workload_clicks)
            assert_index_equal(pipeline.indexer.index, oracle(workload_clicks))


class TestVirtualTimeDeterminism:
    def scenario(self, clicks, seed):
        """One fully virtual run: arrivals, consumer ticks, a crash and a
        restart all scheduled on the same VirtualClock."""
        clock = VirtualClock()
        log = PartitionedLog(num_partitions=2)
        producer = ClickProducer(
            log, "p", sleep=clock.sleep, rng=random.Random(seed)
        )
        pipeline = StreamingIndexer(
            log,
            IncrementalIndexer(max_sessions_per_item=100),
            policy=make_policy(clicks),
        )
        ordered = publish_order(clicks)
        # Publish in bursts of 5 clicks every 2 virtual seconds.
        for burst, start in enumerate(range(0, len(ordered), 5)):
            chunk = ordered[start : start + 5]
            clock.schedule(
                2.0 * (burst + 1), lambda c=chunk: producer.publish_all(c)
            )
        horizon = 2.0 * (len(ordered) // 5 + 3)
        pipeline.schedule_on(clock, interval=1.0, until=horizon)
        clock.schedule(horizon / 3, pipeline.crash)
        clock.schedule(horizon / 2, pipeline.restart)

        trajectory = []
        sample_at = 1.5
        while sample_at <= horizon:
            clock.advance_to(sample_at)
            trajectory.append((sample_at, pipeline.lag_events()))
            sample_at += 1.5
        pipeline.run_until_caught_up()
        pipeline.flush()
        return trajectory, pipeline

    def test_same_seed_same_lag_trajectory(self, workload_clicks):
        first_trajectory, first = self.scenario(workload_clicks, seed=3)
        second_trajectory, second = self.scenario(workload_clicks, seed=3)
        assert first_trajectory == second_trajectory
        assert first.health() == second.health()
        assert first.crash_count == second.crash_count == 1
        assert_index_equal(first.indexer.index, second.indexer.index)
        assert_index_equal(first.indexer.index, oracle(workload_clicks))
