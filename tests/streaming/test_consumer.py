"""Consumer groups: offsets, at-least-once redelivery, rebalancing."""

from __future__ import annotations

import pytest

from repro.core.types import Click
from repro.streaming import CommittedOffsets, ConsumerGroup, PartitionedLog


def filled_log(num_partitions=4, per_partition=10):
    log = PartitionedLog(num_partitions=num_partitions)
    for partition in range(num_partitions):
        for sequence in range(per_partition):
            log.append(
                partition,
                Click(partition + num_partitions * sequence, 1, sequence),
                "p",
                sequence,
            )
    return log


class TestCommittedOffsets:
    def test_defaults_to_zero_and_moves_monotonically(self):
        offsets = CommittedOffsets()
        assert offsets.get(0) == 0
        offsets.commit(0, 5)
        offsets.commit(0, 3)  # never backwards
        assert offsets.get(0) == 5
        with pytest.raises(ValueError, match="offset"):
            offsets.commit(0, -1)

    def test_file_backed_offsets_survive_restart(self, tmp_path):
        path = tmp_path / "offsets.json"
        offsets = CommittedOffsets(path)
        offsets.commit(0, 7)
        offsets.commit(2, 3)
        reloaded = CommittedOffsets(path)
        assert reloaded.as_dict() == {0: 7, 2: 3}


class TestMembership:
    def test_join_assigns_every_partition_deterministically(self):
        group = ConsumerGroup(filled_log(4))
        assert group.join("a") == [0, 1, 2, 3]
        # A second member splits the range; sorted member ids decide.
        group.join("b")
        assert group.assignment("a") == [0, 2]
        assert group.assignment("b") == [1, 3]

    def test_double_join_and_unknown_member_rejected(self):
        group = ConsumerGroup(filled_log(2))
        group.join("a")
        with pytest.raises(ValueError, match="already joined"):
            group.join("a")
        with pytest.raises(ValueError, match="not in group"):
            group.poll("ghost")
        with pytest.raises(ValueError, match="not in group"):
            group.leave("ghost")

    def test_generation_bumps_on_every_rebalance(self):
        group = ConsumerGroup(filled_log(2))
        group.join("a")
        group.join("b")
        group.leave("b")
        assert group.generation == 3
        assert group.rebalance_count == 3


class TestPolling:
    def test_poll_round_robins_partitions(self):
        group = ConsumerGroup(filled_log(2, per_partition=6))
        group.join("a")
        records = group.poll("a", max_records=6)
        assert len(records) == 6
        # The budget is split across both partitions, not drained from one.
        assert {r.partition for r in records} == {0, 1}

    def test_position_advances_but_committed_does_not(self):
        group = ConsumerGroup(filled_log(1, per_partition=8))
        group.join("a")
        group.poll("a", max_records=5)
        assert group.position(0) == 5
        assert group.offsets.get(0) == 0
        assert group.lag() == 3
        assert group.committed_lag() == 8

    def test_commit_requires_ownership(self):
        group = ConsumerGroup(filled_log(2))
        group.join("a")
        group.join("b")  # partition 1 now belongs to b
        with pytest.raises(ValueError, match="does not own"):
            group.commit_to("a", 1, 4)

    def test_commit_positions_commits_every_owned_partition(self):
        group = ConsumerGroup(filled_log(2, per_partition=4))
        group.join("a")
        group.poll("a", max_records=100)
        group.commit_positions("a")
        assert group.offsets.as_dict() == {0: 4, 1: 4}
        assert group.committed_lag() == 0


class TestRebalance:
    def test_new_owner_resumes_from_committed_offset(self):
        """Rebalance mid-partition: the uncommitted suffix is redelivered
        to the new owner — at-least-once, with (partition, offset) as the
        dedup key downstream."""
        log = filled_log(2, per_partition=10)
        group = ConsumerGroup(log)

        seen: set[tuple[int, int]] = set()
        replayed = 0

        def consume(records):
            nonlocal replayed
            for record in records:
                key = (record.partition, record.offset)
                if key in seen:
                    replayed += 1
                seen.add(key)

        group.join("a")
        consume(group.poll("a", max_records=8))  # offsets 0-3 of each
        group.commit_to("a", 0, 2)
        group.commit_to("a", 1, 1)

        group.join("b")  # partition 1 moves to b mid-partition
        assert group.position(1) == group.offsets.get(1) == 1
        # Partition 0 kept its owner, so its position did not rewind.
        assert group.position(0) == 4

        while group.lag() > 0:
            for member in ("a", "b"):
                consume(group.poll(member, max_records=4))
        # Every acknowledged record was seen, none lost to the rebalance.
        assert len(seen) == log.total_records()
        # Partition 1's consumed-but-uncommitted suffix (offsets 1-3) was
        # redelivered to the new owner; the offset key catches all three.
        assert replayed == 3

    def test_leave_hands_partitions_to_survivors(self):
        group = ConsumerGroup(filled_log(3))
        group.join("a")
        group.join("b")
        group.leave("a")
        assert group.assignment("b") == [0, 1, 2]

    def test_info_snapshot(self):
        group = ConsumerGroup(filled_log(2, per_partition=3), "indexer")
        group.join("a")
        info = group.info()
        assert info["group_id"] == "indexer"
        assert info["members"] == ["a"]
        assert info["assignment"] == {"a": [0, 1]}
        assert info["lag"] == 6
