"""The idempotent producer: retries, backoff, burned sequences."""

from __future__ import annotations

import random

import pytest

from repro.core.types import Click
from repro.streaming import (
    AckLost,
    ClickProducer,
    PartitionedLog,
    PublishFailed,
    RetryPolicy,
    TransientPublishError,
)
from repro.streaming.faults import FlakyTransport, TransportFaultPlan


def make_producer(log, transport=None, retry=None):
    sleeps: list[float] = []
    producer = ClickProducer(
        log,
        "p0",
        transport=transport,
        retry=retry,
        sleep=sleeps.append,
        rng=random.Random(0),
    )
    return producer, sleeps


class TestHappyPath:
    def test_sequences_advance_per_partition(self):
        log = PartitionedLog(num_partitions=2)
        producer, _ = make_producer(log)
        receipts = producer.publish_all(
            [Click(0, 1, 10), Click(1, 2, 11), Click(2, 3, 12)]
        )
        # Sessions 0 and 2 share partition 0; each partition numbers its
        # own sequences independently.
        assert [(r.partition, r.sequence) for r in receipts] == [
            (0, 0),
            (1, 0),
            (0, 1),
        ]
        assert all(r.attempts == 1 for r in receipts)
        assert producer.info() == {
            "acked": 3,
            "retries": 0,
            "deduplicated_acks": 0,
        }


class TestRetries:
    def test_transient_rejects_are_retried_with_backoff(self):
        log = PartitionedLog(num_partitions=1)
        failures = iter([True, True, False])

        def transport(partition, click, producer_id, sequence):
            if next(failures):
                raise TransientPublishError("injected")
            return log.append(partition, click, producer_id, sequence)

        producer, sleeps = make_producer(log, transport=transport)
        receipt = producer.publish(Click(0, 1, 10))
        assert receipt.attempts == 3
        assert not receipt.deduplicated
        assert len(sleeps) == 2  # one backoff per failed attempt
        assert sleeps[0] < sleeps[1]  # exponential growth (with jitter)
        assert log.total_records() == 1

    def test_lost_ack_retry_is_deduplicated_by_the_broker(self):
        log = PartitionedLog(num_partitions=1)
        lose_next = iter([True, False])

        def transport(partition, click, producer_id, sequence):
            result = log.append(partition, click, producer_id, sequence)
            if next(lose_next):
                raise AckLost("injected")
            return result

        producer, _ = make_producer(log, transport=transport)
        receipt = producer.publish(Click(0, 1, 10))
        # The first attempt appended; the retry was re-acked, not re-added.
        assert receipt.deduplicated
        assert log.total_records() == 1
        assert producer.deduplicated_acks == 1

    def test_backoff_delay_is_capped(self):
        policy = RetryPolicy(
            max_attempts=10,
            base_backoff_seconds=0.1,
            multiplier=10.0,
            max_backoff_seconds=0.5,
            jitter=0.0,
        )
        rng = random.Random(0)
        assert policy.delay(1, rng) == pytest.approx(0.1)
        assert policy.delay(5, rng) == pytest.approx(0.5)

    def test_retry_policy_needs_at_least_one_attempt(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)


class TestExhaustion:
    def test_publish_failed_burns_the_sequence(self):
        """After exhausted retries the record *may* be in the log, so the
        sequence must never be reused for a different click."""
        log = PartitionedLog(num_partitions=1)
        down = {"on": True}

        def transport(partition, click, producer_id, sequence):
            result = log.append(partition, click, producer_id, sequence)
            if down["on"]:
                raise AckLost("injected")
            return result

        producer, _ = make_producer(
            log, transport=transport, retry=RetryPolicy(max_attempts=3)
        )
        with pytest.raises(PublishFailed) as excinfo:
            producer.publish(Click(0, 1, 10))
        assert excinfo.value.attempts == 3
        assert log.total_records() == 1  # it *did* land, ack was lost

        # The next (different) click must get a fresh sequence and a
        # fresh record — not be swallowed by broker dedup.
        down["on"] = False
        receipt = producer.publish(Click(0, 2, 11))
        assert receipt.sequence == 1
        assert not receipt.deduplicated
        assert log.total_records() == 2


class TestRetryStorm:
    def test_storm_never_duplicates_log_contents(self):
        """High reject + ack-loss rates: every click lands exactly once."""
        log = PartitionedLog(num_partitions=3)
        transport = FlakyTransport(
            log,
            TransportFaultPlan(reject_rate=0.25, ack_loss_rate=0.25),
            random.Random(99),
        )
        producer, _ = make_producer(log, transport=transport)
        clicks = [Click(s, s % 7, 100 + s) for s in range(120)]
        for click in clicks:
            while True:
                try:
                    producer.publish(click)
                    break
                except PublishFailed:
                    continue  # re-publish with a fresh sequence
        assert transport.rejects > 0 and transport.lost_acks > 0
        assert producer.retry_count > 0
        # Broker dedup held through the storm: one record per click.
        assert log.total_records() == len(clicks)
