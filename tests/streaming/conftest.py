"""Shared helpers for the streaming tests: workloads and convergence.

The central assertion of this package is *convergence*: after every
acknowledged click has been consumed and every session flushed, the
streamed index must equal the batch rebuild of the same clicks
component by component. ``assert_index_equal`` spells that out so a
failure names the diverging component instead of printing two reprs.
"""

from __future__ import annotations

from collections import defaultdict

import pytest

from repro.core.index import SessionIndex
from repro.core.types import Click
from repro.testing.generators import WorkloadConfig, WorkloadGenerator


def assert_index_equal(actual: SessionIndex, expected: SessionIndex) -> None:
    assert actual.session_timestamps == expected.session_timestamps
    assert actual.session_items == expected.session_items
    assert actual.item_to_sessions == expected.item_to_sessions
    assert actual.item_session_counts == expected.item_session_counts


def publish_order(clicks: list[Click]) -> list[Click]:
    """The order a well-behaved upstream emits clicks: by event time."""
    return sorted(clicks, key=lambda c: (c.timestamp, c.session_id, c.item_id))


def safe_session_gap(clicks: list[Click], lateness: float) -> float:
    """A gap no real session in ``clicks`` ever exceeds internally.

    Sealing with this gap can never cut a session in half, so exact
    convergence with the batch oracle is achievable (and asserted).
    """
    by_session: dict[int, list[int]] = defaultdict(list)
    for click in clicks:
        by_session[click.session_id].append(click.timestamp)
    widest = 0
    for stamps in by_session.values():
        stamps.sort()
        for earlier, later in zip(stamps, stamps[1:]):
            widest = max(widest, later - earlier)
    return float(widest) + lateness + 1.0


@pytest.fixture()
def workload_clicks() -> list[Click]:
    """~40 interleaved sessions with timestamp ties and popularity skew."""
    config = WorkloadConfig(
        seed=7,
        num_sessions=40,
        num_items=30,
        min_session_length=1,
        max_session_length=6,
        timestamp_granularity=10.0,
        time_span=4_000.0,
    )
    return WorkloadGenerator(config).clicks()
