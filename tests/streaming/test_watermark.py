"""Event-time watermarks and the allowed-lateness boundary."""

from __future__ import annotations

import pytest

from repro.streaming import WatermarkTracker


class TestWatermark:
    def test_starts_empty(self):
        tracker = WatermarkTracker(allowed_lateness=10.0)
        assert tracker.watermark is None
        assert tracker.max_event_time is None

    def test_watermark_trails_the_high_water_by_lateness(self):
        tracker = WatermarkTracker(allowed_lateness=10.0)
        tracker.observe(100.0)
        assert tracker.watermark == 90.0
        tracker.observe(250.0)
        assert tracker.watermark == 240.0

    def test_older_events_never_regress_the_watermark(self):
        tracker = WatermarkTracker(allowed_lateness=0.0)
        tracker.observe(100.0)
        tracker.observe(50.0)
        assert tracker.watermark == 100.0

    def test_rejects_negative_lateness(self):
        with pytest.raises(ValueError, match="allowed_lateness"):
            WatermarkTracker(allowed_lateness=-1.0)


class TestLateness:
    def test_event_inside_the_lateness_window_is_on_time(self):
        tracker = WatermarkTracker(allowed_lateness=10.0)
        assert tracker.observe(100.0)
        assert tracker.observe(91.0)  # within the window
        assert tracker.observe(90.0)  # exactly on the watermark: on time
        assert tracker.late_events == 0

    def test_event_behind_the_watermark_is_late_but_counted(self):
        tracker = WatermarkTracker(allowed_lateness=10.0)
        tracker.observe(100.0)
        assert not tracker.observe(89.0)
        assert tracker.late_events == 1
        assert tracker.events_observed == 2

    def test_an_event_cannot_make_itself_late(self):
        """Lateness is judged against the watermark *before* the event
        is folded in — the first event is always on time."""
        tracker = WatermarkTracker(allowed_lateness=0.0)
        assert tracker.observe(42.0)
        assert tracker.late_events == 0

    def test_info_is_json_friendly(self):
        tracker = WatermarkTracker(allowed_lateness=5.0)
        tracker.observe(100.0)
        tracker.observe(10.0)
        assert tracker.info() == {
            "watermark": 95.0,
            "max_event_time": 100.0,
            "allowed_lateness": 5.0,
            "events_observed": 2.0,
            "late_events": 1.0,
        }
