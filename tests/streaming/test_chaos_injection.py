"""ConsumerCrash through the ChaosInjector: lag trajectories, replayable.

The injector drives a serving cluster through seeded arrivals while the
attached streaming consumer polls alongside; a scheduled ConsumerCrash
freezes consumption and the restart drains the backlog. The whole
scenario is seeded, so two runs produce bit-identical lag trajectories
and ChaosReports — the determinism the simulation harness promises.
"""

from __future__ import annotations

import pytest

from repro.cluster.chaos import ChaosInjector, ChaosSchedule, ConsumerCrash, PodKill
from repro.cluster.loadgen import TrafficGenerator, constant_rate
from repro.core.index import SessionIndex
from repro.index.maintenance import IncrementalIndexer
from repro.serving.app import ServingCluster
from repro.streaming import (
    ClickProducer,
    PartitionedLog,
    StreamingIndexer,
    StreamingPolicy,
)
from tests.streaming.conftest import publish_order, safe_session_gap

pytestmark = pytest.mark.chaos


def make_scenario(click_log, *, events=1_200):
    """A cluster with an attached, pre-loaded streaming consumer."""
    index = SessionIndex.from_clicks(click_log, max_sessions_per_item=100)
    cluster = ServingCluster.with_index(index, num_pods=2, m=100, k=50)
    clicks = publish_order(click_log.clicks)[:events]
    log = PartitionedLog(num_partitions=2)
    ClickProducer(log, "p").publish_all(clicks)
    pipeline = StreamingIndexer(
        log,
        IncrementalIndexer(max_sessions_per_item=100),
        policy=StreamingPolicy(
            session_gap_seconds=safe_session_gap(clicks, 0.0),
            poll_max_records=4,  # drains slowly: the lag curve is visible
        ),
    )
    cluster.attach_streaming(pipeline)
    return cluster, pipeline


def run_chaos(click_log, *, seed=5, crash_at=3.0, restart_at=6.0):
    cluster, pipeline = make_scenario(click_log)
    schedule = ChaosSchedule(
        stream_faults=[ConsumerCrash(at_time=crash_at, restart_at=restart_at)]
    )
    generator = TrafficGenerator(click_log, seed=seed)
    injector = ChaosInjector(cluster, schedule)
    report = injector.run(generator.generate(constant_rate(40), duration=12))
    return report, pipeline


class TestConsumerCrashInjection:
    def test_crash_and_restart_are_applied(self, small_log):
        report, pipeline = run_chaos(small_log)
        assert report.consumer_crashes == 1
        assert report.consumer_restarts == 1
        assert pipeline.crash_count == 1
        assert not pipeline.crashed

    def test_lag_freezes_during_the_crash_window(self, small_log):
        report, _ = run_chaos(small_log, crash_at=3.0, restart_at=6.0)
        in_window = [
            lag for at, lag in report.lag_trajectory if 3.0 < at <= 6.0
        ]
        after = [lag for at, lag in report.lag_trajectory if at > 6.0]
        # No consumption while crashed: the lag plateaus...
        assert len(set(in_window)) == 1
        # ...and the restarted consumer drains it back down.
        assert min(after) < in_window[0]
        assert report.max_lag_events >= in_window[0]

    def test_final_streaming_snapshot_is_reported(self, small_log):
        report, pipeline = run_chaos(small_log)
        assert report.streaming == pipeline.health()
        assert report.streaming["crash_count"] == 1

    def test_crash_schedule_is_validated(self):
        with pytest.raises(ValueError, match="restart_at"):
            ChaosSchedule(
                stream_faults=[ConsumerCrash(at_time=5.0, restart_at=5.0)]
            )

    def test_schedule_len_counts_both_fault_kinds(self):
        schedule = ChaosSchedule(
            kills=[PodKill(1.0, "pod-0")],
            stream_faults=[ConsumerCrash(2.0)],
        )
        assert len(schedule) == 2

    def test_crash_without_restart_stays_down(self, small_log):
        report, pipeline = run_chaos(small_log, crash_at=2.0, restart_at=None)
        assert report.consumer_crashes == 1
        assert report.consumer_restarts == 0
        assert pipeline.crashed
        tail = [lag for at, lag in report.lag_trajectory if at > 2.0]
        assert len(set(tail)) == 1  # frozen until the end of the run


class TestSeededReplay:
    def test_same_seed_same_report(self, small_log):
        first, _ = run_chaos(small_log, seed=9)
        second, _ = run_chaos(small_log, seed=9)
        assert first.lag_trajectory == second.lag_trajectory
        assert first.streaming == second.streaming
        assert first.total_requests == second.total_requests
        assert first.consumer_crashes == second.consumer_crashes
        assert first.consumer_restarts == second.consumer_restarts

    def test_different_seed_different_arrivals(self, small_log):
        first, _ = run_chaos(small_log, seed=9)
        second, _ = run_chaos(small_log, seed=10)
        assert first.lag_trajectory != second.lag_trajectory
