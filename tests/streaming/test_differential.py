"""The bounded-staleness differential: streamed index vs batch oracle.

The DifferentialRunner's ``extra_implementations`` hook holds a
"streamed" implementation — VMIS-kNN over an index built by publishing
the click log through the faulty streaming path (retry storms,
duplicated + shuffled delivery, a consumer crash mid-batch) — to
bit-exactness against the batch-built reference. Along the way the
pipeline's bounded-staleness contract is asserted at every chunk
boundary: acked-but-unindexed events never exceed the configured bound
while the consumer keeps up, and acked clicks are never lost.
"""

from __future__ import annotations

import random

import pytest

from repro.core.types import Click
from repro.core.vmis import VMISKNN
from repro.index.maintenance import IncrementalIndexer
from repro.streaming import (
    ClickProducer,
    DeliveryFaultPlan,
    DeliveryFaults,
    FlakyTransport,
    PartitionedLog,
    PublishFailed,
    StreamingIndexer,
    StreamingPolicy,
    TransportFaultPlan,
)
from repro.testing.generators import WorkloadConfig, WorkloadGenerator
from repro.testing.oracle import DifferentialRunner, HyperParams
from tests.streaming.conftest import publish_order, safe_session_gap

pytestmark = pytest.mark.chaos

#: acked-but-unindexed events must stay at or below this while the
#: consumer is caught up (chunk size 16 + one poll in flight).
STALENESS_BOUND = 64


def stream_index_through_faults(
    clicks: list[Click], m: int, seed: int
) -> IncrementalIndexer:
    """Build an index by streaming ``clicks`` through the full gauntlet."""
    lateness = 20.0
    log = PartitionedLog(num_partitions=3)
    transport = FlakyTransport(
        log,
        TransportFaultPlan(reject_rate=0.2, ack_loss_rate=0.2),
        random.Random(seed),
    )
    producer = ClickProducer(
        log,
        "p",
        transport=transport,
        sleep=lambda _: None,
        rng=random.Random(seed + 1),
    )
    faults = DeliveryFaults(
        DeliveryFaultPlan(duplicate_rate=0.3, shuffle_rate=0.5),
        random.Random(seed + 2),
    )
    indexer = IncrementalIndexer(max_sessions_per_item=m)
    pipeline = StreamingIndexer(
        log,
        indexer,
        policy=StreamingPolicy(
            session_gap_seconds=safe_session_gap(clicks, lateness),
            allowed_lateness_seconds=lateness,
            poll_max_records=16,
            staleness_bound_events=STALENESS_BOUND,
        ),
        poll_transform=faults,
    )
    ordered = publish_order(clicks)
    for start in range(0, len(ordered), 16):
        for click in ordered[start : start + 16]:
            while True:
                try:
                    producer.publish(click)
                    break
                except PublishFailed:
                    continue
        pipeline.run_until_caught_up()
        # The bounded-staleness contract, checked at every boundary: a
        # caught-up consumer holds acked-but-unindexed events (open
        # sessions only) under the bound.
        assert pipeline.within_staleness_bound()
        if start == 48:  # crash mid-stream; committed offsets recover it
            pipeline.crash()
            pipeline.restart()
    pipeline.run_until_caught_up()
    pipeline.flush()

    # Zero acked loss: every acknowledged click is in the index ledger.
    assert log.total_records() == len(clicks)
    assert pipeline.lag_events() == 0
    assert pipeline.too_late_events == 0
    assert pipeline.sessions_stale == 0
    return indexer


class TestStreamedDifferential:
    def test_streamed_impl_is_bit_exact_against_the_oracle_family(self):
        """compare_many holds the streamed implementation (plus the whole
        core family) to bit-exactness against the VS-kNN reference."""

        def streamed(clicks: list[Click], p: HyperParams) -> VMISKNN:
            indexer = stream_index_through_faults(list(clicks), p.m, seed=17)
            return VMISKNN(
                indexer.index,
                m=p.m,
                k=p.k,
                decay=p.decay,
                match_weight=p.match_weight,
            )

        runner = DifferentialRunner(
            extra_implementations={"streamed": streamed}
        )
        generator = WorkloadGenerator(
            WorkloadConfig(
                seed=21,
                num_sessions=30,
                num_items=20,
                max_session_length=5,
                timestamp_granularity=10.0,
            )
        )
        clicks = generator.clicks()
        queries = generator.query_sessions(3)
        for params in (
            HyperParams(m=64, k=20),
            HyperParams(m=5, k=3, decay="quadratic"),
        ):
            divergences = runner.compare_many(clicks, queries, params)
            assert divergences == [], divergences[0].describe()

    def test_streamed_divergence_would_be_caught(self):
        """Negative control: a corrupted streamed index *does* diverge —
        the oracle has teeth."""

        def corrupted(clicks: list[Click], p: HyperParams) -> VMISKNN:
            indexer = stream_index_through_faults(list(clicks), p.m, seed=3)
            index = indexer.index
            # Losing the inverted index entirely: every query comes back
            # empty, which the oracle must flag on any non-empty reference.
            index.item_to_sessions = {}
            return VMISKNN(index, m=p.m, k=p.k)

        runner = DifferentialRunner(
            extra_implementations={"streamed-corrupt": corrupted}
        )
        generator = WorkloadGenerator(
            WorkloadConfig(seed=8, num_sessions=25, num_items=12)
        )
        divergences = runner.compare_many(
            generator.clicks(),
            generator.query_sessions(3),
            HyperParams(m=64, k=20),
        )
        assert any(d.impl_b == "streamed-corrupt" for d in divergences)
