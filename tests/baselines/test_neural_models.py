"""Behavioural tests for GRU4Rec, NARM and STAMP."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.neural import GRU4Rec, NARM, STAMP
from repro.baselines.neural.training import (
    Vocabulary,
    prediction_steps,
    training_sequences,
)
from repro.core.types import Click


@pytest.fixture(scope="module")
def pattern_clicks():
    """Strongly patterned data: item 2i is always followed by 2i+1."""
    clicks = []
    timestamp = 0
    rng = np.random.default_rng(3)
    for session in range(300):
        start = int(rng.integers(0, 10)) * 2
        for item in (start, start + 1):
            timestamp += 5
            clicks.append(Click(session, item, timestamp))
    return clicks


MODEL_CLASSES = [GRU4Rec, NARM, STAMP]


class TestVocabulary:
    def test_encode_drops_unknown(self, pattern_clicks):
        vocabulary = Vocabulary.from_clicks(pattern_clicks)
        encoded = vocabulary.encode([0, 99999, 1])
        assert len(encoded) == 2

    def test_training_sequences_min_length(self, pattern_clicks):
        vocabulary = Vocabulary.from_clicks(pattern_clicks)
        sequences = training_sequences(pattern_clicks, vocabulary)
        assert all(len(s) >= 2 for s in sequences)
        assert len(sequences) == 300

    def test_prediction_steps(self):
        steps = list(prediction_steps([[1, 2, 3]]))
        assert steps == [([1], 2), ([1, 2], 3)]


@pytest.mark.parametrize("model_cls", MODEL_CLASSES)
class TestModelBehaviour:
    def test_loss_decreases(self, model_cls, pattern_clicks):
        model = model_cls(epochs=3, embedding_dim=16, seed=1).fit(pattern_clicks)
        assert model.training_log.improved

    def test_learns_the_pattern(self, model_cls, pattern_clicks):
        model = model_cls(epochs=4, embedding_dim=16, seed=1).fit(pattern_clicks)
        hits = 0
        for start in range(0, 20, 2):
            top = model.recommend([start], how_many=3)
            if top and any(s.item_id == start + 1 for s in top):
                hits += 1
        assert hits >= 7  # 10 patterns; most must be learned

    def test_recommend_respects_how_many(self, model_cls, pattern_clicks):
        model = model_cls(epochs=1, embedding_dim=8, seed=2).fit(pattern_clicks)
        assert len(model.recommend([0], how_many=4)) <= 4

    def test_scores_descending(self, model_cls, pattern_clicks):
        model = model_cls(epochs=1, embedding_dim=8, seed=2).fit(pattern_clicks)
        scores = [s.score for s in model.recommend([0, 1], how_many=10)]
        assert scores == sorted(scores, reverse=True)

    def test_unknown_items_give_empty(self, model_cls, pattern_clicks):
        model = model_cls(epochs=1, embedding_dim=8, seed=2).fit(pattern_clicks)
        assert model.recommend([123456]) == []

    def test_unfitted_raises(self, model_cls):
        with pytest.raises(RuntimeError):
            model_cls().recommend([1])

    def test_deterministic_given_seed(self, model_cls, pattern_clicks):
        first = model_cls(epochs=1, embedding_dim=8, seed=9).fit(pattern_clicks)
        second = model_cls(epochs=1, embedding_dim=8, seed=9).fit(pattern_clicks)
        assert [s.item_id for s in first.recommend([0], 5)] == [
            s.item_id for s in second.recommend([0], 5)
        ]

    def test_empty_training_rejected(self, model_cls):
        with pytest.raises(ValueError):
            model_cls().fit([])
