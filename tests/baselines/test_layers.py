"""Numeric tests for the neural primitives, including gradient checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.neural.layers import (
    Adagrad,
    Dense,
    Embedding,
    GRUCell,
    sigmoid,
    softmax,
    softmax_cross_entropy,
)


RNG = np.random.default_rng(0)


class TestActivations:
    def test_sigmoid_range_and_midpoint(self):
        x = np.array([-100.0, 0.0, 100.0])
        y = sigmoid(x)
        assert y[0] == pytest.approx(0.0, abs=1e-6)
        assert y[1] == pytest.approx(0.5)
        assert y[2] == pytest.approx(1.0, abs=1e-6)

    def test_softmax_sums_to_one(self):
        probabilities = softmax(RNG.normal(size=50))
        assert probabilities.sum() == pytest.approx(1.0)
        assert (probabilities > 0).all()

    def test_softmax_shift_invariant(self):
        logits = RNG.normal(size=10)
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))


class TestSoftmaxCrossEntropy:
    def test_loss_value(self):
        logits = np.zeros(4)
        loss, _ = softmax_cross_entropy(logits, 2)
        assert loss == pytest.approx(np.log(4))

    def test_gradient_sums_to_zero(self):
        logits = RNG.normal(size=8)
        _, gradient = softmax_cross_entropy(logits, 3)
        assert gradient.sum() == pytest.approx(0.0, abs=1e-10)

    def test_gradient_check(self):
        logits = RNG.normal(size=6)
        _, analytic = softmax_cross_entropy(logits, 1)
        epsilon = 1e-6
        for position in range(6):
            bumped = logits.copy()
            bumped[position] += epsilon
            loss_plus, _ = softmax_cross_entropy(bumped, 1)
            bumped[position] -= 2 * epsilon
            loss_minus, _ = softmax_cross_entropy(bumped, 1)
            numeric = (loss_plus - loss_minus) / (2 * epsilon)
            assert analytic[position] == pytest.approx(numeric, abs=1e-5)


class TestDense:
    def test_forward_shape(self):
        layer = Dense(4, 3, RNG)
        assert layer.forward(np.ones(4)).shape == (3,)

    def test_gradient_check(self):
        layer = Dense(5, 3, RNG)
        x = RNG.normal(size=5)
        target = RNG.normal(size=3)

        def loss_of(weight):
            layer_weight = layer.weight
            layer.weight = weight
            value = 0.5 * np.sum((layer.forward(x) - target) ** 2)
            layer.weight = layer_weight
            return value

        output = layer.forward(x)
        grad_output = output - target
        grad_x, grad_weight, grad_bias = layer.backward(x, grad_output)

        epsilon = 1e-6
        for i in range(5):
            for j in range(3):
                perturbed = layer.weight.copy()
                perturbed[i, j] += epsilon
                loss_plus = loss_of(perturbed)
                perturbed[i, j] -= 2 * epsilon
                loss_minus = loss_of(perturbed)
                numeric = (loss_plus - loss_minus) / (2 * epsilon)
                assert grad_weight[i, j] == pytest.approx(numeric, abs=1e-4)
        np.testing.assert_allclose(grad_bias, grad_output)
        del grad_x


class TestGRUCell:
    def test_forward_shapes_and_state(self):
        cell = GRUCell(4, 6, RNG)
        h, cache = cell.forward(np.ones(4), cell.initial_state())
        assert h.shape == (6,)
        assert set(cache) == {"x", "h", "z", "r", "c"}

    def test_gradient_check_wrt_input(self):
        cell = GRUCell(3, 4, RNG)
        x = RNG.normal(size=3)
        h_prev = RNG.normal(size=4)
        target = RNG.normal(size=4)

        def loss_at(x_value):
            h, _ = cell.forward(x_value, h_prev)
            return 0.5 * np.sum((h - target) ** 2)

        h, cache = cell.forward(x, h_prev)
        grad_x, _ = cell.backward(h - target, cache)

        epsilon = 1e-6
        for position in range(3):
            bumped = x.copy()
            bumped[position] += epsilon
            loss_plus = loss_at(bumped)
            bumped[position] -= 2 * epsilon
            loss_minus = loss_at(bumped)
            numeric = (loss_plus - loss_minus) / (2 * epsilon)
            assert grad_x[position] == pytest.approx(numeric, abs=1e-4)

    def test_gradient_check_wrt_parameters(self):
        cell = GRUCell(3, 4, RNG)
        x = RNG.normal(size=3)
        h_prev = RNG.normal(size=4)
        target = RNG.normal(size=4)
        h, cache = cell.forward(x, h_prev)
        _, grads = cell.backward(h - target, cache)

        epsilon = 1e-6
        for name in ("Wz", "Ur", "bc"):
            parameter = getattr(cell, name)
            analytic = grads[name]
            flat_index = (
                np.unravel_index(0, parameter.shape)
                if parameter.ndim > 1
                else (0,)
            )
            original = parameter[flat_index]
            parameter[flat_index] = original + epsilon
            h_plus, _ = cell.forward(x, h_prev)
            loss_plus = 0.5 * np.sum((h_plus - target) ** 2)
            parameter[flat_index] = original - epsilon
            h_minus, _ = cell.forward(x, h_prev)
            loss_minus = 0.5 * np.sum((h_minus - target) ** 2)
            parameter[flat_index] = original
            numeric = (loss_plus - loss_minus) / (2 * epsilon)
            assert analytic[flat_index] == pytest.approx(numeric, abs=1e-4), name


class TestEmbeddingAndOptimizer:
    def test_lookup(self):
        embedding = Embedding(10, 4, RNG)
        rows = embedding.lookup(np.array([2, 5]))
        np.testing.assert_allclose(rows[0], embedding.weight[2])

    def test_adagrad_decreases_quadratic_loss(self):
        parameter = np.array([5.0, -3.0])
        optimizer = Adagrad(learning_rate=0.5)
        for _ in range(200):
            optimizer.update(parameter, parameter.copy())  # grad of x^2/2
        assert np.abs(parameter).max() < 1.0

    def test_sparse_update_touches_only_rows(self):
        embedding = Embedding(10, 4, RNG)
        optimizer = Adagrad(0.1)
        before = embedding.weight.copy()
        rows = np.array([3])
        embedding.apply_gradient(optimizer, rows, np.ones((1, 4)))
        changed = np.abs(embedding.weight - before).sum(axis=1) > 0
        assert changed[3]
        assert changed.sum() == 1
