"""Tests for the STAN baseline."""

from __future__ import annotations

import pytest

from repro.baselines.stan import STANRecommender
from repro.core.index import SessionIndex


class TestConstruction:
    def test_rejects_bad_hyperparameters(self, toy_index):
        with pytest.raises(ValueError):
            STANRecommender(toy_index, m=0)
        with pytest.raises(ValueError):
            STANRecommender(toy_index, lambda1=-1.0)
        with pytest.raises(ValueError):
            STANRecommender(toy_index, lambda2=0.0)

    def test_from_clicks(self, toy_clicks):
        model = STANRecommender.from_clicks(toy_clicks, m=5)
        assert model.index.num_sessions == 6


class TestNeighbors:
    def test_empty_session(self, toy_index):
        model = STANRecommender(toy_index)
        assert model.find_neighbors([]) == []
        assert model.recommend([]) == []

    def test_unknown_items(self, toy_index):
        assert STANRecommender(toy_index).find_neighbors([999]) == []

    def test_k_respected(self, toy_index):
        model = STANRecommender(toy_index, m=10, k=2)
        assert len(model.find_neighbors([1, 2, 4])) <= 2

    def test_recency_factor_prefers_recent_sessions(self, toy_index):
        """Factor 2: with a sharp lambda2, the most recent session wins
        even against one with equal item overlap."""
        # Sessions 0 (items 1,2 @ ts 101) and 2 (items 1,2,4 @ ts 302)
        # both overlap {1, 2}.
        sharp = STANRecommender(toy_index, m=10, k=10, lambda2=50.0)
        neighbors = sharp.find_neighbors([1, 2], now=302)
        ranked = [sid for sid, _ in neighbors]
        assert ranked[0] == 2

    def test_disabling_factors_changes_scores(self, toy_index):
        with_decay = STANRecommender(toy_index, lambda2=100.0)
        without_decay = STANRecommender(toy_index, lambda2=None)
        a = dict(with_decay.find_neighbors([1, 2], now=302))
        b = dict(without_decay.find_neighbors([1, 2], now=302))
        assert a != b


class TestRecommend:
    def test_scores_descending(self, toy_index):
        model = STANRecommender(toy_index, m=10, k=10)
        scores = [s.score for s in model.recommend([1, 2, 4], how_many=10)]
        assert scores == sorted(scores, reverse=True)

    def test_proximity_factor_boosts_adjacent_items(self, toy_clicks):
        """Factor 3: items next to the matched item in a neighbour session
        outscore distant ones, all else equal."""
        index = SessionIndex.from_clicks(toy_clicks, max_sessions_per_item=10)
        model = STANRecommender(
            index, m=10, k=10, lambda1=None, lambda2=None, lambda3=0.5
        )
        # Session 5 = (2, 4, 5): matching on item 2, item 4 is adjacent
        # while 5 is two steps away.
        scores = {s.item_id: s.score for s in model.recommend([2], how_many=10)}
        assert scores[4] > scores[5]

    def test_exclude_current_items(self, toy_index):
        model = STANRecommender(toy_index, exclude_current_items=True)
        recommended = {s.item_id for s in model.recommend([1, 2])}
        assert recommended.isdisjoint({1, 2})

    def test_beats_popularity_on_synthetic_data(self, medium_log):
        from repro.baselines.popularity import PopularityRecommender
        from repro.data.split import temporal_split
        from repro.eval.evaluator import evaluate_next_item

        split = temporal_split(medium_log)
        train = list(split.train)
        stan = STANRecommender.from_clicks(train, m=300, k=100)
        pop = PopularityRecommender().fit(train)
        sequences = split.test_sequences()
        stan_result = evaluate_next_item(stan, sequences, max_predictions=300)
        pop_result = evaluate_next_item(pop, sequences, max_predictions=300)
        assert stan_result.mrr > pop_result.mrr
