"""Tests for the non-neural baselines."""

from __future__ import annotations

import pytest

from repro.baselines.itemknn import ItemKNNRecommender
from repro.baselines.markov import MarkovRecommender
from repro.baselines.popularity import PopularityRecommender
from repro.baselines.sknn import SKNNRecommender
from repro.core.types import Click


@pytest.fixture()
def train_clicks(toy_clicks):
    return toy_clicks


class TestPopularity:
    def test_ranks_by_frequency(self, train_clicks):
        model = PopularityRecommender().fit(train_clicks)
        ranked = [s.item_id for s in model.recommend([], how_many=5)]
        # Item 2 occurs 4 times; items 1 and 4 occur 3 times each and tie
        # on count, breaking towards the smaller item id.
        assert ranked[:3] == [2, 1, 4]

    def test_exclusion(self, train_clicks):
        model = PopularityRecommender(exclude_current_items=True).fit(train_clicks)
        ranked = {s.item_id for s in model.recommend([1, 2], how_many=5)}
        assert ranked.isdisjoint({1, 2})

    def test_scores_are_probabilities(self, train_clicks):
        model = PopularityRecommender().fit(train_clicks)
        total = sum(s.score for s in model.recommend([], how_many=100))
        assert total == pytest.approx(1.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PopularityRecommender().recommend([1])


class TestMarkov:
    def test_learns_transitions(self):
        clicks = [Click(0, 1, 1), Click(0, 2, 2), Click(1, 1, 3), Click(1, 2, 4)]
        model = MarkovRecommender(window=1).fit(clicks)
        ranked = model.recommend([1], how_many=3)
        assert ranked[0].item_id == 2
        assert ranked[0].score == 2.0

    def test_window_weights_decay(self):
        clicks = [Click(0, 1, 1), Click(0, 2, 2), Click(0, 3, 3)]
        model = MarkovRecommender(window=2).fit(clicks)
        scores = {s.item_id: s.score for s in model.recommend([1], how_many=3)}
        assert scores[2] == pytest.approx(1.0)
        assert scores[3] == pytest.approx(0.5)

    def test_only_last_item_matters(self, train_clicks):
        model = MarkovRecommender().fit(train_clicks)
        assert model.recommend([1, 2]) == model.recommend([5, 2])

    def test_self_transitions_ignored(self):
        clicks = [Click(0, 1, 1), Click(0, 1, 2), Click(0, 2, 3)]
        model = MarkovRecommender(window=1).fit(clicks)
        assert all(s.item_id != 1 for s in model.recommend([1], how_many=5))

    def test_empty_session(self, train_clicks):
        assert MarkovRecommender().fit(train_clicks).recommend([]) == []

    def test_bad_window(self):
        with pytest.raises(ValueError):
            MarkovRecommender(window=0)


class TestItemKNN:
    def test_cooccurring_items_are_neighbors(self, train_clicks):
        model = ItemKNNRecommender().fit(train_clicks)
        neighbors = {s.item_id for s in model.recommend([1], how_many=5)}
        # Item 1 co-occurs with 2, 4 and 5 across the toy sessions.
        assert neighbors <= {2, 4, 5}
        assert 2 in neighbors

    def test_cosine_normalisation(self):
        # a appears with b once; a in 1 session, b in 2 -> 1/sqrt(2).
        clicks = [
            Click(0, 1, 1),
            Click(0, 2, 2),
            Click(1, 2, 3),
            Click(1, 3, 4),
        ]
        model = ItemKNNRecommender().fit(clicks)
        ranked = {s.item_id: s.score for s in model.recommend([1], how_many=3)}
        assert ranked[2] == pytest.approx(1 / (2**0.5))

    def test_min_cooccurrence_filters_noise(self, train_clicks):
        strict = ItemKNNRecommender(min_cooccurrence=3).fit(train_clicks)
        assert strict.recommend([1], how_many=5) == []

    def test_neighbor_cap(self, train_clicks):
        model = ItemKNNRecommender(neighbors_per_item=1).fit(train_clicks)
        assert len(model.recommend([2], how_many=10)) <= 1

    def test_uses_only_last_item(self, train_clicks):
        model = ItemKNNRecommender().fit(train_clicks)
        assert model.recommend([5, 1]) == model.recommend([3, 1])

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            ItemKNNRecommender(neighbors_per_item=0)


class TestSKNN:
    def test_recommends_from_similar_sessions(self, train_clicks):
        model = SKNNRecommender.from_clicks(train_clicks, m=10, k=10)
        ranked = {s.item_id for s in model.recommend([1, 2], how_many=5)}
        assert ranked  # cosine neighbours exist

    def test_order_of_session_irrelevant(self, train_clicks):
        model = SKNNRecommender.from_clicks(train_clicks, m=10, k=10)
        assert model.recommend([1, 2]) == model.recommend([2, 1])

    def test_empty_session(self, train_clicks):
        model = SKNNRecommender.from_clicks(train_clicks)
        assert model.recommend([]) == []
