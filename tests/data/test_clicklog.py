"""Tests for the ClickLog container and its IO / preprocessing."""

from __future__ import annotations

import pytest

from repro.core.types import Click
from repro.data.clicklog import SECONDS_PER_DAY, ClickLog


@pytest.fixture()
def log() -> ClickLog:
    rows = [
        (0, 1, 100),
        (0, 2, 150),
        (1, 1, 2_000),
        (2, 3, SECONDS_PER_DAY + 10),
        (2, 3, SECONDS_PER_DAY + 20),
        (2, 1, SECONDS_PER_DAY + 30),
    ]
    return ClickLog(Click(s, i, t) for s, i, t in rows)


class TestBasics:
    def test_len_and_counts(self, log):
        assert len(log) == 6
        assert log.num_sessions() == 3
        assert log.num_items() == 3

    def test_clicks_sorted_by_time(self, log):
        timestamps = [c.timestamp for c in log]
        assert timestamps == sorted(timestamps)

    def test_time_range_and_days(self, log):
        first, last = log.time_range()
        assert first == 100
        assert last == SECONDS_PER_DAY + 30
        assert log.num_days() == 2

    def test_empty_log_raises_on_time_range(self):
        with pytest.raises(ValueError):
            ClickLog([]).time_range()

    def test_sessions_grouped_in_order(self, log):
        sessions = log.sessions()
        assert [c.item_id for c in sessions[2]] == [3, 3, 1]

    def test_item_sequences(self, log):
        assert log.session_item_sequences()[0] == [1, 2]


class TestFiltering:
    def test_min_session_length(self, log):
        filtered = log.filter_min_session_length(2)
        assert filtered.num_sessions() == 2
        assert 1 not in filtered.sessions()

    def test_min_item_support(self, log):
        filtered = log.filter_min_item_support(3)
        # Item 1 has 3 clicks; items 2 and 3 have 1 and 2.
        assert {c.item_id for c in filtered} == {1}

    def test_preprocess_order_support_then_length(self, log):
        processed = log.preprocess(min_session_length=2, min_item_support=3)
        # After support filtering only item 1 remains; every session is
        # then shorter than 2 clicks and gets dropped.
        assert len(processed) == 0


class TestSplit:
    def test_split_is_session_atomic(self, log):
        train, test = log.split_at(SECONDS_PER_DAY)
        assert {c.session_id for c in train} == {0, 1}
        assert {c.session_id for c in test} == {2}

    def test_session_with_late_last_click_goes_entirely_to_test(self):
        rows = [(0, 1, 10), (0, 2, 5_000)]
        log = ClickLog(Click(s, i, t) for s, i, t in rows)
        train, test = log.split_at(1_000)
        assert len(train) == 0
        assert len(test) == 2


class TestTsvRoundtrip:
    def test_roundtrip_string(self, log):
        text = log.to_tsv_string()
        restored = ClickLog.from_tsv_string(text)
        assert [c.as_tuple() for c in restored] == [c.as_tuple() for c in log]

    def test_roundtrip_file(self, log, tmp_path):
        path = tmp_path / "clicks.tsv"
        log.to_tsv(path)
        restored = ClickLog.from_tsv(path)
        assert len(restored) == len(log)

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError, match="bad header"):
            ClickLog.from_tsv_string("a\tb\tc\n1\t2\t3\n")

    def test_empty_string_gives_empty_log(self):
        assert len(ClickLog.from_tsv_string("")) == 0


class TestMalformedRows:
    HEADER = "session_id\titem_id\ttimestamp\n"

    def test_short_row_skipped_and_counted(self):
        log, report = ClickLog.from_tsv_string_with_report(
            self.HEADER + "1\t2\t3\n1\t2\n4\t5\t6\n"
        )
        assert [c.as_tuple() for c in log] == [(1, 2, 3), (4, 5, 6)]
        assert report.parsed == 2
        assert report.skipped == 1
        assert report.errors == [(3, "expected 3 fields, got 2")]
        assert not report.ok

    def test_non_integer_row_skipped_and_counted(self):
        log, report = ClickLog.from_tsv_string_with_report(
            self.HEADER + "1\t2\t3\nx\t2\t3\n"
        )
        assert len(log) == 1
        assert report.skipped == 1
        assert "non-integer" in report.errors[0][1]

    def test_from_tsv_never_raises_on_bad_rows(self, tmp_path):
        path = tmp_path / "dirty.tsv"
        path.write_text(self.HEADER + "1\t2\t3\ngarbage line\n7\t8\t9\n")
        log = ClickLog.from_tsv(path)
        assert len(log) == 2
        assert log.parse_report is not None
        assert log.parse_report.skipped == 1
        assert log.parse_report.skip_rate == pytest.approx(1 / 3)

    def test_clean_file_reports_ok(self):
        log, report = ClickLog.from_tsv_string_with_report(
            self.HEADER + "1\t2\t3\n"
        )
        assert report.ok
        assert report.summary()["skipped"] == 0

    def test_error_samples_are_capped(self):
        from repro.data.clicklog import MAX_PARSE_ERROR_SAMPLES

        bad = "bad\n" * (MAX_PARSE_ERROR_SAMPLES + 10)
        _, report = ClickLog.from_tsv_string_with_report(self.HEADER + bad)
        assert report.skipped == MAX_PARSE_ERROR_SAMPLES + 10
        assert len(report.errors) == MAX_PARSE_ERROR_SAMPLES
