"""Tests for the Table 1 dataset profile registry."""

from __future__ import annotations

import pytest

from repro.data.datasets import (
    dataset_names,
    get_profile,
    load_dataset,
)


class TestRegistry:
    def test_all_six_table1_rows_present(self):
        assert dataset_names() == [
            "retailrocket-sim",
            "rsc15-sim",
            "ecom-1m-sim",
            "ecom-60m-sim",
            "ecom-90m-sim",
            "ecom-180m-sim",
        ]

    def test_paper_numbers_recorded(self):
        profile = get_profile("ecom-180m-sim")
        assert profile.paper_clicks == 189_317_506
        assert profile.paper_sessions == 28_824_487
        assert profile.days == 91
        assert not profile.public

    def test_public_flags(self):
        assert get_profile("rsc15-sim").public
        assert not get_profile("ecom-1m-sim").public

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(ValueError, match="retailrocket-sim"):
            get_profile("mnist")


class TestScaling:
    def test_scale_controls_session_count(self):
        small = load_dataset("retailrocket-sim", scale=0.02, seed=1)
        large = load_dataset("retailrocket-sim", scale=0.05, seed=1)
        assert small.num_sessions() < large.num_sessions()

    def test_scaled_sessions_approximate_target(self):
        profile = get_profile("retailrocket-sim")
        log = load_dataset("retailrocket-sim", scale=0.05, seed=1)
        assert log.num_sessions() == int(profile.paper_sessions * 0.05)

    def test_catalog_scales_sublinearly(self):
        profile = get_profile("ecom-1m-sim")
        config = profile.config(scale=0.01, seed=1)
        # sqrt scaling: 1% of sessions keeps ~10% of the catalog.
        assert config.num_items > profile.paper_items * 0.01
        assert config.num_items <= profile.paper_items * 0.2

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            load_dataset("rsc15-sim", scale=0.0)
        with pytest.raises(ValueError):
            load_dataset("rsc15-sim", scale=1.5)

    def test_deterministic_given_seed(self):
        first = load_dataset("retailrocket-sim", scale=0.02, seed=4)
        second = load_dataset("retailrocket-sim", scale=0.02, seed=4)
        assert [c.as_tuple() for c in first] == [c.as_tuple() for c in second]
