"""Property tests for ClickLog IO and preprocessing."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import Click
from repro.data.clicklog import ClickLog


def clicks_strategy():
    return st.lists(
        st.tuples(
            st.integers(0, 2**40),
            st.integers(0, 2**40),
            st.integers(0, 2**40),
        ),
        max_size=80,
    ).map(lambda rows: [Click(s, i, t) for s, i, t in rows])


class TestTsvRoundtripProperty:
    @given(clicks=clicks_strategy())
    @settings(max_examples=60)
    def test_roundtrip_preserves_everything(self, clicks):
        log = ClickLog(clicks)
        restored = ClickLog.from_tsv_string(log.to_tsv_string())
        assert [c.as_tuple() for c in restored] == [c.as_tuple() for c in log]


class TestPreprocessingProperties:
    @given(clicks=clicks_strategy(), min_support=st.integers(1, 5))
    @settings(max_examples=60)
    def test_item_support_holds_after_filter(self, clicks, min_support):
        log = ClickLog(clicks).filter_min_item_support(min_support)
        counts: dict[int, int] = {}
        for click in log:
            counts[click.item_id] = counts.get(click.item_id, 0) + 1
        assert all(count >= min_support for count in counts.values())

    @given(clicks=clicks_strategy(), min_length=st.integers(1, 5))
    @settings(max_examples=60)
    def test_session_length_holds_after_filter(self, clicks, min_length):
        log = ClickLog(clicks).filter_min_session_length(min_length)
        assert all(
            len(session) >= min_length for session in log.sessions().values()
        )

    @given(clicks=clicks_strategy(), cutoff=st.integers(0, 2**40))
    @settings(max_examples=60)
    def test_split_partitions_completely(self, clicks, cutoff):
        log = ClickLog(clicks)
        train, test = log.split_at(cutoff)
        assert len(train) + len(test) == len(log)
        assert set(train.sessions()).isdisjoint(test.sessions())
