"""Tests for the Table 1 statistics machinery."""

from __future__ import annotations

import pytest

from repro.core.types import Click
from repro.data.clicklog import ClickLog
from repro.data.stats import dataset_statistics, format_table


@pytest.fixture()
def uniform_log() -> ClickLog:
    """20 sessions of exactly 4 clicks each."""
    clicks = []
    for session in range(20):
        for position in range(4):
            clicks.append(Click(session, position, session * 100 + position))
    return ClickLog(clicks)


class TestDatasetStatistics:
    def test_counts(self, uniform_log):
        stats = dataset_statistics(uniform_log, "uniform")
        assert stats.clicks == 80
        assert stats.sessions == 20
        assert stats.items == 4
        assert stats.name == "uniform"

    def test_percentiles_of_constant_lengths(self, uniform_log):
        stats = dataset_statistics(uniform_log)
        assert stats.clicks_per_session_p25 == 4
        assert stats.clicks_per_session_p50 == 4
        assert stats.clicks_per_session_p99 == 4

    def test_empty_log_rejected(self):
        with pytest.raises(ValueError):
            dataset_statistics(ClickLog([]))

    def test_percentiles_ordered(self, small_log):
        stats = dataset_statistics(small_log)
        assert (
            stats.clicks_per_session_p25
            <= stats.clicks_per_session_p50
            <= stats.clicks_per_session_p75
            <= stats.clicks_per_session_p99
        )


class TestFormatTable:
    def test_contains_header_and_rows(self, uniform_log, small_log):
        table = format_table(
            [
                dataset_statistics(uniform_log, "uniform"),
                dataset_statistics(small_log, "synthetic"),
            ]
        )
        lines = table.splitlines()
        assert "dataset" in lines[0] and "p99" in lines[0]
        assert lines[1].startswith("-")
        assert "uniform" in lines[2]
        assert "synthetic" in lines[3]

    def test_thousands_separators(self, small_log):
        table = format_table([dataset_statistics(small_log, "s")])
        assert "," in table  # click counts are formatted with separators
