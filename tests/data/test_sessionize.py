"""Tests for inactivity-gap sessionization."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.sessionize import (
    DEFAULT_INACTIVITY_GAP,
    UserEvent,
    resessionize,
    sessionize,
)


class TestBasicCutting:
    def test_gap_starts_new_session(self):
        events = [
            UserEvent(1, 10, 0),
            UserEvent(1, 11, 100),
            UserEvent(1, 12, 100 + DEFAULT_INACTIVITY_GAP + 1),
        ]
        log, report = sessionize(events)
        assert report.sessions == 2
        sequences = log.session_item_sequences()
        assert sorted(map(tuple, sequences.values())) == [(10, 11), (12,)]

    def test_exact_gap_does_not_split(self):
        events = [
            UserEvent(1, 10, 0),
            UserEvent(1, 11, DEFAULT_INACTIVITY_GAP),
        ]
        _, report = sessionize(events)
        assert report.sessions == 1

    def test_users_are_independent(self):
        events = [UserEvent(1, 10, 0), UserEvent(2, 20, 5)]
        _, report = sessionize(events)
        assert report.sessions == 2
        assert report.users == 2

    def test_out_of_order_events_sorted(self):
        events = [UserEvent(1, 11, 100), UserEvent(1, 10, 0)]
        log, _ = sessionize(events)
        sequence = list(log.session_item_sequences().values())[0]
        assert sequence == [10, 11]

    def test_session_ids_ordered_by_start_time(self):
        events = [
            UserEvent(2, 20, 50),
            UserEvent(1, 10, 0),
        ]
        log, _ = sessionize(events)
        by_session = log.session_item_sequences()
        assert by_session[0] == [10]  # earliest start gets id 0
        assert by_session[1] == [20]

    def test_empty_input(self):
        log, report = sessionize([])
        assert len(log) == 0
        assert report.sessions == 0
        assert report.sessions_per_user == 0.0


class TestLengthCap:
    def test_overflow_starts_new_session(self):
        events = [UserEvent(1, i, i * 10) for i in range(7)]
        _, report = sessionize(events, max_session_length=3)
        assert report.sessions == 3
        assert report.max_session_length == 3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            sessionize([], inactivity_gap=0)
        with pytest.raises(ValueError):
            sessionize([], max_session_length=0)


class TestResessionize:
    def test_smaller_gap_produces_more_sessions(self, small_log):
        wide, wide_report = resessionize(small_log, inactivity_gap=3600)
        narrow, narrow_report = resessionize(small_log, inactivity_gap=30)
        assert narrow_report.sessions >= wide_report.sessions
        assert len(wide) == len(small_log) == len(narrow)

    def test_report_counts(self, small_log):
        _, report = resessionize(small_log)
        assert report.events == len(small_log)
        assert report.users == small_log.num_sessions()


class TestProperties:
    @given(
        events=st.lists(
            st.tuples(
                st.integers(0, 5),
                st.integers(0, 20),
                st.integers(0, 100_000),
            ),
            max_size=80,
        ),
        gap=st.integers(1, 5_000),
    )
    @settings(max_examples=60)
    def test_no_click_lost_and_gaps_respected(self, events, gap):
        user_events = [UserEvent(u, i, t) for u, i, t in events]
        log, report = sessionize(user_events, inactivity_gap=gap)
        assert len(log) == len(user_events)
        assert report.events == len(user_events)
        # Within every produced session, consecutive gaps never exceed gap.
        for clicks in log.sessions().values():
            timestamps = [c.timestamp for c in clicks]
            assert all(
                b - a <= gap for a, b in zip(timestamps, timestamps[1:])
            )
