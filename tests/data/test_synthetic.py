"""Tests for the synthetic clickstream generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.stats import dataset_statistics
from repro.data.synthetic import (
    ClickstreamConfig,
    ClickstreamGenerator,
    generate_clickstream,
)


class TestConfigValidation:
    def test_rejects_no_sessions(self):
        with pytest.raises(ValueError):
            ClickstreamConfig(num_sessions=0).validate()

    def test_rejects_more_categories_than_items(self):
        with pytest.raises(ValueError):
            ClickstreamConfig(num_items=5, num_categories=10).validate()

    def test_rejects_bad_locality(self):
        with pytest.raises(ValueError):
            ClickstreamConfig(locality=1.5).validate()

    def test_rejects_zero_days(self):
        with pytest.raises(ValueError):
            ClickstreamConfig(days=0).validate()


class TestDeterminism:
    def test_same_seed_same_log(self):
        first = generate_clickstream(num_sessions=200, num_items=100, seed=5)
        second = generate_clickstream(num_sessions=200, num_items=100, seed=5)
        assert [c.as_tuple() for c in first] == [c.as_tuple() for c in second]

    def test_different_seed_different_log(self):
        first = generate_clickstream(num_sessions=200, num_items=100, seed=5)
        second = generate_clickstream(num_sessions=200, num_items=100, seed=6)
        assert [c.as_tuple() for c in first] != [c.as_tuple() for c in second]


class TestShape:
    def test_session_count_and_catalog_bounds(self, small_log):
        assert small_log.num_sessions() == 800
        assert small_log.num_items() <= 300

    def test_every_session_has_at_least_two_clicks(self, small_log):
        assert all(len(c) >= 2 for c in small_log.sessions().values())

    def test_timestamps_increase_within_sessions(self, small_log):
        for clicks in small_log.sessions().values():
            timestamps = [c.timestamp for c in clicks]
            assert timestamps == sorted(timestamps)

    def test_length_distribution_matches_table1_shape(self):
        log = generate_clickstream(num_sessions=5000, num_items=500, seed=11)
        stats = dataset_statistics(log)
        assert 2 <= stats.clicks_per_session_p50 <= 6
        assert stats.clicks_per_session_p99 >= 15

    def test_popularity_is_skewed(self, small_log):
        counts = {}
        for click in small_log:
            counts[click.item_id] = counts.get(click.item_id, 0) + 1
        ordered = sorted(counts.values(), reverse=True)
        top_decile = sum(ordered[: max(1, len(ordered) // 10)])
        assert top_decile / len(small_log) > 0.25  # heavy head

    def test_days_span_respected(self):
        log = generate_clickstream(num_sessions=400, num_items=200, days=5, seed=3)
        assert log.num_days() <= 6  # last click may spill slightly past


class TestTopicalCoherence:
    def test_sessions_concentrate_on_categories(self):
        config = ClickstreamConfig(
            num_sessions=300, num_items=200, num_categories=20, seed=9
        )
        generator = ClickstreamGenerator(config)
        log = generator.generate()
        category_of = np.arange(config.num_items) % config.num_categories
        concentrations = []
        for clicks in log.sessions().values():
            if len(clicks) < 4:
                continue
            categories = [category_of[c.item_id] for c in clicks]
            counts = np.bincount(categories, minlength=config.num_categories)
            concentrations.append(counts.max() / len(categories))
        # Sessions should mostly stay within one category.
        assert np.mean(concentrations) > 0.5
