"""Tests for temporal train/test splitting."""

from __future__ import annotations

import pytest

from repro.core.types import Click
from repro.data.clicklog import SECONDS_PER_DAY, ClickLog
from repro.data.split import sliding_window_splits, temporal_split


class TestTemporalSplit:
    def test_last_day_held_out(self, small_log):
        split = temporal_split(small_log, test_days=1)
        _, last_train = split.train.time_range()
        first_test, _ = split.test.time_range()
        # The boundary is the cutoff; trains end before tests *end*, and
        # every test session's last click is inside the final day.
        _, log_end = small_log.time_range()
        cutoff = log_end - SECONDS_PER_DAY
        last_clicks = {
            sid: clicks[-1].timestamp
            for sid, clicks in split.test.sessions().items()
        }
        assert all(ts >= cutoff for ts in last_clicks.values())
        train_last = {
            sid: clicks[-1].timestamp
            for sid, clicks in split.train.sessions().items()
        }
        assert all(ts < cutoff for ts in train_last.values())

    def test_partition_is_complete_and_disjoint(self, small_log):
        split = temporal_split(small_log)
        assert len(split.train) + len(split.test) == len(small_log)
        assert set(split.train.sessions()).isdisjoint(split.test.sessions())

    def test_rejects_nonpositive_window(self, small_log):
        with pytest.raises(ValueError):
            temporal_split(small_log, test_days=0)

    def test_rejects_window_swallowing_log(self, small_log):
        with pytest.raises(ValueError, match="swallows"):
            temporal_split(small_log, test_days=10_000)


class TestTestSequences:
    def test_unknown_items_filtered(self):
        rows = [
            (0, 1, 100),
            (0, 2, 200),
            # test session: item 99 never occurs in training
            (1, 1, SECONDS_PER_DAY * 3),
            (1, 99, SECONDS_PER_DAY * 3 + 10),
            (1, 2, SECONDS_PER_DAY * 3 + 20),
        ]
        log = ClickLog(Click(s, i, t) for s, i, t in rows)
        split = temporal_split(log, test_days=1)
        sequences = split.test_sequences()
        assert sequences == {1: [1, 2]}

    def test_sessions_shrinking_below_two_dropped(self):
        rows = [
            (0, 1, 100),
            (1, 99, SECONDS_PER_DAY * 3),
            (1, 1, SECONDS_PER_DAY * 3 + 10),
        ]
        log = ClickLog(Click(s, i, t) for s, i, t in rows)
        split = temporal_split(log, test_days=1)
        assert split.test_sequences() == {}


class TestSlidingWindows:
    def test_produces_requested_windows(self, medium_log):
        splits = sliding_window_splits(
            medium_log, num_windows=3, train_days=4, test_days=1
        )
        assert 1 <= len(splits) <= 3
        for split in splits:
            assert len(split.train) > 0
            assert len(split.test) > 0

    def test_windows_are_time_ordered_and_distinct(self, medium_log):
        splits = sliding_window_splits(
            medium_log, num_windows=3, train_days=3, test_days=1
        )
        starts = [split.train.time_range()[0] for split in splits]
        assert starts == sorted(starts)
        assert len(set(starts)) == len(starts)

    def test_rejects_oversized_window(self, small_log):
        with pytest.raises(ValueError):
            sliding_window_splits(
                small_log, num_windows=2, train_days=100, test_days=1
            )

    def test_rejects_zero_windows(self, small_log):
        with pytest.raises(ValueError):
            sliding_window_splits(small_log, num_windows=0, train_days=2)
