"""Execute the doctest examples embedded in public docstrings."""

from __future__ import annotations

import doctest

import pytest

import repro.core.types
import repro.core.weights


@pytest.mark.parametrize(
    "module",
    [repro.core.types, repro.core.weights],
    ids=lambda module: module.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0  # the docstrings actually carry examples
