"""Tests for the consistent-hash ring: invariants, balance, minimal movement.

The ring is the placement substrate of the replicated serving path: the
router's single-owner lookup and the coordinator's preference lists both
come from here, so these tests pin the properties everything above
depends on — determinism, distinct-replica preference lists, bounded
imbalance, and the minimal-movement bound (the fraction of keys that
change primary on a membership change is the departing/arriving pod's
owned fraction of the keyspace, nothing more).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.ring import DEFAULT_VIRTUAL_NODES, HashRing
from repro.serving.router import StickySessionRouter


def ring_with(pods: list[str], virtual_nodes: int = DEFAULT_VIRTUAL_NODES) -> HashRing:
    ring = HashRing(virtual_nodes=virtual_nodes)
    for pod in pods:
        ring.add_pod(pod)
    return ring


class TestMembership:
    def test_add_remove_roundtrip(self):
        ring = ring_with(["a", "b"])
        assert ring.pods == ["a", "b"]
        assert "a" in ring and len(ring) == 2
        ring.remove_pod("a")
        assert ring.pods == ["b"]
        assert "a" not in ring

    def test_duplicate_add_rejected(self):
        ring = ring_with(["a"])
        with pytest.raises(ValueError):
            ring.add_pod("a")

    def test_remove_unknown_rejected(self):
        with pytest.raises(ValueError):
            ring_with(["a"]).remove_pod("b")

    def test_virtual_nodes_validated(self):
        with pytest.raises(ValueError):
            HashRing(virtual_nodes=0)

    def test_empty_ring_lookup_raises(self):
        with pytest.raises(RuntimeError):
            HashRing().preference_list("key", 1)


class TestLookup:
    def test_primary_is_head_of_preference_list(self):
        ring = ring_with(["a", "b", "c"])
        for i in range(100):
            key = f"k{i}"
            prefs = ring.preference_list(key, 3)
            assert ring.primary(key) == prefs[0]

    def test_preference_list_distinct_pods(self):
        ring = ring_with(["a", "b", "c", "d"])
        for i in range(200):
            prefs = ring.preference_list(f"k{i}", 3)
            assert len(prefs) == 3
            assert len(set(prefs)) == 3

    def test_preference_list_capped_at_pod_count(self):
        ring = ring_with(["a", "b"])
        prefs = ring.preference_list("k", 5)
        assert sorted(prefs) == ["a", "b"]

    def test_lookup_deterministic_across_instances(self):
        pods = [f"pod-{i}" for i in range(5)]
        first, second = ring_with(pods), ring_with(list(reversed(pods)))
        for i in range(300):
            key = f"session-{i}"
            assert first.preference_list(key, 2) == second.preference_list(key, 2)


class TestOwnedFraction:
    def test_fractions_sum_to_one(self):
        ring = ring_with([f"pod-{i}" for i in range(6)])
        total = sum(ring.owned_fraction(pod) for pod in ring.pods)
        assert total == pytest.approx(1.0)

    def test_single_pod_owns_everything(self):
        assert ring_with(["solo"]).owned_fraction("solo") == 1.0

    def test_unknown_pod_rejected(self):
        with pytest.raises(ValueError):
            ring_with(["a"]).owned_fraction("b")

    def test_balance_within_documented_bound(self):
        """128 virtual nodes keep per-pod load within ~±35% of even."""
        ring = ring_with([f"pod-{i}" for i in range(4)])
        for pod in ring.pods:
            assert 0.25 * 0.65 <= ring.owned_fraction(pod) <= 0.25 * 1.35


def sampling_epsilon(fraction: float, n: int) -> float:
    """Each sampled key lands in the moved arcs independently with
    p = fraction, so the moved count is Binomial(n, p); a 4.5-sigma
    band (+ a small absolute floor) makes false alarms ~1e-5 per
    example even as hypothesis sweeps hundreds of seeds."""
    return 4.5 * math.sqrt(fraction * (1.0 - fraction) / n) + 0.01


class TestMinimalMovement:
    """ISSUE acceptance: fraction of keys changing owner on a membership
    change ≤ the moved segments' fraction of the ring + ε (sampling)."""

    @given(num_pods=st.integers(2, 6), removed=st.integers(0, 5), seed=st.integers(0, 999))
    @settings(max_examples=25, deadline=None)
    def test_removal_moves_exactly_the_owned_fraction(self, num_pods, removed, seed):
        pods = [f"pod-{i}" for i in range(num_pods)]
        victim = pods[removed % num_pods]
        ring = ring_with(pods)
        keys = [f"s{seed}-{i}" for i in range(800)]
        before = {key: ring.primary(key) for key in keys}
        moved_fraction = ring.owned_fraction(victim)
        ring.remove_pod(victim)
        changed = 0
        for key in keys:
            after = ring.primary(key)
            if before[key] != victim:
                # Keys outside the victim's segments never move.
                assert after == before[key]
            else:
                changed += 1
                assert after != victim
        epsilon = sampling_epsilon(moved_fraction, len(keys))
        assert changed / len(keys) <= moved_fraction + epsilon

    @given(num_pods=st.integers(1, 5), seed=st.integers(0, 999))
    @settings(max_examples=25, deadline=None)
    def test_addition_moves_only_the_new_pods_fraction(self, num_pods, seed):
        pods = [f"pod-{i}" for i in range(num_pods)]
        ring = ring_with(pods)
        keys = [f"s{seed}-{i}" for i in range(800)]
        before = {key: ring.primary(key) for key in keys}
        ring.add_pod("pod-new")
        changed = 0
        for key in keys:
            after = ring.primary(key)
            if after != before[key]:
                # A moved key can only have moved TO the new pod.
                assert after == "pod-new"
                changed += 1
        new_fraction = ring.owned_fraction("pod-new")
        epsilon = sampling_epsilon(new_fraction, len(keys))
        assert changed / len(keys) <= new_fraction + epsilon

    def test_preference_lists_survive_unrelated_removal(self):
        """Replica placement is minimally disrupted too: removing a pod
        outside a key's preference list leaves the list unchanged."""
        ring = ring_with([f"pod-{i}" for i in range(5)])
        keys = [f"k{i}" for i in range(400)]
        before = {key: ring.preference_list(key, 2) for key in keys}
        ring.remove_pod("pod-3")
        for key in keys:
            if "pod-3" not in before[key]:
                assert ring.preference_list(key, 2) == before[key]


class TestRouterWrapper:
    """Satellite: StickySessionRouter is a thin wrapper over the ring."""

    def test_route_matches_ring_primary(self):
        router = StickySessionRouter(["a", "b", "c"])
        for i in range(200):
            key = f"k{i}"
            assert router.route(key) == router.ring.primary(key)

    def test_preference_list_delegates(self):
        router = StickySessionRouter(["a", "b", "c"])
        for i in range(50):
            key = f"k{i}"
            prefs = router.preference_list(key, 2)
            assert prefs == router.ring.preference_list(key, 2)
            assert prefs[0] == router.route(key)

    def test_custom_virtual_nodes(self):
        router = StickySessionRouter(["a", "b"], virtual_nodes=16)
        assert router.ring.virtual_nodes == 16
