"""Tests for sticky-session routing, including the rendezvous invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.router import StickySessionRouter


class TestBasics:
    def test_routes_to_registered_pod(self):
        router = StickySessionRouter(["pod-0", "pod-1"])
        assert router.route("session-x") in {"pod-0", "pod-1"}

    def test_stability(self):
        router = StickySessionRouter(["a", "b", "c"])
        assert all(
            router.route("key-42") == router.route("key-42") for _ in range(10)
        )

    def test_no_pods_raises(self):
        with pytest.raises(RuntimeError):
            StickySessionRouter().route("x")

    def test_duplicate_pod_rejected(self):
        router = StickySessionRouter(["a"])
        with pytest.raises(ValueError):
            router.add_pod("a")

    def test_remove_unknown_pod_rejected(self):
        with pytest.raises(ValueError):
            StickySessionRouter(["a"]).remove_pod("b")

    def test_assignment_counts_cover_all_sessions(self):
        router = StickySessionRouter(["a", "b"])
        keys = [f"s{i}" for i in range(50)]
        counts = router.assignment_counts(keys)
        assert sum(counts.values()) == 50


class TestBalance:
    def test_roughly_uniform_distribution(self):
        router = StickySessionRouter([f"pod-{i}" for i in range(4)])
        keys = [f"session-{i}" for i in range(4000)]
        counts = router.assignment_counts(keys)
        for pod_count in counts.values():
            assert 700 <= pod_count <= 1300  # within ~30% of perfect


class TestMinimalDisruption:
    @given(
        num_pods=st.integers(2, 6),
        removed=st.integers(0, 5),
        keys=st.lists(st.text(min_size=1, max_size=10), min_size=1, max_size=60),
    )
    @settings(max_examples=40)
    def test_removal_only_remaps_removed_pods_sessions(
        self, num_pods, removed, keys
    ):
        pods = [f"pod-{i}" for i in range(num_pods)]
        removed_pod = pods[removed % num_pods]
        router = StickySessionRouter(pods)
        before = {key: router.route(key) for key in keys}
        router.remove_pod(removed_pod)
        for key in keys:
            after = router.route(key)
            if before[key] != removed_pod:
                assert after == before[key]
            else:
                assert after != removed_pod

    @given(
        num_pods=st.integers(1, 5),
        keys=st.lists(st.text(min_size=1, max_size=10), min_size=1, max_size=60),
    )
    @settings(max_examples=40)
    def test_addition_only_steals_sessions_for_new_pod(self, num_pods, keys):
        pods = [f"pod-{i}" for i in range(num_pods)]
        router = StickySessionRouter(pods)
        before = {key: router.route(key) for key in keys}
        router.add_pod("pod-new")
        for key in keys:
            after = router.route(key)
            assert after == before[key] or after == "pod-new"
