"""Tests for the SLA guardrail layer: deadlines, breakers, fallbacks, shedding.

Every time-dependent scenario runs on a :class:`VirtualClock` — a stage
"stalls" by advancing virtual time, a breaker cool-down elapses with one
``advance`` call, and all assertions are exact. No real sleeps, no
wall-clock reads, no timing flake.
"""

from __future__ import annotations

import pytest

from repro.core.deadline import Deadline
from repro.core.types import ScoredItem
from repro.serving.resilience import (
    AdmissionController,
    BreakerState,
    CircuitBreaker,
    FallbackChain,
    FallbackStage,
    Overloaded,
    ResiliencePolicy,
    ResilientRecommender,
    StaticRecommender,
    popularity_from_index,
)
from repro.testing.clock import VirtualClock


class FlakyRecommender:
    """Scriptable stage: raises, stalls (virtually), or answers on schedule.

    A "stall" advances the shared virtual clock by ``stall_seconds``,
    modelling a slow model burning the request's budget without any real
    time passing.
    """

    def __init__(self, fail_every: int = 0, stall_every: int = 0,
                 stall_seconds: float = 0.2, clock: VirtualClock | None = None):
        self.fail_every = fail_every
        self.stall_every = stall_every
        self.stall_seconds = stall_seconds
        self.clock = clock
        self.calls = 0

    def recommend(self, session_items, how_many=21):
        self.calls += 1
        if self.fail_every and self.calls % self.fail_every == 0:
            raise RuntimeError("injected model failure")
        if self.stall_every and self.calls % self.stall_every == 0:
            assert self.clock is not None, "stalling needs the virtual clock"
            self.clock.advance(self.stall_seconds)
        return [ScoredItem(1000 + i, 1.0 / (i + 1)) for i in range(how_many)]

    def recommend_batch(self, sessions, how_many=21):
        return [self.recommend(s, how_many) for s in sessions]


class AlwaysFailing:
    def recommend(self, session_items, how_many=21):
        raise RuntimeError("dead model")

    def recommend_batch(self, sessions, how_many=21):
        raise RuntimeError("dead model")


def make_chain(primary, clock=None, reserve_ms=8.0, policy=None):
    policy = policy or ResiliencePolicy(fallback_reserve_ms=reserve_ms)
    clock = clock or VirtualClock()
    fallback = StaticRecommender([ScoredItem(i, 1.0 - i / 100) for i in range(50)])
    terminal = StaticRecommender([ScoredItem(200 + i, 0.5) for i in range(50)])
    return FallbackChain(
        stages=[
            FallbackStage("primary", primary, CircuitBreaker.from_policy(policy, clock)),
            FallbackStage("popularity", fallback, CircuitBreaker.from_policy(policy, clock)),
        ],
        terminal=terminal,
        reserve_seconds=policy.fallback_reserve_ms / 1000.0,
        stage_workers=policy.stage_workers,
        clock=clock,
        inline_stages=True,
    )


class TestDeadline:
    def test_counts_down_on_injected_clock(self):
        clock = VirtualClock()
        deadline = Deadline(0.050, clock=clock)
        assert deadline.remaining() == pytest.approx(0.050)
        assert not deadline.expired
        clock.advance(0.030)
        assert deadline.remaining() == pytest.approx(0.020)
        clock.advance(0.030)
        assert deadline.expired
        assert deadline.remaining() == 0.0  # never negative
        assert deadline.elapsed() == pytest.approx(0.060)

    def test_after_ms_and_budget(self):
        clock = VirtualClock()
        deadline = Deadline.after_ms(50, clock=clock)
        assert deadline.budget_seconds == pytest.approx(0.050)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-0.001)

    def test_zero_budget_starts_expired(self):
        assert Deadline(0.0, clock=VirtualClock()).expired


class TestCircuitBreaker:
    def make(self, clock, threshold=0.5, window=10, min_calls=4, probe=5.0):
        return CircuitBreaker(
            failure_threshold=threshold, window=window,
            min_calls=min_calls, probe_seconds=probe, clock=clock,
        )

    def test_full_lifecycle_closed_open_half_open_closed(self):
        clock = VirtualClock()
        breaker = self.make(clock)
        assert breaker.state is BreakerState.CLOSED
        # Failures below min_calls do not trip.
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        # The 4th failure reaches min_calls at 100% failure rate: OPEN.
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        # While open, calls are short-circuited.
        assert not breaker.allow()
        assert breaker.short_circuits == 1
        # After the cool-down: HALF_OPEN, exactly one probe allowed.
        clock.advance(5.0)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()
        assert not breaker.allow()  # second concurrent probe rejected
        # Probe succeeds: CLOSED again with a clean window.
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = VirtualClock()
        breaker = self.make(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()  # the probe
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        # Another full cool-down is required before the next probe.
        clock.advance(5.0)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_cancel_releases_probe_slot_without_outcome(self):
        clock = VirtualClock()
        breaker = self.make(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.cancel()  # probe never ran (budget died first)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()  # slot is free again

    def test_failure_rate_threshold_mixes_successes(self):
        clock = VirtualClock()
        breaker = self.make(clock, threshold=0.5, window=4, min_calls=4)
        breaker.record_success()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED  # 1/3 < 0.5
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN  # 2/4 >= 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(window=0)


class TestStaticRecommender:
    def test_excludes_session_items(self):
        ranked = [ScoredItem(i, 1.0 - i / 10) for i in range(5)]
        static = StaticRecommender(ranked)
        assert [s.item_id for s in static.recommend([], how_many=3)] == [0, 1, 2]
        assert [s.item_id for s in static.recommend([0, 2], how_many=3)] == [1, 3, 4]

    def test_popularity_from_index_ranks_by_frequency(self, toy_index):
        popularity = popularity_from_index(toy_index)
        items = [s.item_id for s in popularity.recommend([], how_many=3)]
        # Item 2 appears in 4 toy sessions — the most popular.
        assert items[0] == 2
        scores = [s.score for s in popularity.recommend([], how_many=10)]
        assert scores == sorted(scores, reverse=True)


class TestFallbackChain:
    def test_healthy_primary_serves_undegraded(self):
        clock = VirtualClock()
        chain = make_chain(FlakyRecommender(), clock=clock)
        outcome = chain.run([1, 2], 10, Deadline(0.5, clock=clock))
        assert outcome.stage == "primary"
        assert not outcome.degraded
        assert len(outcome.items) == 10
        chain.close()

    def test_raising_primary_falls_back(self):
        clock = VirtualClock()
        chain = make_chain(FlakyRecommender(fail_every=1), clock=clock)
        outcome = chain.run([1, 2], 10, Deadline(0.5, clock=clock))
        assert outcome.stage == "popularity"
        assert outcome.degraded
        assert outcome.errors == 1
        assert outcome.items
        chain.close()

    def test_exhausted_budget_serves_terminal_inline(self):
        clock = VirtualClock()
        chain = make_chain(FlakyRecommender(), clock=clock)
        # Deadline on the same virtual clock, already expired.
        outcome = chain.run([1, 2], 10, Deadline(0.0, clock=clock))
        assert outcome.stage == "static-rules"
        assert outcome.degraded
        assert outcome.deadline_exceeded
        assert outcome.items  # the terminal always answers
        chain.close()

    def test_stalling_primary_times_out_and_falls_back(self):
        clock = VirtualClock()
        # Every call stalls 200 ms against a 50 ms budget.
        primary = FlakyRecommender(stall_every=1, stall_seconds=0.2, clock=clock)
        chain = make_chain(primary, clock=clock)
        outcome = chain.run([1, 2], 10, Deadline(0.050, clock=clock))
        # The stage ran (inline stages cannot be abandoned mid-call) but
        # its result was discarded as over-deadline; no budget remained
        # for the popularity stage, so the terminal answered.
        assert primary.calls == 1
        assert chain.stages[0].timeouts == 1
        assert outcome.stage == "static-rules"
        assert outcome.deadline_exceeded
        assert outcome.items
        chain.close()

    def test_all_stages_failing_still_answers(self):
        clock = VirtualClock()
        chain = make_chain(AlwaysFailing(), clock=clock)
        chain.stages[1] = FallbackStage(
            "popularity", AlwaysFailing(),
            CircuitBreaker(min_calls=100, clock=clock),
        )
        outcome = chain.run([1], 5, Deadline(0.5, clock=clock))
        assert outcome.stage == "static-rules"
        assert outcome.errors == 2
        assert outcome.items
        chain.close()

    def test_tripped_breaker_skips_primary_without_calling_it(self):
        clock = VirtualClock()
        primary = AlwaysFailing()
        policy = ResiliencePolicy(breaker_window=10, breaker_min_calls=3)
        chain = make_chain(primary, clock=clock, policy=policy)
        for _ in range(3):
            chain.run([1], 5, Deadline(0.5, clock=clock))
        assert chain.breaker_states()["primary"] is BreakerState.OPEN
        calls_before = chain.stages[0].calls
        outcome = chain.run([1], 5, Deadline(0.5, clock=clock))
        assert outcome.stage == "popularity"
        assert chain.stages[0].calls == calls_before  # short-circuited
        assert chain.stages[0].breaker.short_circuits >= 1
        chain.close()

    def test_breaker_recovers_after_virtual_cooldown(self):
        clock = VirtualClock()
        primary = FlakyRecommender(clock=clock)
        policy = ResiliencePolicy(breaker_min_calls=2, breaker_window=4,
                                  breaker_probe_seconds=5.0)
        chain = make_chain(primary, clock=clock, policy=policy)
        # Trip the breaker with a temporarily dead primary.
        chain.stages[0].recommender = AlwaysFailing()
        for _ in range(2):
            chain.run([1], 5, Deadline(0.5, clock=clock))
        assert chain.breaker_states()["primary"] is BreakerState.OPEN
        # Heal the model and let the cool-down elapse virtually.
        chain.stages[0].recommender = primary
        clock.advance(policy.breaker_probe_seconds)
        outcome = chain.run([1], 5, Deadline(0.5, clock=clock))
        assert outcome.stage == "primary"  # the half-open probe succeeded
        assert chain.breaker_states()["primary"] is BreakerState.CLOSED
        chain.close()

    def test_requires_at_least_one_stage(self):
        with pytest.raises(ValueError):
            FallbackChain([], terminal=StaticRecommender())


@pytest.mark.chaos
class TestDeadlineEnforcement:
    """A primary stalling 200 ms on every 5th call must never push a
    request past the 50 ms budget. On the virtual clock the outcome is
    exact: healthy calls consume zero budget, stalled calls consume
    exactly 200 ms and are served by a fallback inside the budget."""

    def test_slow_primary_never_breaks_the_sla(self):
        clock = VirtualClock()
        primary = FlakyRecommender(stall_every=5, stall_seconds=0.2, clock=clock)
        policy = ResiliencePolicy(
            budget_ms=50.0, fallback_reserve_ms=10.0,
            # Keep the breaker out of the way: this test isolates deadlines.
            breaker_failure_threshold=1.0, breaker_min_calls=1000,
        )
        chain = make_chain(primary, clock=clock, policy=policy)
        recommender = ResilientRecommender(chain, policy, clock=clock)
        elapsed: list[float] = []
        degraded = 0
        for _ in range(25):
            started = clock.now
            items = recommender.recommend([1, 2, 3], how_many=10)
            elapsed.append(clock.now - started)
            assert items  # always an answer
            outcome = recommender.last_outcome()
            if outcome.degraded:
                degraded += 1
        # Healthy calls advance the clock by exactly nothing; stalled
        # calls by the stall (up to float error in the running sum).
        assert elapsed.count(0.0) == 20
        stalls = [e for e in elapsed if e != 0.0]
        assert len(stalls) == 5
        assert stalls == pytest.approx([0.2] * 5)
        assert degraded == 5  # every 5th call stalled and was degraded
        info = recommender.info()
        assert info["deadline_timeouts"] == 5
        assert info["served_by_stage"]["primary"] == 20
        assert info["served_by_stage"]["static-rules"] == 5
        recommender.close()

    def test_same_seedless_run_is_bit_identical(self):
        """The whole scenario is a pure function: replaying it yields the
        same counters, stage decisions and virtual timestamps."""
        def run_once():
            clock = VirtualClock()
            primary = FlakyRecommender(stall_every=3, stall_seconds=0.08,
                                       clock=clock)
            policy = ResiliencePolicy(budget_ms=50.0, fallback_reserve_ms=10.0)
            chain = make_chain(primary, clock=clock, policy=policy)
            recommender = ResilientRecommender(chain, policy, clock=clock)
            trace = []
            for _ in range(12):
                recommender.recommend([1, 2], how_many=5)
                outcome = recommender.last_outcome()
                trace.append((outcome.stage, outcome.deadline_exceeded,
                              clock.now))
            info = recommender.info()
            recommender.close()
            return trace, info

        first_trace, first_info = run_once()
        second_trace, second_info = run_once()
        assert first_trace == second_trace
        assert first_info == second_info


class TestResilientRecommender:
    def test_satisfies_recommender_protocol(self):
        from repro.core.predictor import SessionRecommender

        chain = make_chain(FlakyRecommender())
        recommender = ResilientRecommender(chain)
        assert isinstance(recommender, SessionRecommender)
        batches = recommender.recommend_batch([[1], [2]], how_many=5)
        assert len(batches) == 2
        recommender.close()

    def test_counters_and_last_outcome(self):
        chain = make_chain(FlakyRecommender(fail_every=2))
        recommender = ResilientRecommender(chain)
        recommender.recommend([1])   # primary ok
        recommender.recommend([1])   # primary raises -> popularity
        outcome = recommender.last_outcome()
        assert outcome.stage == "popularity" and outcome.degraded
        info = recommender.info()
        assert info["requests"] == 2
        assert info["degraded_requests"] == 1
        assert info["stage_errors"] == 1
        assert info["served_by_stage"] == {"primary": 1, "popularity": 1}
        recommender.close()

    def test_from_index_chain(self, toy_index):
        chain = FallbackChain.from_index(AlwaysFailing(), toy_index)
        recommender = ResilientRecommender(chain)
        items = recommender.recommend([1], how_many=3)
        assert items  # popularity fallback answered
        assert recommender.last_outcome().stage == "popularity"
        recommender.close()


class TestAdmissionController:
    def test_sheds_oldest_first(self):
        clock = VirtualClock()
        admission = AdmissionController(capacity=2, clock=clock)
        first = admission.submit("s1")
        clock.advance(0.01)
        second = admission.submit("s2")
        clock.advance(0.01)
        third = admission.submit("s3")  # over capacity: s1 is shed
        assert first.shed
        assert not second.shed and not third.shed
        assert admission.shed_count == 1
        assert admission.inflight == 2

    def test_release_frees_capacity(self):
        admission = AdmissionController(capacity=1)
        token = admission.submit("a")
        admission.release(token)
        assert admission.inflight == 0
        fresh = admission.submit("b")
        assert not fresh.shed
        admission.release(token)  # double release is harmless

    def test_info_and_validation(self):
        admission = AdmissionController(capacity=3)
        admission.submit("a")
        info = admission.info()
        assert info["capacity"] == 3 and info["inflight"] == 1
        with pytest.raises(ValueError):
            AdmissionController(capacity=0)

    def test_overloaded_carries_retry_after(self):
        error = Overloaded()
        assert error.retry_after_ms == 100.0
