"""Tests for the SLA guardrail layer: deadlines, breakers, fallbacks, shedding."""

from __future__ import annotations

import time

import pytest

from repro.core.deadline import Deadline
from repro.core.types import ScoredItem
from repro.serving.resilience import (
    AdmissionController,
    BreakerState,
    CircuitBreaker,
    FallbackChain,
    FallbackStage,
    Overloaded,
    ResiliencePolicy,
    ResilientRecommender,
    StaticRecommender,
    popularity_from_index,
)


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FlakyRecommender:
    """Scriptable stage: raises, sleeps, or answers per configured schedule."""

    def __init__(self, fail_every: int = 0, sleep_every: int = 0,
                 sleep_seconds: float = 0.2):
        self.fail_every = fail_every
        self.sleep_every = sleep_every
        self.sleep_seconds = sleep_seconds
        self.calls = 0

    def recommend(self, session_items, how_many=21):
        self.calls += 1
        if self.fail_every and self.calls % self.fail_every == 0:
            raise RuntimeError("injected model failure")
        if self.sleep_every and self.calls % self.sleep_every == 0:
            time.sleep(self.sleep_seconds)
        return [ScoredItem(1000 + i, 1.0 / (i + 1)) for i in range(how_many)]

    def recommend_batch(self, sessions, how_many=21):
        return [self.recommend(s, how_many) for s in sessions]


class AlwaysFailing:
    def recommend(self, session_items, how_many=21):
        raise RuntimeError("dead model")

    def recommend_batch(self, sessions, how_many=21):
        raise RuntimeError("dead model")


def make_chain(primary, clock=None, reserve_ms=8.0, policy=None):
    policy = policy or ResiliencePolicy(fallback_reserve_ms=reserve_ms)
    clock = clock or time.monotonic
    fallback = StaticRecommender([ScoredItem(i, 1.0 - i / 100) for i in range(50)])
    terminal = StaticRecommender([ScoredItem(200 + i, 0.5) for i in range(50)])
    return FallbackChain(
        stages=[
            FallbackStage("primary", primary, CircuitBreaker.from_policy(policy, clock)),
            FallbackStage("popularity", fallback, CircuitBreaker.from_policy(policy, clock)),
        ],
        terminal=terminal,
        reserve_seconds=policy.fallback_reserve_ms / 1000.0,
        stage_workers=policy.stage_workers,
        clock=clock,
    )


class TestDeadline:
    def test_counts_down_on_injected_clock(self):
        clock = FakeClock()
        deadline = Deadline(0.050, clock=clock)
        assert deadline.remaining() == pytest.approx(0.050)
        assert not deadline.expired
        clock.advance(0.030)
        assert deadline.remaining() == pytest.approx(0.020)
        clock.advance(0.030)
        assert deadline.expired
        assert deadline.remaining() == 0.0  # never negative
        assert deadline.elapsed() == pytest.approx(0.060)

    def test_after_ms_and_budget(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(50, clock=clock)
        assert deadline.budget_seconds == pytest.approx(0.050)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-0.001)

    def test_zero_budget_starts_expired(self):
        assert Deadline(0.0, clock=FakeClock()).expired


class TestCircuitBreaker:
    def make(self, clock, threshold=0.5, window=10, min_calls=4, probe=5.0):
        return CircuitBreaker(
            failure_threshold=threshold, window=window,
            min_calls=min_calls, probe_seconds=probe, clock=clock,
        )

    def test_full_lifecycle_closed_open_half_open_closed(self):
        clock = FakeClock()
        breaker = self.make(clock)
        assert breaker.state is BreakerState.CLOSED
        # Failures below min_calls do not trip.
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        # The 4th failure reaches min_calls at 100% failure rate: OPEN.
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        # While open, calls are short-circuited.
        assert not breaker.allow()
        assert breaker.short_circuits == 1
        # After the cool-down: HALF_OPEN, exactly one probe allowed.
        clock.advance(5.0)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()
        assert not breaker.allow()  # second concurrent probe rejected
        # Probe succeeds: CLOSED again with a clean window.
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()  # the probe
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        # Another full cool-down is required before the next probe.
        clock.advance(5.0)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_cancel_releases_probe_slot_without_outcome(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.cancel()  # probe never ran (budget died first)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()  # slot is free again

    def test_failure_rate_threshold_mixes_successes(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=0.5, window=4, min_calls=4)
        breaker.record_success()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED  # 1/3 < 0.5
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN  # 2/4 >= 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(window=0)


class TestStaticRecommender:
    def test_excludes_session_items(self):
        ranked = [ScoredItem(i, 1.0 - i / 10) for i in range(5)]
        static = StaticRecommender(ranked)
        assert [s.item_id for s in static.recommend([], how_many=3)] == [0, 1, 2]
        assert [s.item_id for s in static.recommend([0, 2], how_many=3)] == [1, 3, 4]

    def test_popularity_from_index_ranks_by_frequency(self, toy_index):
        popularity = popularity_from_index(toy_index)
        items = [s.item_id for s in popularity.recommend([], how_many=3)]
        # Item 2 appears in 4 toy sessions — the most popular.
        assert items[0] == 2
        scores = [s.score for s in popularity.recommend([], how_many=10)]
        assert scores == sorted(scores, reverse=True)


class TestFallbackChain:
    def test_healthy_primary_serves_undegraded(self):
        chain = make_chain(FlakyRecommender())
        outcome = chain.run([1, 2], 10, Deadline(0.5))
        assert outcome.stage == "primary"
        assert not outcome.degraded
        assert len(outcome.items) == 10
        chain.close()

    def test_raising_primary_falls_back(self):
        chain = make_chain(FlakyRecommender(fail_every=1))
        outcome = chain.run([1, 2], 10, Deadline(0.5))
        assert outcome.stage == "popularity"
        assert outcome.degraded
        assert outcome.errors == 1
        assert outcome.items
        chain.close()

    def test_exhausted_budget_serves_terminal_inline(self):
        clock = FakeClock()
        chain = make_chain(FlakyRecommender(), clock=clock)
        # Deadline on the same fake clock, already expired.
        outcome = chain.run([1, 2], 10, Deadline(0.0, clock=clock))
        assert outcome.stage == "static-rules"
        assert outcome.degraded
        assert outcome.deadline_exceeded
        assert outcome.items  # the terminal always answers
        chain.close()

    def test_all_stages_failing_still_answers(self):
        chain = make_chain(AlwaysFailing())
        chain.stages[1] = FallbackStage(
            "popularity", AlwaysFailing(),
            CircuitBreaker(min_calls=100),
        )
        outcome = chain.run([1], 5, Deadline(0.5))
        assert outcome.stage == "static-rules"
        assert outcome.errors == 2
        assert outcome.items
        chain.close()

    def test_tripped_breaker_skips_primary_without_calling_it(self):
        primary = AlwaysFailing()
        policy = ResiliencePolicy(breaker_window=10, breaker_min_calls=3)
        chain = make_chain(primary, policy=policy)
        for _ in range(3):
            chain.run([1], 5, Deadline(0.5))
        assert chain.breaker_states()["primary"] is BreakerState.OPEN
        calls_before = chain.stages[0].calls
        outcome = chain.run([1], 5, Deadline(0.5))
        assert outcome.stage == "popularity"
        assert chain.stages[0].calls == calls_before  # short-circuited
        assert chain.stages[0].breaker.short_circuits >= 1
        chain.close()

    def test_requires_at_least_one_stage(self):
        with pytest.raises(ValueError):
            FallbackChain([], terminal=StaticRecommender())


@pytest.mark.chaos
class TestDeadlineEnforcement:
    """ISSUE acceptance: a primary stalling 200 ms on 20% of calls must
    never push a request past the 50 ms budget — the stage is abandoned at
    its timeout and a fallback answers inside the budget."""

    def test_slow_primary_never_breaks_the_sla(self):
        primary = FlakyRecommender(sleep_every=5, sleep_seconds=0.2)
        policy = ResiliencePolicy(
            budget_ms=50.0, fallback_reserve_ms=10.0,
            # Keep the breaker out of the way: this test isolates deadlines.
            breaker_failure_threshold=1.0, breaker_min_calls=1000,
        )
        chain = make_chain(primary, policy=policy)
        recommender = ResilientRecommender(chain, policy)
        recommender.recommend([1, 2])  # warm the worker pool
        elapsed: list[float] = []
        degraded = 0
        for _ in range(25):
            started = time.monotonic()
            items = recommender.recommend([1, 2, 3], how_many=10)
            elapsed.append(time.monotonic() - started)
            assert items  # always an answer
            outcome = recommender.last_outcome()
            if outcome.degraded:
                degraded += 1
        assert max(elapsed) < 0.050, f"SLA breach: max {max(elapsed) * 1e3:.1f}ms"
        assert degraded >= 5  # every 5th call stalled and was degraded
        info = recommender.info()
        assert info["deadline_timeouts"] >= 5
        assert info["served_by_stage"]["primary"] >= 15
        recommender.close()


class TestResilientRecommender:
    def test_satisfies_recommender_protocol(self):
        from repro.core.predictor import SessionRecommender

        chain = make_chain(FlakyRecommender())
        recommender = ResilientRecommender(chain)
        assert isinstance(recommender, SessionRecommender)
        batches = recommender.recommend_batch([[1], [2]], how_many=5)
        assert len(batches) == 2
        recommender.close()

    def test_counters_and_last_outcome(self):
        chain = make_chain(FlakyRecommender(fail_every=2))
        recommender = ResilientRecommender(chain)
        recommender.recommend([1])   # primary ok
        recommender.recommend([1])   # primary raises -> popularity
        outcome = recommender.last_outcome()
        assert outcome.stage == "popularity" and outcome.degraded
        info = recommender.info()
        assert info["requests"] == 2
        assert info["degraded_requests"] == 1
        assert info["stage_errors"] == 1
        assert info["served_by_stage"] == {"primary": 1, "popularity": 1}
        recommender.close()

    def test_from_index_chain(self, toy_index):
        chain = FallbackChain.from_index(AlwaysFailing(), toy_index)
        recommender = ResilientRecommender(chain)
        items = recommender.recommend([1], how_many=3)
        assert items  # popularity fallback answered
        assert recommender.last_outcome().stage == "popularity"
        recommender.close()


class TestAdmissionController:
    def test_sheds_oldest_first(self):
        clock = FakeClock()
        admission = AdmissionController(capacity=2, clock=clock)
        first = admission.submit("s1")
        clock.advance(0.01)
        second = admission.submit("s2")
        clock.advance(0.01)
        third = admission.submit("s3")  # over capacity: s1 is shed
        assert first.shed
        assert not second.shed and not third.shed
        assert admission.shed_count == 1
        assert admission.inflight == 2

    def test_release_frees_capacity(self):
        admission = AdmissionController(capacity=1)
        token = admission.submit("a")
        admission.release(token)
        assert admission.inflight == 0
        fresh = admission.submit("b")
        assert not fresh.shed
        admission.release(token)  # double release is harmless

    def test_info_and_validation(self):
        admission = AdmissionController(capacity=3)
        admission.submit("a")
        info = admission.info()
        assert info["capacity"] == 3 and info["inflight"] == 1
        with pytest.raises(ValueError):
            AdmissionController(capacity=0)

    def test_overloaded_carries_retry_after(self):
        error = Overloaded()
        assert error.retry_after_ms == 100.0
