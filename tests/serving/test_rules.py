"""Tests for the business-rule engine."""

from __future__ import annotations

from repro.core.types import ScoredItem
from repro.serving.rules import (
    BusinessRules,
    exclude_adult,
    exclude_seen_in_session,
    exclude_unavailable,
)


def scored(*item_ids):
    return [ScoredItem(i, 10.0 - n) for n, i in enumerate(item_ids)]


class TestIndividualRules:
    def test_exclude_unavailable(self):
        rule = exclude_unavailable({2, 4})
        assert rule(ScoredItem(1, 1.0), []) is True
        assert rule(ScoredItem(2, 1.0), []) is False

    def test_exclude_adult(self):
        rule = exclude_adult([7])
        assert rule(ScoredItem(7, 1.0), []) is False
        assert rule(ScoredItem(8, 1.0), []) is True

    def test_exclude_seen_in_session(self):
        assert exclude_seen_in_session(ScoredItem(5, 1.0), [5, 6]) is False
        assert exclude_seen_in_session(ScoredItem(4, 1.0), [5, 6]) is True


class TestBusinessRules:
    def test_empty_ruleset_only_truncates(self):
        rules = BusinessRules()
        assert rules.apply(scored(1, 2, 3), [], how_many=2) == scored(1, 2, 3)[:2]

    def test_conjunction_of_rules(self):
        rules = BusinessRules(
            [exclude_unavailable({1}), exclude_adult({2}), exclude_seen_in_session]
        )
        result = rules.apply(scored(1, 2, 3, 4), [3], how_many=10)
        assert [s.item_id for s in result] == [4]

    def test_order_preserved(self):
        rules = BusinessRules([exclude_unavailable({2})])
        result = rules.apply(scored(5, 2, 1, 9), [], how_many=10)
        assert [s.item_id for s in result] == [5, 1, 9]

    def test_add_chains(self):
        rules = BusinessRules().add(exclude_unavailable({1})).add(exclude_adult({2}))
        assert len(rules) == 2

    def test_truncation_after_filtering(self):
        rules = BusinessRules([exclude_unavailable({1, 2})])
        result = rules.apply(scored(1, 2, 3, 4, 5), [], how_many=2)
        assert [s.item_id for s in result] == [3, 4]
