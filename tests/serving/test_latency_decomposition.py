"""Tests for the request-time decomposition (the colocation argument)."""

from __future__ import annotations

import pytest

from repro.core.index import SessionIndex
from repro.core.vmis import VMISKNN
from repro.serving.server import RecommendationRequest, RecommendationServer


class TestLatencyDecomposition:
    def test_store_and_predict_times_accumulate(self, toy_index):
        server = RecommendationServer(
            "pod", VMISKNN(toy_index, m=10, k=10)
        )
        for item in (1, 2, 4):
            server.handle(RecommendationRequest("u", item))
        assert server.stats.store_seconds > 0
        assert server.stats.predict_seconds > 0
        assert (
            server.stats.store_seconds + server.stats.predict_seconds
            <= server.stats.busy_seconds + 1e-6
        )

    def test_local_store_is_a_small_fraction_of_prediction(self, medium_log):
        """§4.2: with colocated state, session access is microseconds and
        prediction dominates the request — the design's whole point."""
        index = SessionIndex.from_clicks(medium_log, max_sessions_per_item=200)
        server = RecommendationServer("pod", VMISKNN(index, m=200, k=100))
        sequences = list(medium_log.session_item_sequences().values())[:50]
        for number, sequence in enumerate(sequences):
            for item in sequence:
                server.handle(RecommendationRequest(f"user-{number}", item))
        stats = server.stats
        assert stats.requests > 100
        # Local KV access must be well under half of the compute time.
        assert stats.store_seconds < 0.5 * stats.predict_seconds


class TestSessionCap:
    def test_capped_model_uses_recent_suffix_only(self, toy_index):
        capped = VMISKNN(toy_index, m=10, k=10, max_session_items=2)
        full = VMISKNN(toy_index, m=10, k=10)
        long_session = [3] * 8 + [1, 2]
        assert capped.find_neighbors(long_session) == full.find_neighbors([1, 2])
        assert capped.recommend(long_session, 5) == full.recommend([1, 2], 5)

    def test_cap_validation(self, toy_index):
        with pytest.raises(ValueError):
            VMISKNN(toy_index, max_session_items=0)

    def test_no_cap_by_default(self, toy_index):
        model = VMISKNN(toy_index, m=10, k=10)
        assert model.max_session_items is None
