"""SessionStore replication-tail tests: the at-least-once apply matrix.

Mirrors the streaming suite's delivery-edge-case matrix for the
leader→follower tail-shipping path: duplicate delivery at the acked
offset boundary (idempotent re-apply), TTL-expired entries arriving in a
shipped tail (dropped), a torn final record (truncated, re-ships later),
ownership filtering, snapshot rebase resync, and delete propagation.
"""

from __future__ import annotations

from repro.serving.session_store import SessionStore, TailApplyReport
from repro.testing.clock import VirtualClock


def make_store(clock: VirtualClock, **kwargs) -> SessionStore:
    return SessionStore(ttl_seconds=60.0, clock=clock, replicate=True, **kwargs)


def make_pair(clock: VirtualClock) -> tuple[SessionStore, SessionStore]:
    return make_store(clock), make_store(clock)


class TestTailShipping:
    def test_tail_replicates_appends(self):
        clock = VirtualClock()
        leader, follower = make_pair(clock)
        leader.append_click("s1", 10)
        leader.append_click("s1", 11)
        leader.append_click("s2", 20)
        report = follower.apply_tail(leader.tail_bytes(0))
        assert report.applied == 3
        assert not report.torn
        assert follower.as_dict() == leader.as_dict()

    def test_offset_advances_monotonically(self):
        clock = VirtualClock()
        leader = make_store(clock)
        assert leader.replication_offset == 0
        leader.append_click("s", 1)
        first = leader.replication_offset
        assert first > 0
        leader.append_click("s", 2)
        assert leader.replication_offset > first
        assert leader.tail_bytes(leader.replication_offset) == b""

    def test_incremental_tail_since_acked_offset(self):
        clock = VirtualClock()
        leader, follower = make_pair(clock)
        leader.append_click("s", 1)
        follower.apply_tail(leader.tail_bytes(0))
        acked = leader.replication_offset
        leader.append_click("s", 2)
        report = follower.apply_tail(leader.tail_bytes(acked))
        assert report.applied == 1
        assert follower.get_session("s") == [1, 2]

    def test_delete_propagates(self):
        clock = VirtualClock()
        leader, follower = make_pair(clock)
        leader.append_click("gone", 1)
        follower.apply_tail(leader.tail_bytes(0))
        acked = leader.replication_offset
        leader.drop_session("gone")
        follower.apply_tail(leader.tail_bytes(acked))
        assert follower.get_session("gone") is None


class TestApplyEdgeCases:
    """The failover matrix the ISSUE names explicitly."""

    def test_duplicate_apply_at_offset_boundary_is_idempotent(self):
        """Re-shipping from an older offset (ack lost in failover) must
        re-apply cleanly: records are full-value puts."""
        clock = VirtualClock()
        leader, follower = make_pair(clock)
        leader.append_click("s", 1)
        leader.append_click("s", 2)
        follower.apply_tail(leader.tail_bytes(0))
        before = follower.as_dict()
        # The whole range again, then a strict suffix again: both no-ops
        # in effect, not errors.
        follower.apply_tail(leader.tail_bytes(0))
        assert follower.as_dict() == before
        leader.append_click("s", 3)
        follower.apply_tail(leader.tail_bytes(0))
        assert follower.get_session("s") == [1, 2, 3]

    def test_ttl_expired_entries_in_shipped_tail_dropped(self):
        """A session that died of inactivity while the tail was in
        flight must not be resurrected on the follower."""
        clock = VirtualClock()
        leader, follower = make_pair(clock)
        leader.append_click("stale", 1)
        tail = leader.tail_bytes(0)
        clock.advance(61.0)  # past the 60 s TTL
        leader.append_click("fresh", 2)
        report = follower.apply_tail(tail + leader.tail_bytes(len(tail)))
        assert report.expired_dropped == 1
        assert report.applied == 1
        assert follower.get_session("stale") is None
        assert follower.get_session("fresh") == [2]

    def test_torn_final_record_truncated(self):
        """A mid-record cut (the ship died mid-write) applies the intact
        prefix and flags the torn suffix for the next round."""
        clock = VirtualClock()
        leader, follower = make_pair(clock)
        leader.append_click("a", 1)
        leader.append_click("b", 2)
        tail = leader.tail_bytes(0)
        report = follower.apply_tail(tail[:-3])
        assert report.torn
        assert report.applied == 1
        assert follower.get_session("a") == [1]
        assert follower.get_session("b") is None
        # The full range later (re-ship from the still-acked offset)
        # completes the transfer.
        follower.apply_tail(tail)
        assert follower.get_session("b") == [2]

    def test_key_filter_skips_foreign_keys(self):
        """Per-pod logs interleave many shards; a follower applies only
        the keys it owns on the ring."""
        clock = VirtualClock()
        leader, follower = make_pair(clock)
        leader.append_click("mine", 1)
        leader.append_click("theirs", 2)
        report = follower.apply_tail(
            leader.tail_bytes(0), key_filter=lambda key: key == "mine"
        )
        assert report.applied == 1
        assert report.filtered == 1
        assert follower.get_session("mine") == [1]
        assert follower.get_session("theirs") is None

    def test_max_items_cap_respected_via_put_session(self):
        clock = VirtualClock()
        store = SessionStore(
            ttl_seconds=60.0, max_items=3, clock=clock, replicate=True
        )
        kept = store.put_session("s", [1, 2, 3, 4, 5])
        assert kept == [3, 4, 5]
        assert store.get_session("s") == [3, 4, 5]


class TestSnapshotRebase:
    def test_snapshot_rebases_log_and_serves_full_resync(self):
        clock = VirtualClock()
        leader = make_store(clock)
        leader.append_click("s1", 1)
        leader.drop_session("s1")
        leader.append_click("s2", 2)
        head = leader.replication_offset
        leader.snapshot()
        # The head offset survives the rebase; in-sync followers see an
        # empty tail, lagging ones get snapshot + log (full resync).
        assert leader.replication_offset == head
        assert leader.tail_bytes(head) == b""
        fresh = make_store(clock)
        report = fresh.apply_tail(leader.tail_bytes(0))
        assert report.applied >= 1
        assert fresh.as_dict() == leader.as_dict()
        assert fresh.get_session("s1") is None

    def test_post_snapshot_appends_still_ship(self):
        clock = VirtualClock()
        leader, follower = make_pair(clock)
        leader.append_click("s", 1)
        leader.snapshot()
        leader.append_click("s", 2)
        follower.apply_tail(leader.tail_bytes(0))
        assert follower.get_session("s") == [1, 2]


class TestPromotedFollowerReships:
    def test_applied_records_mirror_into_own_log(self):
        """A promoted follower must be able to tail-ship what it applied
        — the chain leader → follower → next follower."""
        clock = VirtualClock()
        leader, follower = make_pair(clock)
        third = make_store(clock)
        leader.append_click("s", 1)
        leader.append_click("s", 2)
        follower.apply_tail(leader.tail_bytes(0))
        assert follower.replication_offset > 0
        third.apply_tail(follower.tail_bytes(0))
        assert third.get_session("s") == [1, 2]


class TestReportDefaults:
    def test_fresh_report_is_empty(self):
        report = TailApplyReport()
        assert (report.applied, report.expired_dropped, report.filtered) == (0, 0, 0)
        assert not report.torn

    def test_non_replicating_store_has_empty_tail(self):
        clock = VirtualClock()
        store = SessionStore(ttl_seconds=60.0, clock=clock)
        store.append_click("s", 1)
        assert store.replication_offset == 0
        assert store.tail_bytes(0) == b""
