"""Tests for the REST serving application."""

from __future__ import annotations

import json
import re
import urllib.error
import urllib.request

import pytest

from repro.serving.app import ServingCluster
from repro.serving.http import (
    BadRequest,
    SerenadeHTTPServer,
    SerenadeService,
    parse_batch_payload,
    parse_recommend_payload,
)
from repro.serving.variants import ServingVariant


@pytest.fixture(scope="module")
def cluster(toy_index):
    return ServingCluster.with_index(toy_index, num_pods=2, m=10, k=10)


@pytest.fixture(scope="module")
def server(cluster):
    with SerenadeHTTPServer(cluster, port=0) as running:
        yield running


def post_json(server, path, payload):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=5) as response:
        return response.status, json.load(response)


def get(server, path):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{server.port}{path}", timeout=5
    ) as response:
        return response.status, response.read().decode("utf-8")


class TestPayloadParsing:
    def test_valid_payload(self):
        request = parse_recommend_payload(
            {"session_id": "u", "item_id": 3, "variant": "serenade-recent"}
        )
        assert request.session_key == "u"
        assert request.item_id == 3
        assert request.variant is ServingVariant.RECENT
        assert request.how_many == 21

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"session_id": "", "item_id": 1},
            {"session_id": "u"},
            {"session_id": "u", "item_id": "one"},
            {"session_id": "u", "item_id": True},
            {"session_id": "u", "item_id": 1, "consent": "yes"},
            {"session_id": "u", "item_id": 1, "variant": "bogus"},
            {"session_id": "u", "item_id": 1, "count": 0},
            {"session_id": "u", "item_id": 1, "count": 1000},
            [1, 2, 3],
        ],
    )
    def test_invalid_payloads_rejected(self, payload):
        with pytest.raises(BadRequest):
            parse_recommend_payload(payload)


class TestBatchPayloadParsing:
    def test_valid_payload(self):
        sessions, count = parse_batch_payload(
            {"sessions": [[1, 2], [], [3]], "count": 5}
        )
        assert sessions == [[1, 2], [], [3]]
        assert count == 5

    def test_count_defaults_to_21(self):
        _, count = parse_batch_payload({"sessions": []})
        assert count == 21

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"sessions": "nope"},
            {"sessions": [1, 2]},
            {"sessions": [["a"]]},
            {"sessions": [[True]]},
            {"sessions": [[1]], "count": 0},
            {"sessions": [[1]], "count": 1000},
            [1, 2],
        ],
    )
    def test_invalid_payloads_rejected(self, payload):
        with pytest.raises(BadRequest):
            parse_batch_payload(payload)

    def test_oversized_batch_rejected(self):
        with pytest.raises(BadRequest, match="10000"):
            parse_batch_payload({"sessions": [[1]] * 10_001})


class TestEndpoints:
    def test_healthz(self, server):
        status, body = get(server, "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["pods"] == ["pod-0", "pod-1"]

    def test_recommend_roundtrip(self, server):
        status, body = post_json(
            server, "/v1/recommend", {"session_id": "http-u1", "item_id": 1}
        )
        assert status == 200
        assert body["pod"] in {"pod-0", "pod-1"}
        assert body["latency_ms"] > 0
        for item in body["items"]:
            assert set(item) == {"item_id", "score"}

    def test_session_state_accumulates_over_http(self, server, cluster):
        for item in (1, 2):
            post_json(
                server, "/v1/recommend", {"session_id": "http-u2", "item_id": item}
            )
        owner = cluster.router.route("http-u2")
        assert cluster.pods[owner].sessions.get_session("http-u2") == [1, 2]

    def test_bad_json_is_400(self, server):
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/v1/recommend",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400

    def test_validation_error_is_400_with_message(self, server):
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/v1/recommend",
            data=json.dumps({"session_id": "u", "item_id": "x"}).encode(),
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400
        assert "item_id" in json.load(excinfo.value)["error"]

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/nope", timeout=5
            )
        assert excinfo.value.code == 404

    def test_metrics_exposition(self, server):
        post_json(server, "/v1/recommend", {"session_id": "m-u", "item_id": 2})
        status, text = get(server, "/metrics")
        assert status == 200
        assert "serenade_requests_total" in text
        assert "serenade_request_latency_seconds_bucket" in text

    def test_recommend_batch_roundtrip(self, server, cluster):
        sessions = [[1, 2], [2], [1, 2]]
        status, body = post_json(
            server, "/v1/recommend_batch", {"sessions": sessions, "count": 5}
        )
        assert status == 200
        assert len(body["results"]) == 3
        assert body["results"][0] == body["results"][2]  # duplicate query
        assert body["latency_ms"] > 0
        assert set(body["cache"]) == {"hits", "hit_rate"}
        for ranked in body["results"]:
            for item in ranked:
                assert set(item) == {"item_id", "score"}

    def test_recommend_batch_matches_single_path(self, server, cluster):
        _, body = post_json(
            server, "/v1/recommend_batch", {"sessions": [[1, 2]], "count": 5}
        )
        engine = cluster.batch_engine()
        expected = engine.recommend([1, 2], how_many=5)
        assert body["results"][0] == [
            {"item_id": scored.item_id, "score": scored.score}
            for scored in expected
        ]

    def test_recommend_batch_repeat_hits_cache(self, server):
        sessions = [[2, 4], [4, 5]]
        post_json(server, "/v1/recommend_batch", {"sessions": sessions})
        _, body = post_json(
            server, "/v1/recommend_batch", {"sessions": sessions}
        )
        assert body["cache"]["hits"] >= 2

    def test_recommend_batch_bad_payload_is_400(self, server):
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/v1/recommend_batch",
            data=json.dumps({"sessions": "nope"}).encode(),
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400

    def test_healthz_reports_cache(self, server):
        status, body = get(server, "/healthz")
        health = json.loads(body)
        assert status == 200
        assert "hit_rate" in health["result_cache"]


class TestLifecycleMetrics:
    """Index-lifecycle observability on /metrics and /healthz (ISSUE PR 3)."""

    @pytest.fixture()
    def versioned_cluster(self, toy_index):
        return ServingCluster.with_index(
            toy_index, num_pods=2, m=10, k=10, index_version="v000007"
        )

    def test_metrics_export_index_version_per_pod(self, versioned_cluster):
        service = SerenadeService(versioned_cluster)
        lines = service.render_metrics().splitlines()
        assert 'serenade_index_version{pod="pod-0"} 7' in lines
        assert 'serenade_index_version{pod="pod-1"} 7' in lines
        assert "serenade_rollout_state 0" in lines
        assert "serenade_index_rollbacks_total 0" in lines

    def test_metrics_track_rollout_state_and_rollbacks(self, versioned_cluster):
        service = SerenadeService(versioned_cluster)
        versioned_cluster.rollout_state = "rolled_back"
        versioned_cluster.rollback_count = 2
        lines = service.render_metrics().splitlines()
        assert "serenade_rollout_state 4" in lines
        assert "serenade_index_rollbacks_total 2" in lines
        # counter sync is delta-based: a re-scrape must not double count
        lines = service.render_metrics().splitlines()
        assert "serenade_index_rollbacks_total 2" in lines

    def test_metrics_follow_pod_version_skew(self, versioned_cluster, toy_clicks):
        from repro.core.index import SessionIndex
        from repro.core.vmis import VMISKNN

        service = SerenadeService(versioned_cluster)
        fresh = SessionIndex.from_clicks(toy_clicks, max_sessions_per_item=3)
        versioned_cluster.swap_pod_recommender(
            "pod-1", lambda: VMISKNN(fresh, m=3, k=5), version="v000008"
        )
        lines = service.render_metrics().splitlines()
        assert 'serenade_index_version{pod="pod-0"} 7' in lines
        assert 'serenade_index_version{pod="pod-1"} 8' in lines

    def test_healthz_reports_rollout_info(self, versioned_cluster):
        service = SerenadeService(versioned_cluster)
        health = service.health()
        assert health["index"]["committed_version"] == "v000007"
        assert health["index"]["consistent"] is True
        assert health["index"]["rollout_state"] == "idle"
        assert health["index"]["rollback_count"] == 0


class TestServiceDirect:
    def test_recommend_counts_metrics(self, toy_index):
        service = SerenadeService(
            ServingCluster.with_index(toy_index, num_pods=1, m=10, k=10)
        )
        service.recommend({"session_id": "d", "item_id": 1})
        assert service.metrics.counter("serenade_requests_total").value(
            status="ok"
        ) == 1.0

    def test_double_start_rejected(self, toy_index):
        cluster = ServingCluster.with_index(toy_index, num_pods=1, m=10, k=10)
        server = SerenadeHTTPServer(cluster, port=0)
        server.start()
        try:
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            server.stop()


class TestGuardrailedEndpoints:
    @pytest.fixture()
    def guarded_server(self, toy_index):
        from repro.serving.resilience import ResiliencePolicy

        cluster = ServingCluster.with_index(
            toy_index, num_pods=2, m=10, k=10,
            resilience=ResiliencePolicy(queue_capacity=64),
        )
        with SerenadeHTTPServer(cluster, port=0) as running:
            yield running

    def test_response_reports_stage(self, guarded_server):
        status, body = post_json(
            guarded_server, "/v1/recommend", {"session_id": "g1", "item_id": 1}
        )
        assert status == 200
        assert body["degraded"] is False
        assert body["stage"] == "primary"

    def test_metrics_expose_guardrail_series(self, guarded_server):
        post_json(
            guarded_server, "/v1/recommend", {"session_id": "g2", "item_id": 2}
        )
        status, text = get(guarded_server, "/metrics")
        assert status == 200
        assert "serenade_degraded_requests_total" in text
        assert "serenade_shed_requests_total" in text
        assert "serenade_recovered_sessions_total" in text
        assert "serenade_corrupt_sessions_total" in text
        # Healthy breakers scrape as 0 (closed) per pod and stage.
        assert 'serenade_breaker_state{pod="pod-0",stage="primary"} 0' in text

    def test_healthz_reports_resilience(self, guarded_server):
        status, text = get(guarded_server, "/healthz")
        assert status == 200
        body = json.loads(text)
        assert body["resilience"]["enabled"] is True
        assert body["resilience"]["shed_requests"] == 0

    def test_shed_request_is_429_with_retry_after(self, guarded_server):
        from repro.serving.resilience import Overloaded

        service = guarded_server.service

        def always_overloaded(request):
            raise Overloaded()

        original = service.cluster.handle
        service.cluster.handle = always_overloaded
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post_json(
                    guarded_server,
                    "/v1/recommend",
                    {"session_id": "g3", "item_id": 1},
                )
            error = excinfo.value
            assert error.code == 429
            assert error.headers["Retry-After"] is not None
            assert json.load(error)["error"] == "overloaded"
        finally:
            service.cluster.handle = original
        status, text = get(guarded_server, "/metrics")
        assert 'serenade_requests_total{status="shed"} 1' in text


class TestStreamingObservability:
    @pytest.fixture()
    def streaming_server(self, toy_index, toy_clicks):
        from repro.index.maintenance import IncrementalIndexer
        from repro.streaming import (
            ClickProducer,
            PartitionedLog,
            StreamingIndexer,
            StreamingPolicy,
        )

        cluster = ServingCluster.with_index(toy_index, num_pods=1, m=10, k=10)
        log = PartitionedLog(num_partitions=2)
        ClickProducer(log, "http-test").publish_all(
            sorted(toy_clicks, key=lambda c: (c.timestamp, c.session_id))
        )
        pipeline = StreamingIndexer(
            log,
            IncrementalIndexer(max_sessions_per_item=10),
            policy=StreamingPolicy(session_gap_seconds=3600.0),
        )
        cluster.attach_streaming(pipeline)
        with SerenadeHTTPServer(cluster, port=0) as running:
            yield running, pipeline, log

    @staticmethod
    def gauge_value(text, name):
        match = re.search(rf"^{name} (\S+)$", text, flags=re.MULTILINE)
        assert match, f"{name} not in exposition"
        return float(match.group(1))

    def test_metrics_expose_streaming_gauges(self, streaming_server):
        server, pipeline, log = streaming_server
        status, text = get(server, "/metrics")
        assert status == 200
        # Nothing consumed yet: the whole log is lag, the watermark has
        # not opened, and staleness spans the log's full event-time range.
        assert self.gauge_value(text, "serenade_streaming_lag_events") == float(
            log.total_records()
        )
        assert (
            self.gauge_value(text, "serenade_streaming_watermark_seconds")
            == 0.0
        )
        assert self.gauge_value(
            text, "serenade_index_staleness_seconds"
        ) == float(log.max_event_time())

    def test_metrics_track_the_consumer_draining(self, streaming_server):
        server, pipeline, log = streaming_server
        pipeline.run_until_caught_up()
        pipeline.flush()
        status, text = get(server, "/metrics")
        assert status == 200
        assert self.gauge_value(text, "serenade_streaming_lag_events") == 0.0
        assert (
            self.gauge_value(text, "serenade_index_staleness_seconds") == 0.0
        )
        # The watermark followed the newest event time in the log,
        # trailing it by the allowed lateness window.
        assert self.gauge_value(
            text, "serenade_streaming_watermark_seconds"
        ) == float(log.max_event_time()) - pipeline.policy.allowed_lateness_seconds

    def test_healthz_reports_consumer_group_health(self, streaming_server):
        server, pipeline, log = streaming_server
        pipeline.run_until_caught_up()
        pipeline.flush()
        status, text = get(server, "/healthz")
        assert status == 200
        streaming = json.loads(text)["streaming"]
        assert streaming["enabled"] is True
        assert streaming["crashed"] is False
        assert streaming["lag_events"] == 0
        assert streaming["within_staleness_bound"] is True
        assert streaming["group"]["members"] == [pipeline.member_id]
        # The snapshot is exactly the pipeline's own health dict (as it
        # looks after the JSON round trip, which stringifies int keys).
        expected = json.loads(json.dumps({"enabled": True, **pipeline.health()}))
        assert streaming == expected

    def test_healthz_without_streaming_reports_disabled(self, server):
        status, text = get(server, "/healthz")
        assert status == 200
        assert json.loads(text)["streaming"] == {"enabled": False}
