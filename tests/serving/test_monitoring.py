"""Tests for the metrics primitives."""

from __future__ import annotations

import threading

import pytest

from repro.serving.monitoring import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_increment_and_read(self):
        counter = Counter("requests_total")
        counter.increment()
        counter.increment(2.0)
        assert counter.value() == 3.0

    def test_labels_are_independent(self):
        counter = Counter("requests_total")
        counter.increment(status="ok")
        counter.increment(status="error")
        counter.increment(status="ok")
        assert counter.value(status="ok") == 2.0
        assert counter.value(status="error") == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").increment(-1)

    def test_render_format(self):
        counter = Counter("hits", "number of hits")
        counter.increment(status="ok")
        text = "\n".join(counter.render())
        assert "# TYPE hits counter" in text
        assert 'hits{status="ok"} 1' in text

    def test_render_empty(self):
        assert "hits 0" in "\n".join(Counter("hits").render())

    def test_thread_safety(self):
        counter = Counter("parallel")

        def worker():
            for _ in range(1000):
                counter.increment()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 8000.0


class TestHistogram:
    def test_counts_and_sum(self):
        histogram = Histogram("latency", buckets=[0.01, 0.1, 1.0])
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(5.555)

    def test_quantile_upper_bound_semantics(self):
        histogram = Histogram("latency", buckets=[0.01, 0.1, 1.0])
        for _ in range(90):
            histogram.observe(0.005)  # -> bucket 0.01
        for _ in range(10):
            histogram.observe(0.5)  # -> bucket 1.0
        assert histogram.quantile(0.5) == 0.01
        assert histogram.quantile(0.95) == 1.0

    def test_quantile_above_all_buckets_is_inf(self):
        histogram = Histogram("latency", buckets=[0.01])
        histogram.observe(99.0)
        assert histogram.quantile(0.9) == float("inf")

    def test_quantile_validation(self):
        histogram = Histogram("latency", buckets=[1.0])
        with pytest.raises(ValueError):
            histogram.quantile(0.5)  # empty
        histogram.observe(0.5)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_render_is_cumulative(self):
        histogram = Histogram("latency", buckets=[0.1, 1.0])
        histogram.observe(0.05)
        histogram.observe(0.5)
        text = "\n".join(histogram.render())
        assert 'latency_bucket{le="0.1"} 1' in text
        assert 'latency_bucket{le="1"} 2' in text
        assert 'latency_bucket{le="+Inf"} 2' in text
        assert "latency_count 2" in text

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("x", buckets=[])


class TestRegistry:
    def test_get_or_create_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("a")
        second = registry.counter("a")
        assert first is second

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.histogram("a")

    def test_render_all(self):
        registry = MetricsRegistry()
        registry.counter("c").increment()
        registry.histogram("h", buckets=[1.0]).observe(0.5)
        text = registry.render_prometheus()
        assert "# TYPE c counter" in text
        assert "# TYPE h histogram" in text
        assert text.endswith("\n")
