"""Concurrency tests for the threaded REST service."""

from __future__ import annotations

import json
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serving.app import ServingCluster
from repro.serving.http import SerenadeHTTPServer


@pytest.fixture(scope="module")
def server(toy_index):
    cluster = ServingCluster.with_index(toy_index, num_pods=2, m=10, k=10)
    with SerenadeHTTPServer(cluster, port=0) as running:
        yield running


def recommend(server, session_id, item_id):
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}/v1/recommend",
        data=json.dumps({"session_id": session_id, "item_id": item_id}).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.load(response)


class TestConcurrentRequests:
    def test_parallel_distinct_sessions_all_succeed(self, server):
        def call(i):
            return recommend(server, f"conc-user-{i}", 1 + (i % 4))

        with ThreadPoolExecutor(max_workers=16) as pool:
            results = list(pool.map(call, range(64)))
        assert all(status == 200 for status, _ in results)

    def test_parallel_updates_to_one_session_all_recorded(self, server):
        """Concurrent clicks of one session must all land in its state
        (the KV store is locked; ordering may vary, cardinality may not)."""
        session_key = "conc-hot-session"

        def call(i):
            return recommend(server, session_key, i % 5)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(call, range(32)))

        cluster = server.service.cluster
        owner = cluster.router.route(session_key)
        stored = cluster.pods[owner].sessions.get_session(session_key)
        assert stored is not None
        assert len(stored) == 32

    def test_metrics_consistent_under_parallel_load(self, server):
        before = server.service.metrics.counter(
            "serenade_requests_total"
        ).value(status="ok")

        def call(i):
            return recommend(server, f"metrics-user-{i}", 2)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(call, range(40)))
        after = server.service.metrics.counter(
            "serenade_requests_total"
        ).value(status="ok")
        assert after - before == 40
