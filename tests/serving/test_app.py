"""Tests for the serving cluster (router + pods)."""

from __future__ import annotations

import pytest

from repro.core.index import SessionIndex
from repro.core.vmis import VMISKNN
from repro.serving.app import ServingCluster
from repro.serving.server import RecommendationRequest


@pytest.fixture()
def cluster(toy_index):
    return ServingCluster.with_index(toy_index, num_pods=3, m=10, k=10)


class TestRouting:
    def test_session_stickiness(self, cluster):
        pods = {
            cluster.handle(RecommendationRequest("sticky-user", item)).served_by
            for item in (1, 2, 4, 5)
        }
        assert len(pods) == 1

    def test_state_lives_on_owning_pod_only(self, cluster):
        cluster.handle(RecommendationRequest("u-x", 1))
        owner = cluster.router.route("u-x")
        for pod_id, server in cluster.pods.items():
            stored = server.sessions.get_session("u-x")
            if pod_id == owner:
                assert stored == [1]
            else:
                assert stored is None

    def test_request_counting(self, cluster):
        for i in range(10):
            cluster.handle(RecommendationRequest(f"user-{i}", 1))
        assert cluster.total_requests() == 10
        assert len(cluster.all_service_times()) == 10


class TestScaling:
    def test_scale_up_adds_pods(self, cluster):
        cluster.scale_to(5)
        assert len(cluster.pods) == 5
        assert len(cluster.router.pods) == 5

    def test_scale_down_removes_pods(self, cluster):
        cluster.scale_to(1)
        assert list(cluster.pods) == ["pod-0"]

    def test_scale_down_loses_sessions_of_removed_pods_only(self, toy_index):
        cluster = ServingCluster.with_index(toy_index, num_pods=3, m=10, k=10)
        keys = [f"user-{i}" for i in range(30)]
        for key in keys:
            cluster.handle(RecommendationRequest(key, 1))
        survivors = {
            key
            for key in keys
            if cluster.router.route(key) in ("pod-0", "pod-1")
        }
        cluster.scale_to(2)
        for key in survivors:
            owner = cluster.router.route(key)
            assert cluster.pods[owner].sessions.get_session(key) == [1]

    def test_rejects_zero_pods(self, cluster):
        with pytest.raises(ValueError):
            cluster.scale_to(0)
        with pytest.raises(ValueError):
            ServingCluster(lambda: None, num_pods=0)


class TestIndexRollout:
    def test_rollout_replaces_all_pods(self, toy_index, toy_clicks):
        cluster = ServingCluster.with_index(toy_index, num_pods=2, m=10, k=10)
        fresh_index = SessionIndex.from_clicks(toy_clicks, max_sessions_per_item=3)
        cluster.rollout_index(lambda: VMISKNN(fresh_index, m=3, k=5))
        for server in cluster.pods.values():
            assert server.recommender.index is fresh_index

    def test_new_pods_after_rollout_use_new_factory(self, toy_index, toy_clicks):
        cluster = ServingCluster.with_index(toy_index, num_pods=1, m=10, k=10)
        fresh_index = SessionIndex.from_clicks(toy_clicks, max_sessions_per_item=3)
        cluster.rollout_index(lambda: VMISKNN(fresh_index, m=3, k=5))
        cluster.scale_to(2)
        assert cluster.pods["pod-1"].recommender.index is fresh_index


class TestBatchServing:
    def test_handle_batch_matches_serial(self, toy_index):
        cluster = ServingCluster.with_index(toy_index, num_pods=2, m=10, k=10)
        model = VMISKNN(toy_index, m=10, k=10, exclude_current_items=True)
        sessions = [[1, 2], [2], [], [1, 2]]
        results = cluster.handle_batch(sessions, how_many=5)
        assert len(results) == 4
        for session, ranked in zip(sessions, results):
            expected = model.recommend(session, how_many=5)
            assert [(s.item_id, s.score) for s in ranked] == [
                (s.item_id, s.score) for s in expected
            ]

    def test_cache_size_wraps_pod_recommenders(self, toy_index):
        from repro.core.batch import BatchPredictionEngine

        cached = ServingCluster.with_index(
            toy_index, num_pods=2, m=10, k=10, cache_size=32
        )
        plain = ServingCluster.with_index(toy_index, num_pods=1, m=10, k=10)
        for server in cached.pods.values():
            assert isinstance(server.recommender, BatchPredictionEngine)
        for server in plain.pods.values():
            assert isinstance(server.recommender, VMISKNN)

    def test_single_query_path_uses_cache(self, toy_index):
        cluster = ServingCluster.with_index(
            toy_index, num_pods=1, m=10, k=10, cache_size=32
        )
        first = cluster.handle(RecommendationRequest("hot-user", 1))
        second = cluster.handle(RecommendationRequest("cold-user", 1))
        assert [
            (s.item_id, s.score) for s in first.items
        ] == [(s.item_id, s.score) for s in second.items]
        assert cluster.cache_info()["hits"] >= 1

    def test_cache_info_aggregates_batch_engine(self, toy_index):
        cluster = ServingCluster.with_index(toy_index, num_pods=1, m=10, k=10)
        cluster.handle_batch([[1, 2]], how_many=5)
        cluster.handle_batch([[1, 2]], how_many=5)
        info = cluster.cache_info()
        assert info["hits"] == 1 and info["misses"] == 1
        assert info["hit_rate"] == 0.5

    def test_rollout_drops_batch_engine_and_caches(self, toy_index, toy_clicks):
        cluster = ServingCluster.with_index(
            toy_index, num_pods=1, m=10, k=10, cache_size=32
        )
        cluster.handle_batch([[1, 2]], how_many=5)
        stale = cluster.batch_engine()
        fresh_index = SessionIndex.from_clicks(toy_clicks, max_sessions_per_item=3)
        cluster.rollout_index(lambda: VMISKNN(fresh_index, m=3, k=5))
        assert cluster.batch_engine() is not stale
        assert cluster.batch_engine()._recommender.index is fresh_index
        # pods got fresh cache-wrapped recommenders for the new index
        for server in cluster.pods.values():
            assert server.recommender._recommender.index is fresh_index
            assert server.recommender.cache_info()["size"] == 0
