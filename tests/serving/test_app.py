"""Tests for the serving cluster (router + pods)."""

from __future__ import annotations

import pytest

from repro.core.index import SessionIndex
from repro.core.types import Click
from repro.core.vmis import VMISKNN
from repro.serving.app import ServingCluster
from repro.serving.server import RecommendationRequest


@pytest.fixture()
def cluster(toy_index):
    return ServingCluster.with_index(toy_index, num_pods=3, m=10, k=10)


class TestRouting:
    def test_session_stickiness(self, cluster):
        pods = {
            cluster.handle(RecommendationRequest("sticky-user", item)).served_by
            for item in (1, 2, 4, 5)
        }
        assert len(pods) == 1

    def test_state_lives_on_owning_pod_only(self, cluster):
        cluster.handle(RecommendationRequest("u-x", 1))
        owner = cluster.router.route("u-x")
        for pod_id, server in cluster.pods.items():
            stored = server.sessions.get_session("u-x")
            if pod_id == owner:
                assert stored == [1]
            else:
                assert stored is None

    def test_request_counting(self, cluster):
        for i in range(10):
            cluster.handle(RecommendationRequest(f"user-{i}", 1))
        assert cluster.total_requests() == 10
        assert len(cluster.all_service_times()) == 10


class TestEngineSelection:
    def test_default_engine_is_columnar_and_shares_one_index(self, toy_index):
        from repro.core.colindex import ColumnarSessionIndex, VMISKNNColumnar

        cluster = ServingCluster.with_index(toy_index, num_pods=3, m=10, k=10)
        recommenders = [s.recommender for s in cluster.pods.values()]
        assert all(isinstance(r, VMISKNNColumnar) for r in recommenders)
        assert isinstance(recommenders[0].index, ColumnarSessionIndex)
        # the SessionIndex -> columnar conversion runs once; pods share it.
        assert len({id(r.index) for r in recommenders}) == 1

    def test_heap_engine_is_the_differential_oracle(self, toy_index):
        cluster = ServingCluster.with_index(
            toy_index, num_pods=1, m=10, k=10, engine="heap"
        )
        for server in cluster.pods.values():
            assert isinstance(server.recommender, VMISKNN)

    def test_columnar_and_heap_engines_agree_bit_for_bit(self, toy_index):
        columnar = ServingCluster.with_index(toy_index, num_pods=2, m=10, k=10)
        heap = ServingCluster.with_index(
            toy_index, num_pods=2, m=10, k=10, engine="heap"
        )
        for key, item in [("u-1", 1), ("u-1", 2), ("u-2", 4), ("u-3", 2)]:
            got = columnar.handle(RecommendationRequest(key, item))
            want = heap.handle(RecommendationRequest(key, item))
            assert [(s.item_id, s.score) for s in got.items] == [
                (s.item_id, s.score) for s in want.items
            ]

    def test_unknown_engine_raises(self, toy_index):
        with pytest.raises(ValueError, match="unknown engine"):
            ServingCluster.with_index(toy_index, num_pods=1, engine="gpu")


class TestScaling:
    def test_scale_up_adds_pods(self, cluster):
        cluster.scale_to(5)
        assert len(cluster.pods) == 5
        assert len(cluster.router.pods) == 5

    def test_scale_down_removes_pods(self, cluster):
        cluster.scale_to(1)
        assert list(cluster.pods) == ["pod-0"]

    def test_scale_down_loses_sessions_of_removed_pods_only(self, toy_index):
        cluster = ServingCluster.with_index(toy_index, num_pods=3, m=10, k=10)
        keys = [f"user-{i}" for i in range(30)]
        for key in keys:
            cluster.handle(RecommendationRequest(key, 1))
        survivors = {
            key
            for key in keys
            if cluster.router.route(key) in ("pod-0", "pod-1")
        }
        cluster.scale_to(2)
        for key in survivors:
            owner = cluster.router.route(key)
            assert cluster.pods[owner].sessions.get_session(key) == [1]

    def test_rejects_zero_pods(self, cluster):
        with pytest.raises(ValueError):
            cluster.scale_to(0)
        with pytest.raises(ValueError):
            ServingCluster(lambda: None, num_pods=0)


class TestIndexRollout:
    def test_rollout_replaces_all_pods(self, toy_index, toy_clicks):
        cluster = ServingCluster.with_index(toy_index, num_pods=2, m=10, k=10)
        fresh_index = SessionIndex.from_clicks(toy_clicks, max_sessions_per_item=3)
        cluster.rollout_index(lambda: VMISKNN(fresh_index, m=3, k=5))
        for server in cluster.pods.values():
            assert server.recommender.index is fresh_index

    def test_new_pods_after_rollout_use_new_factory(self, toy_index, toy_clicks):
        cluster = ServingCluster.with_index(toy_index, num_pods=1, m=10, k=10)
        fresh_index = SessionIndex.from_clicks(toy_clicks, max_sessions_per_item=3)
        cluster.rollout_index(lambda: VMISKNN(fresh_index, m=3, k=5))
        cluster.scale_to(2)
        assert cluster.pods["pod-1"].recommender.index is fresh_index


class TestStagedSwap:
    """Per-pod swap APIs used by the lifecycle RolloutController."""

    def test_swap_single_pod_leaves_others_untouched(
        self, toy_index, toy_clicks
    ):
        cluster = ServingCluster.with_index(
            toy_index, num_pods=3, m=10, k=10, index_version="v1"
        )
        untouched = cluster.pods["pod-0"].recommender
        fresh = SessionIndex.from_clicks(toy_clicks, max_sessions_per_item=3)
        cluster.swap_pod_recommender(
            "pod-1", lambda: VMISKNN(fresh, m=3, k=5), version="v2"
        )
        assert cluster.pods["pod-1"].recommender.index is fresh
        assert cluster.pods["pod-0"].recommender is untouched
        info = cluster.rollout_info()
        assert info["pod_versions"] == {
            "pod-0": "v1",
            "pod-1": "v2",
            "pod-2": "v1",
        }
        assert not info["consistent"]
        assert info["committed_version"] == "v1"

    def test_swap_invalidates_pod_result_cache(self, toy_index, toy_clicks):
        """Regression: a swapped pod must never serve recommendations
        cached under the previous index."""
        cluster = ServingCluster.with_index(
            toy_index, num_pods=1, m=10, k=10, cache_size=32
        )
        stale = cluster.handle(RecommendationRequest("swap-user", 1))
        assert stale.items
        # a one-session index: item 1 only co-occurs with item 9
        replacement = SessionIndex.from_clicks(
            [Click(90, 1, 900), Click(90, 9, 901)], max_sessions_per_item=3
        )
        cluster.swap_pod_recommender(
            "pod-0",
            lambda: VMISKNN(replacement, m=3, k=5, exclude_current_items=True),
            version="v2",
        )
        fresh = cluster.handle(
            RecommendationRequest("other-user", 1, consent=False)
        )
        assert [s.item_id for s in fresh.items] == [9]

    def test_swap_closes_previous_recommender(self, toy_index, toy_clicks):
        cluster = ServingCluster.with_index(
            toy_index, num_pods=1, m=10, k=10, cache_size=32
        )
        old = cluster.pods["pod-0"].recommender
        cluster.handle(RecommendationRequest("x", 1))
        fresh = SessionIndex.from_clicks(toy_clicks, max_sessions_per_item=3)
        cluster.swap_pod_recommender(
            "pod-0", lambda: VMISKNN(fresh, m=3, k=5), version="v2"
        )
        assert cluster.pods["pod-0"].recommender is not old
        assert old.cache_info()["size"] == 0  # closed: cache dropped

    def test_commit_then_swap_converges_without_explicit_factory(
        self, toy_index, toy_clicks
    ):
        cluster = ServingCluster.with_index(
            toy_index, num_pods=2, m=10, k=10, index_version="v1"
        )
        fresh = SessionIndex.from_clicks(toy_clicks, max_sessions_per_item=3)
        cluster.commit_index(lambda: VMISKNN(fresh, m=3, k=5), version="v2")
        for pod_id in list(cluster.pods):
            cluster.swap_pod_recommender(pod_id)
        info = cluster.rollout_info()
        assert info["consistent"]
        assert set(info["pod_versions"].values()) == {"v2"}
        for server in cluster.pods.values():
            assert server.recommender.index is fresh

    def test_restarted_pod_builds_committed_version(self, toy_index, toy_clicks):
        cluster = ServingCluster.with_index(
            toy_index, num_pods=2, m=10, k=10, index_version="v1"
        )
        fresh = SessionIndex.from_clicks(toy_clicks, max_sessions_per_item=3)
        cluster.commit_index(lambda: VMISKNN(fresh, m=3, k=5), version="v2")
        cluster.kill_pod("pod-1")
        cluster.restart_pod("pod-1")
        assert cluster.pods["pod-1"].recommender.index is fresh
        assert cluster.rollout_info()["pod_versions"]["pod-1"] == "v2"

    def test_rollout_info_tracks_kill_and_scale(self, toy_index):
        cluster = ServingCluster.with_index(
            toy_index, num_pods=3, m=10, k=10, index_version="v1"
        )
        cluster.kill_pod("pod-2")
        info = cluster.rollout_info()
        assert set(info["pod_versions"]) == {"pod-0", "pod-1"}
        cluster.scale_to(1)
        assert set(cluster.rollout_info()["pod_versions"]) == {"pod-0"}


class TestBatchServing:
    def test_handle_batch_matches_serial(self, toy_index):
        cluster = ServingCluster.with_index(toy_index, num_pods=2, m=10, k=10)
        model = VMISKNN(toy_index, m=10, k=10, exclude_current_items=True)
        sessions = [[1, 2], [2], [], [1, 2]]
        results = cluster.handle_batch(sessions, how_many=5)
        assert len(results) == 4
        for session, ranked in zip(sessions, results):
            expected = model.recommend(session, how_many=5)
            assert [(s.item_id, s.score) for s in ranked] == [
                (s.item_id, s.score) for s in expected
            ]

    def test_cache_size_wraps_pod_recommenders(self, toy_index):
        from repro.core.batch import BatchPredictionEngine
        from repro.core.colindex import VMISKNNColumnar

        cached = ServingCluster.with_index(
            toy_index, num_pods=2, m=10, k=10, cache_size=32
        )
        plain = ServingCluster.with_index(toy_index, num_pods=1, m=10, k=10)
        for server in cached.pods.values():
            assert isinstance(server.recommender, BatchPredictionEngine)
        for server in plain.pods.values():
            assert isinstance(server.recommender, VMISKNNColumnar)

    def test_single_query_path_uses_cache(self, toy_index):
        cluster = ServingCluster.with_index(
            toy_index, num_pods=1, m=10, k=10, cache_size=32
        )
        first = cluster.handle(RecommendationRequest("hot-user", 1))
        second = cluster.handle(RecommendationRequest("cold-user", 1))
        assert [
            (s.item_id, s.score) for s in first.items
        ] == [(s.item_id, s.score) for s in second.items]
        assert cluster.cache_info()["hits"] >= 1

    def test_cache_info_aggregates_batch_engine(self, toy_index):
        cluster = ServingCluster.with_index(toy_index, num_pods=1, m=10, k=10)
        cluster.handle_batch([[1, 2]], how_many=5)
        cluster.handle_batch([[1, 2]], how_many=5)
        info = cluster.cache_info()
        assert info["hits"] == 1 and info["misses"] == 1
        assert info["hit_rate"] == 0.5

    def test_rollout_drops_batch_engine_and_caches(self, toy_index, toy_clicks):
        cluster = ServingCluster.with_index(
            toy_index, num_pods=1, m=10, k=10, cache_size=32
        )
        cluster.handle_batch([[1, 2]], how_many=5)
        stale = cluster.batch_engine()
        fresh_index = SessionIndex.from_clicks(toy_clicks, max_sessions_per_item=3)
        cluster.rollout_index(lambda: VMISKNN(fresh_index, m=3, k=5))
        assert cluster.batch_engine() is not stale
        assert cluster.batch_engine()._recommender.index is fresh_index
        # pods got fresh cache-wrapped recommenders for the new index
        for server in cluster.pods.values():
            assert server.recommender._recommender.index is fresh_index
            assert server.recommender.cache_info()["size"] == 0
