"""Tests for the colocated evolving-session store."""

from __future__ import annotations

import pytest

from repro.serving.session_store import SessionStore, decode_items, encode_items


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestEncoding:
    def test_roundtrip(self):
        items = [1, 2**40, 0, 7]
        assert decode_items(encode_items(items)) == items

    def test_empty(self):
        assert decode_items(encode_items([])) == []

    def test_corrupt_length_rejected(self):
        with pytest.raises(ValueError):
            decode_items(b"\x01\x02\x03")


class TestSessionLifecycle:
    def test_append_accumulates_history(self):
        store = SessionStore()
        assert store.append_click("u1", 10) == [10]
        assert store.append_click("u1", 20) == [10, 20]
        assert store.get_session("u1") == [10, 20]

    def test_sessions_are_isolated(self):
        store = SessionStore()
        store.append_click("u1", 1)
        store.append_click("u2", 2)
        assert store.get_session("u1") == [1]
        assert store.get_session("u2") == [2]

    def test_history_capped(self):
        store = SessionStore(max_items=3)
        for item in range(6):
            store.append_click("u", item)
        assert store.get_session("u") == [3, 4, 5]

    def test_unknown_session(self):
        assert SessionStore().get_session("ghost") is None

    def test_drop_session(self):
        store = SessionStore()
        store.append_click("u", 1)
        assert store.drop_session("u") is True
        assert store.get_session("u") is None


class TestInactivityExpiry:
    def test_idle_session_expires_after_30_minutes(self):
        clock = FakeClock()
        store = SessionStore(clock=clock)
        store.append_click("u", 1)
        clock.now = 29 * 60
        assert store.get_session("u") == [1]
        clock.now = 31 * 60
        assert store.get_session("u") is None

    def test_activity_refreshes_ttl(self):
        clock = FakeClock()
        store = SessionStore(clock=clock)
        store.append_click("u", 1)
        clock.now = 25 * 60
        store.append_click("u", 2)  # fresh activity
        clock.now = 50 * 60  # 25 min after the last click
        assert store.get_session("u") == [1, 2]

    def test_sweep_reports_evictions(self):
        clock = FakeClock()
        store = SessionStore(clock=clock)
        store.append_click("a", 1)
        store.append_click("b", 2)
        clock.now = 31 * 60
        assert store.sweep_expired() == 2
        assert len(store) == 0
