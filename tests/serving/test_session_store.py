"""Tests for the colocated evolving-session store."""

from __future__ import annotations

import pytest

from repro.serving.session_store import SessionStore, decode_items, encode_items


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestEncoding:
    def test_roundtrip(self):
        items = [1, 2**40, 0, 7]
        assert decode_items(encode_items(items)) == items

    def test_empty(self):
        assert decode_items(encode_items([])) == []

    def test_corrupt_length_rejected(self):
        with pytest.raises(ValueError):
            decode_items(b"\x01\x02\x03")


class TestSessionLifecycle:
    def test_append_accumulates_history(self):
        store = SessionStore()
        assert store.append_click("u1", 10) == [10]
        assert store.append_click("u1", 20) == [10, 20]
        assert store.get_session("u1") == [10, 20]

    def test_sessions_are_isolated(self):
        store = SessionStore()
        store.append_click("u1", 1)
        store.append_click("u2", 2)
        assert store.get_session("u1") == [1]
        assert store.get_session("u2") == [2]

    def test_history_capped(self):
        store = SessionStore(max_items=3)
        for item in range(6):
            store.append_click("u", item)
        assert store.get_session("u") == [3, 4, 5]

    def test_unknown_session(self):
        assert SessionStore().get_session("ghost") is None

    def test_drop_session(self):
        store = SessionStore()
        store.append_click("u", 1)
        assert store.drop_session("u") is True
        assert store.get_session("u") is None


class TestInactivityExpiry:
    def test_idle_session_expires_after_30_minutes(self):
        clock = FakeClock()
        store = SessionStore(clock=clock)
        store.append_click("u", 1)
        clock.now = 29 * 60
        assert store.get_session("u") == [1]
        clock.now = 31 * 60
        assert store.get_session("u") is None

    def test_activity_refreshes_ttl(self):
        clock = FakeClock()
        store = SessionStore(clock=clock)
        store.append_click("u", 1)
        clock.now = 25 * 60
        store.append_click("u", 2)  # fresh activity
        clock.now = 50 * 60  # 25 min after the last click
        assert store.get_session("u") == [1, 2]

    def test_sweep_reports_evictions(self):
        clock = FakeClock()
        store = SessionStore(clock=clock)
        store.append_click("a", 1)
        store.append_click("b", 2)
        clock.now = 31 * 60
        assert store.sweep_expired() == 2
        assert len(store) == 0


class TestCorruptionTolerance:
    def _corrupt(self, store: SessionStore, session_key: str) -> None:
        # Plant a value whose length is not a multiple of the item width.
        store._store.put(session_key.encode("utf-8"), b"\x01\x02\x03")

    def test_decode_items_still_rejects_corrupt_values(self):
        with pytest.raises(ValueError, match="corrupt"):
            decode_items(b"\x01\x02\x03")

    def test_corrupt_value_reads_as_empty_session(self):
        store = SessionStore()
        self._corrupt(store, "u")
        assert store.get_session("u") == []
        assert store.corrupt_sessions == 1

    def test_append_click_recovers_over_corrupt_value(self):
        store = SessionStore()
        self._corrupt(store, "u")
        assert store.append_click("u", 7) == [7]
        assert store.corrupt_sessions == 1
        # The rewrite healed the entry: reads are clean again.
        assert store.get_session("u") == [7]
        assert store.corrupt_sessions == 1

    def test_corruption_logged_once_but_counted_always(self, caplog):
        store = SessionStore()
        self._corrupt(store, "a")
        self._corrupt(store, "b")
        with caplog.at_level("WARNING", logger="repro.serving.session_store"):
            store.get_session("a")
            store.get_session("b")
        assert store.corrupt_sessions == 2
        warnings = [r for r in caplog.records if "corrupt session" in r.message]
        assert len(warnings) == 1


class TestWALPersistence:
    def test_crash_and_replay_restores_sessions(self, tmp_path):
        wal = tmp_path / "pod.wal"
        store = SessionStore(wal_path=wal)
        store.append_click("u", 1)
        store.append_click("u", 2)
        store.append_click("v", 9)
        before = store.as_dict()
        # Crash: no close(). A fresh store on the same volume replays.
        replayed = SessionStore(wal_path=wal)
        assert replayed.as_dict() == before

    def test_expired_sessions_dropped_during_replay(self, tmp_path):
        wal = tmp_path / "pod.wal"
        clock = FakeClock()
        store = SessionStore(clock=clock, wal_path=wal)
        store.append_click("old", 1)
        clock.now = 10 * 60
        store.append_click("fresh", 2)
        clock.now = 35 * 60  # "old" is past its 30-minute TTL
        replayed = SessionStore(clock=clock, wal_path=wal)
        assert replayed.get_session("old") is None
        assert replayed.get_session("fresh") == [2]

    def test_snapshot_compacts_and_counts(self, tmp_path):
        wal = tmp_path / "pod.wal"
        store = SessionStore(wal_path=wal)
        for i in range(10):
            store.append_click("u", i)
        store.drop_session("u")
        store.append_click("v", 1)
        size_before = wal.stat().st_size
        assert store.snapshot() == 1
        assert wal.stat().st_size < size_before
        replayed = SessionStore(wal_path=wal)
        assert replayed.as_dict() == {"v": [1]}

    def test_close_delete_wal_removes_log(self, tmp_path):
        wal = tmp_path / "pod.wal"
        store = SessionStore(wal_path=wal)
        store.append_click("u", 1)
        store.close(delete_wal=True)
        assert not wal.exists()
