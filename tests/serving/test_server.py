"""Tests for the stateful recommendation server."""

from __future__ import annotations

import pytest

from repro.core.vmis import VMISKNN
from repro.serving.rules import BusinessRules, exclude_unavailable
from repro.serving.server import (
    FRONTEND_SLOT_SIZE,
    RecommendationRequest,
    RecommendationServer,
)
from repro.serving.variants import ServingVariant


@pytest.fixture()
def server(toy_index):
    recommender = VMISKNN(toy_index, m=10, k=10, exclude_current_items=True)
    return RecommendationServer("pod-test", recommender)


class TestRequestHandling:
    def test_response_has_slot_size_limit(self, server):
        response = server.handle(RecommendationRequest("u1", 1))
        assert len(response.items) <= FRONTEND_SLOT_SIZE
        assert response.served_by == "pod-test"
        assert response.service_seconds > 0

    def test_session_state_accumulates(self, server):
        server.handle(RecommendationRequest("u1", 1))
        server.handle(RecommendationRequest("u1", 2))
        assert server.sessions.get_session("u1") == [1, 2]

    def test_variant_controls_visible_history(self, toy_index):
        calls = []

        class SpyRecommender:
            def recommend(self, session_items, how_many=21):
                calls.append(list(session_items))
                return []

        server = RecommendationServer("pod", SpyRecommender())
        server.handle(RecommendationRequest("u", 1, variant=ServingVariant.FULL))
        server.handle(RecommendationRequest("u", 2, variant=ServingVariant.HIST))
        server.handle(RecommendationRequest("u", 3, variant=ServingVariant.RECENT))
        assert calls == [[1], [1, 2], [3]]

    def test_stats_counted(self, server):
        for item in (1, 2, 4):
            server.handle(RecommendationRequest("u", item))
        assert server.stats.requests == 3
        assert len(server.stats.service_times) == 3
        assert server.stats.busy_seconds > 0


class TestDepersonalisation:
    def test_no_consent_does_not_touch_state(self, server):
        server.handle(RecommendationRequest("u1", 1, consent=False))
        assert server.sessions.get_session("u1") is None
        assert server.stats.depersonalised_requests == 1

    def test_no_consent_still_recommends(self, server):
        response = server.handle(RecommendationRequest("u1", 1, consent=False))
        assert isinstance(response.items, tuple)

    def test_revoke_consent_drops_session(self, server):
        server.handle(RecommendationRequest("u1", 1))
        server.revoke_consent("u1")
        assert server.sessions.get_session("u1") is None


class TestBusinessRulesIntegration:
    def test_unavailable_items_filtered(self, toy_index):
        recommender = VMISKNN(toy_index, m=10, k=10)
        unfiltered = RecommendationServer("p", recommender)
        all_items = {
            s.item_id
            for s in unfiltered.handle(RecommendationRequest("u", 1)).items
        }
        assert all_items, "need a non-empty baseline for this test"
        blocked = next(iter(all_items))
        filtered_server = RecommendationServer(
            "p2",
            recommender,
            rules=BusinessRules([exclude_unavailable({blocked})]),
        )
        response = filtered_server.handle(RecommendationRequest("u", 1))
        assert blocked not in {s.item_id for s in response.items}

    def test_index_rollout_swaps_recommender(self, server, toy_index):
        replacement = VMISKNN(toy_index, m=5, k=5)
        server.replace_recommender(replacement)
        assert server.recommender is replacement
