"""Tests for the serving variants."""

from __future__ import annotations

import pytest

from repro.serving.variants import ServingVariant, session_view


class TestSessionView:
    def test_full_returns_everything(self):
        assert session_view([1, 2, 3], ServingVariant.FULL) == [1, 2, 3]

    def test_hist_returns_last_two(self):
        assert session_view([1, 2, 3], ServingVariant.HIST) == [2, 3]

    def test_hist_with_single_item(self):
        assert session_view([9], ServingVariant.HIST) == [9]

    def test_recent_returns_last_one(self):
        assert session_view([1, 2, 3], ServingVariant.RECENT) == [3]

    def test_depersonalised_sees_only_current_item(self):
        view = session_view([1, 2, 3], ServingVariant.DEPERSONALISED, current_item=42)
        assert view == [42]

    def test_depersonalised_requires_current_item(self):
        with pytest.raises(ValueError):
            session_view([1, 2], ServingVariant.DEPERSONALISED)

    def test_views_are_copies(self):
        items = [1, 2, 3]
        view = session_view(items, ServingVariant.FULL)
        view.append(99)
        assert items == [1, 2, 3]
