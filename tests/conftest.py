"""Shared fixtures: deterministic click data at several scales."""

from __future__ import annotations

import pytest

from repro.core.index import SessionIndex
from repro.core.types import Click
from repro.data.clicklog import ClickLog
from repro.data.synthetic import generate_clickstream
from repro.testing.strategies import install_profiles

# Pin Hypothesis behaviour suite-wide; CI selects a derandomised profile
# via HYPOTHESIS_PROFILE (see repro.testing.strategies).
install_profiles()


@pytest.fixture(scope="session")
def toy_clicks() -> list[Click]:
    """Six tiny sessions with known overlaps, timestamps 1 second apart.

    Sessions (by item): 0:[1,2], 1:[2,3], 2:[1,2,4], 3:[3,4], 4:[1,5],
    5:[2,4,5]. Useful for hand-checkable assertions.
    """
    rows = [
        (0, 1, 100),
        (0, 2, 101),
        (1, 2, 200),
        (1, 3, 201),
        (2, 1, 300),
        (2, 2, 301),
        (2, 4, 302),
        (3, 3, 400),
        (3, 4, 401),
        (4, 1, 500),
        (4, 5, 501),
        (5, 2, 600),
        (5, 4, 601),
        (5, 5, 602),
    ]
    return [Click(s, i, t) for s, i, t in rows]


@pytest.fixture(scope="session")
def toy_index(toy_clicks) -> SessionIndex:
    return SessionIndex.from_clicks(toy_clicks, max_sessions_per_item=10)


@pytest.fixture(scope="session")
def small_log() -> ClickLog:
    """~800 synthetic sessions over 8 days; fast to build, non-trivial."""
    return generate_clickstream(
        num_sessions=800, num_items=300, days=8, seed=1234
    )


@pytest.fixture(scope="session")
def medium_log() -> ClickLog:
    """~4000 synthetic sessions for integration-level tests."""
    return generate_clickstream(
        num_sessions=4000, num_items=800, days=10, seed=777
    )
