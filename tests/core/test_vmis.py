"""Tests for VMIS-kNN (Algorithm 2), including the VS-kNN equivalence oracle."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import SessionIndex
from repro.core.types import Click
from repro.core.vmis import VMISKNN
from repro.core.vsknn import VSKNN


def clicks_strategy():
    return st.lists(
        st.tuples(
            st.integers(0, 14),  # session
            st.integers(0, 11),  # item
            st.integers(0, 5_000),  # timestamp
        ),
        min_size=2,
        max_size=120,
    ).map(lambda rows: [Click(s, i, t) for s, i, t in rows])


def session_strategy():
    return st.lists(st.integers(0, 11), min_size=1, max_size=8)


class TestVMISNeighbors:
    def test_empty_session(self, toy_index):
        model = VMISKNN(toy_index, m=10, k=5)
        assert model.find_neighbors([]) == []
        assert model.recommend([]) == []

    def test_toy_similarity(self, toy_index):
        model = VMISKNN(toy_index, m=10, k=10)
        neighbors = dict(model.find_neighbors([1, 2, 4]))
        assert neighbors[5] == pytest.approx(5 / 3)

    def test_m_bounds_retained_sessions(self, toy_index):
        model = VMISKNN(toy_index, m=2, k=10)
        assert len(model.find_neighbors([1, 2, 4])) <= 2

    def test_m_keeps_most_recent_sessions(self, toy_clicks):
        index = SessionIndex.from_clicks(toy_clicks, max_sessions_per_item=10)
        model = VMISKNN(index, m=2, k=10)
        neighbors = model.find_neighbors([2])
        timestamps = {index.timestamp_of(sid) for sid, _ in neighbors}
        assert timestamps <= {302, 602}

    def test_duplicate_items_counted_once(self, toy_index):
        model = VMISKNN(toy_index, m=10, k=10)
        with_duplicates = dict(model.find_neighbors([2, 2, 2]))
        without = dict(model.find_neighbors([2]))
        assert with_duplicates == without

    def test_tie_on_similarity_prefers_recent(self, toy_index):
        model = VMISKNN(toy_index, m=10, k=1)
        # Sessions 0 (ts 101) and 2 (ts 302) both contain items 1 and 2;
        # equal similarity for session [1, 2] -> the more recent wins.
        (winner, _), = model.find_neighbors([1, 2])
        assert winner == 2

    def test_rejects_bad_hyperparameters(self, toy_index):
        with pytest.raises(ValueError):
            VMISKNN(toy_index, m=0)
        with pytest.raises(ValueError):
            VMISKNN(toy_index, k=-1)


class TestOptimisationVariants:
    def test_no_opt_factory(self, toy_index):
        model = VMISKNN.no_opt(toy_index, m=5, k=3)
        assert model.heap_arity == 2
        assert model.early_stopping is False

    def test_early_stopping_does_not_change_results(self, medium_log):
        index = SessionIndex.from_clicks(medium_log, max_sessions_per_item=50)
        fast = VMISKNN(index, m=50, k=20, early_stopping=True)
        slow = VMISKNN(index, m=50, k=20, early_stopping=False)
        sequences = list(medium_log.session_item_sequences().values())[:40]
        for sequence in sequences:
            prefix = sequence[: max(1, len(sequence) // 2)]
            assert sorted(fast.find_neighbors(prefix)) == sorted(
                slow.find_neighbors(prefix)
            ), prefix

    def test_arity_does_not_change_results(self, medium_log):
        index = SessionIndex.from_clicks(medium_log, max_sessions_per_item=50)
        octonary = VMISKNN(index, m=50, k=20, heap_arity=8)
        binary = VMISKNN(index, m=50, k=20, heap_arity=2)
        sequences = list(medium_log.session_item_sequences().values())[:40]
        for sequence in sequences:
            prefix = sequence[: max(1, len(sequence) // 2)]
            assert sorted(octonary.find_neighbors(prefix)) == sorted(
                binary.find_neighbors(prefix)
            )


class TestEquivalenceWithVSKNN:
    """With m large enough to hold every match, the indexed algorithm must
    compute exactly the neighbour similarities of Algorithm 1."""

    @given(clicks=clicks_strategy(), session=session_strategy())
    @settings(max_examples=80, deadline=None)
    def test_neighbor_similarities_match(self, clicks, session):
        index = SessionIndex.from_clicks(clicks, max_sessions_per_item=10**6)
        m = index.num_sessions + 1
        vmis = VMISKNN(index, m=m, k=10**6)
        vs = VSKNN(index, m=m, k=10**6)
        got = dict(vmis.find_neighbors(session))
        expected = dict(vs.find_neighbors(session))
        assert set(got) == set(expected)
        for session_id, similarity in expected.items():
            assert got[session_id] == pytest.approx(similarity)

    @given(clicks=clicks_strategy(), session=session_strategy())
    @settings(max_examples=60, deadline=None)
    def test_recommendations_match_on_shared_scoring(self, clicks, session):
        index = SessionIndex.from_clicks(clicks, max_sessions_per_item=10**6)
        m = index.num_sessions + 1
        vmis = VMISKNN(index, m=m, k=10**6, scoring_style="vmis")
        vs = VSKNN(index, m=m, k=10**6, scoring_style="vmis")
        got = vmis.recommend(session, how_many=50)
        expected = vs.recommend(session, how_many=50)
        assert [s.item_id for s in got] == [s.item_id for s in expected]
        for mine, theirs in zip(got, expected):
            assert mine.score == pytest.approx(theirs.score)


class TestVMISRecommend:
    def test_scores_descending_and_truncated(self, toy_index):
        model = VMISKNN(toy_index, m=10, k=10)
        ranked = model.recommend([1, 2, 4], how_many=3)
        assert len(ranked) <= 3
        scores = [s.score for s in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_exclude_current_items(self, toy_index):
        model = VMISKNN(toy_index, m=10, k=10, exclude_current_items=True)
        recommended = {s.item_id for s in model.recommend([1, 2])}
        assert recommended.isdisjoint({1, 2})

    def test_from_clicks_truncates_at_m(self, toy_clicks):
        model = VMISKNN.from_clicks(toy_clicks, m=2)
        assert all(
            len(postings) <= 2
            for postings in model.index.item_to_sessions.values()
        )

    def test_session_cap_applied_exactly_once(self, toy_index):
        """A long evolving session behaves as its last-N suffix, verbatim."""
        model = VMISKNN(toy_index, m=10, k=10, max_session_items=2)
        long_session = [5, 3, 1, 2]
        assert model.find_neighbors(long_session) == model.find_neighbors([1, 2])
        assert model.recommend(long_session) == model.recommend([1, 2])
        # the similarity pass itself must not reapply the cap: handing it
        # the uncapped session weights all four positions (capped: two)
        uncapped = model._matching_similarities(long_session)
        capped = model._matching_similarities([1, 2])
        assert uncapped != capped

    def test_unfitted_recommend_raises(self):
        model = VMISKNN(m=10, k=10)
        with pytest.raises(RuntimeError, match="fit"):
            model.recommend([1, 2])
        assert model.recommend([]) == []  # empty session needs no index
