"""Tests for the session-similarity index (M, t)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import SessionIndex
from repro.core.types import Click


def clicks_strategy(max_sessions=30, max_items=20):
    return st.lists(
        st.tuples(
            st.integers(0, max_sessions - 1),
            st.integers(0, max_items - 1),
            st.integers(0, 10_000),
        ),
        min_size=1,
        max_size=150,
    ).map(lambda rows: [Click(s, i, t) for s, i, t in rows])


class TestIndexConstruction:
    def test_toy_index_shape(self, toy_index):
        assert toy_index.num_sessions == 6
        assert toy_index.num_items == 5

    def test_postings_sorted_by_descending_timestamp(self, toy_index):
        for item, postings in toy_index.item_to_sessions.items():
            timestamps = [toy_index.timestamp_of(s) for s in postings]
            assert timestamps == sorted(timestamps, reverse=True), item

    def test_truncation_keeps_most_recent(self, toy_clicks):
        index = SessionIndex.from_clicks(toy_clicks, max_sessions_per_item=1)
        # Item 2 occurs in sessions finishing at 101, 201, 302, 602; the
        # single retained posting must be the most recent one.
        postings = index.sessions_for_item(2)
        assert len(postings) == 1
        assert index.timestamp_of(postings[0]) == 602

    def test_counts_survive_truncation(self, toy_clicks):
        full = SessionIndex.from_clicks(toy_clicks, max_sessions_per_item=100)
        truncated = SessionIndex.from_clicks(toy_clicks, max_sessions_per_item=1)
        assert truncated.item_session_counts == full.item_session_counts

    def test_unknown_item_has_empty_postings(self, toy_index):
        assert toy_index.sessions_for_item(999) == []

    def test_invalid_m_rejected(self, toy_clicks):
        with pytest.raises(ValueError):
            SessionIndex.from_clicks(toy_clicks, max_sessions_per_item=0)

    def test_duplicate_items_within_session_stored_once(self):
        clicks = [Click(0, 7, 1), Click(0, 7, 2), Click(0, 8, 3)]
        index = SessionIndex.from_clicks(clicks, 10)
        assert index.items_of(0) == (7, 8)
        assert index.item_session_counts[7] == 1


class TestIdf:
    def test_idf_values(self, toy_index):
        # Item 1 occurs in 3 of 6 sessions -> log(2).
        assert toy_index.idf(1) == pytest.approx(math.log(2))

    def test_idf_of_unknown_item_is_zero(self, toy_index):
        assert toy_index.idf(424242) == 0.0

    def test_idf_cached(self, toy_index):
        first = toy_index.idf(2)
        assert toy_index.idf(2) == first
        assert 2 in toy_index._idf_cache


class TestIndexProperties:
    @given(clicks=clicks_strategy(), m=st.integers(1, 10))
    @settings(max_examples=60)
    def test_every_posting_is_a_real_click(self, clicks, m):
        index = SessionIndex.from_clicks(clicks, max_sessions_per_item=m)
        # Reconstruct ground truth: item -> set of sessions clicking it.
        truth: dict[int, set[int]] = {}
        for click in clicks:
            truth.setdefault(click.item_id, set())
        for internal_id in range(index.num_sessions):
            for item in index.items_of(internal_id):
                truth[item].add(internal_id)
        for item, postings in index.item_to_sessions.items():
            assert len(postings) <= m
            assert len(set(postings)) == len(postings)
            for session_id in postings:
                assert item in index.items_of(session_id)

    @given(clicks=clicks_strategy())
    @settings(max_examples=60)
    def test_internal_ids_ordered_by_timestamp(self, clicks):
        index = SessionIndex.from_clicks(clicks, max_sessions_per_item=50)
        timestamps = index.session_timestamps
        assert timestamps == sorted(timestamps)

    @given(clicks=clicks_strategy(), m=st.integers(1, 8))
    @settings(max_examples=60)
    def test_postings_are_the_m_most_recent(self, clicks, m):
        full = SessionIndex.from_clicks(clicks, max_sessions_per_item=10**9)
        truncated = SessionIndex.from_clicks(clicks, max_sessions_per_item=m)
        for item, full_postings in full.item_to_sessions.items():
            expected = full_postings[:m]
            assert truncated.item_to_sessions[item] == expected


class TestMemoryProfile:
    def test_profile_counts(self, toy_index):
        profile = toy_index.memory_profile()
        assert profile["num_sessions"] == 6
        assert profile["num_items"] == 5
        assert profile["posting_entries"] == sum(
            len(v) for v in toy_index.item_to_sessions.values()
        )
