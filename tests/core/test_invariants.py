"""Cross-cutting property tests on the core algorithm's invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import SessionIndex
from repro.core.types import Click
from repro.core.vmis import VMISKNN


def clicks_strategy():
    return st.lists(
        st.tuples(
            st.integers(0, 19),
            st.integers(0, 14),
            st.integers(0, 9_999),
        ),
        min_size=2,
        max_size=150,
    ).map(lambda rows: [Click(s, i, t) for s, i, t in rows])


def session_strategy():
    return st.lists(st.integers(0, 14), min_size=1, max_size=10)


class TestVMISInvariants:
    @given(clicks=clicks_strategy(), session=session_strategy(), m=st.integers(1, 12), k=st.integers(1, 12))
    @settings(max_examples=80, deadline=None)
    def test_neighbor_count_bounded_by_m_and_k(self, clicks, session, m, k):
        index = SessionIndex.from_clicks(clicks, max_sessions_per_item=m)
        model = VMISKNN(index, m=m, k=k)
        neighbors = model.find_neighbors(session)
        assert len(neighbors) <= min(m, k)

    @given(clicks=clicks_strategy(), session=session_strategy())
    @settings(max_examples=60, deadline=None)
    def test_similarities_positive_and_bounded(self, clicks, session):
        index = SessionIndex.from_clicks(clicks, max_sessions_per_item=100)
        model = VMISKNN(index, m=100, k=100)
        for _, similarity in model.find_neighbors(session):
            assert similarity > 0.0
            # Sum of per-item decay weights is at most the number of
            # distinct items (each weight <= 1).
            assert similarity <= len(set(session)) + 1e-9

    @given(clicks=clicks_strategy(), session=session_strategy())
    @settings(max_examples=60, deadline=None)
    def test_neighbors_sorted_by_similarity(self, clicks, session):
        index = SessionIndex.from_clicks(clicks, max_sessions_per_item=100)
        model = VMISKNN(index, m=100, k=100)
        similarities = [s for _, s in model.find_neighbors(session)]
        assert similarities == sorted(similarities, reverse=True)

    @given(clicks=clicks_strategy(), session=session_strategy())
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, clicks, session):
        index = SessionIndex.from_clicks(clicks, max_sessions_per_item=50)
        model = VMISKNN(index, m=50, k=20)
        assert model.recommend(session, 10) == model.recommend(session, 10)

    @given(clicks=clicks_strategy(), session=session_strategy())
    @settings(max_examples=40, deadline=None)
    def test_recommendations_come_from_neighbor_sessions(self, clicks, session):
        index = SessionIndex.from_clicks(clicks, max_sessions_per_item=50)
        model = VMISKNN(index, m=50, k=20)
        neighbor_items: set[int] = set()
        for session_id, _ in model.find_neighbors(session):
            neighbor_items.update(index.items_of(session_id))
        recommended = {s.item_id for s in model.recommend(session, 50)}
        assert recommended <= neighbor_items

    @given(clicks=clicks_strategy(), session=session_strategy())
    @settings(max_examples=40, deadline=None)
    def test_growing_m_never_shrinks_candidates(self, clicks, session):
        index = SessionIndex.from_clicks(clicks, max_sessions_per_item=10**6)
        small = VMISKNN(index, m=3, k=10**6)
        large = VMISKNN(index, m=30, k=10**6)
        assert len(small.find_neighbors(session)) <= len(
            large.find_neighbors(session)
        )
