"""Tests for the decay and match-weight functions."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.weights import (
    DECAY_FUNCTIONS,
    MATCH_WEIGHT_FUNCTIONS,
    decay_weights,
    harmonic_decay,
    linear_decay,
    log_decay,
    paper_match_weight,
    quadratic_decay,
    resolve_decay,
    resolve_match_weight,
    uniform_decay,
)


class TestDecayFunctions:
    def test_linear_matches_paper_toy_example(self):
        # omega(s) = [1, 2, 3] over three items -> weights 1/3, 2/3, 3/3.
        weights = decay_weights([1, 2, 4], decay="linear")
        assert weights == {1: pytest.approx(1 / 3), 2: pytest.approx(2 / 3), 4: 1.0}

    def test_most_recent_item_gets_full_weight(self):
        for name, decay_fn in DECAY_FUNCTIONS.items():
            assert decay_fn(5, 5) == pytest.approx(1.0), name

    @given(
        position=st.integers(1, 50),
        length=st.integers(1, 50),
    )
    def test_all_decays_bounded_and_positive(self, position, length):
        if position > length:
            return
        for decay_fn in (
            linear_decay,
            quadratic_decay,
            log_decay,
            harmonic_decay,
            uniform_decay,
        ):
            value = decay_fn(position, length)
            assert 0.0 < value <= 1.0

    @given(length=st.integers(2, 40))
    def test_decays_are_monotone_in_position(self, length):
        for decay_fn in (linear_decay, quadratic_decay, log_decay, harmonic_decay):
            values = [decay_fn(p, length) for p in range(1, length + 1)]
            assert values == sorted(values)

    def test_duplicate_items_use_latest_position(self):
        weights = decay_weights([7, 8, 7], decay="linear")
        assert weights[7] == 1.0  # position 3 of 3


class TestMatchWeights:
    def test_paper_default_values(self):
        # lambda(3) = 0.7 per the toy example in Section 2.
        assert paper_match_weight(3) == pytest.approx(0.7)
        assert paper_match_weight(1) == pytest.approx(0.9)

    def test_paper_default_zero_beyond_ten(self):
        assert paper_match_weight(10) == 0.0
        assert paper_match_weight(25) == 0.0

    def test_registry_contains_paper_default(self):
        assert MATCH_WEIGHT_FUNCTIONS["paper"] is paper_match_weight

    @given(insertion_time=st.integers(1, 100))
    def test_all_match_weights_non_negative_and_at_most_one(self, insertion_time):
        for name, weight_fn in MATCH_WEIGHT_FUNCTIONS.items():
            value = weight_fn(insertion_time)
            assert 0.0 <= value <= 1.0, name

    @given(later=st.integers(2, 100))
    def test_match_weights_monotone_non_increasing(self, later):
        """lambda never rewards a *less* recent shared item: every named
        match weight is non-increasing in the insertion time."""
        for name, weight_fn in MATCH_WEIGHT_FUNCTIONS.items():
            assert weight_fn(later - 1) >= weight_fn(later), name

    def test_uniform_is_constant(self):
        values = {MATCH_WEIGHT_FUNCTIONS["uniform"](x) for x in range(1, 50)}
        assert values == {1.0}


class TestResolvers:
    def test_resolve_by_name(self):
        assert resolve_decay("linear") is linear_decay

    def test_resolve_passthrough_callable(self):
        custom = lambda p, n: 1.0  # noqa: E731
        assert resolve_decay(custom) is custom
        assert resolve_match_weight(custom) is custom

    def test_unknown_names_raise_with_suggestions(self):
        with pytest.raises(ValueError, match="linear"):
            resolve_decay("nope")
        with pytest.raises(ValueError, match="paper"):
            resolve_match_weight("nope")
