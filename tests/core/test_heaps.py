"""Unit and property tests for the bounded d-ary heaps."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heaps import BoundedTopK, DAryMinHeap, MostRecentTracker


class TestDAryMinHeap:
    def test_pop_order_is_sorted(self):
        heap = DAryMinHeap(arity=2)
        for value in [5, 1, 4, 2, 3]:
            heap.push(value, 0.0, f"p{value}")
        assert [entry[0] for entry in heap.drain_sorted()] == [1, 2, 3, 4, 5]

    def test_tiebreak_orders_equal_priorities(self):
        heap = DAryMinHeap(arity=8)
        heap.push(1.0, 2.0, "late")
        heap.push(1.0, 1.0, "early")
        assert heap.pop()[2] == "early"
        assert heap.pop()[2] == "late"

    def test_replace_root_returns_old_minimum(self):
        heap = DAryMinHeap(arity=8)
        for value in [3, 1, 2]:
            heap.push(value, 0.0, value)
        old = heap.replace_root(10, 0.0, 10)
        assert old[0] == 1
        assert [entry[0] for entry in heap.drain_sorted()] == [2, 3, 10]

    def test_empty_heap_raises(self):
        heap = DAryMinHeap()
        with pytest.raises(IndexError):
            heap.pop()
        with pytest.raises(IndexError):
            heap.peek()
        with pytest.raises(IndexError):
            heap.replace_root(1, 0, None)

    def test_invalid_arity_rejected(self):
        with pytest.raises(ValueError):
            DAryMinHeap(arity=1)

    @given(
        values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=200),
        arity=st.sampled_from([2, 3, 4, 8, 16]),
    )
    def test_heap_sorts_any_input(self, values, arity):
        heap = DAryMinHeap(arity=arity)
        for value in values:
            heap.push(float(value), 0.0, value)
        drained = [entry[0] for entry in heap.drain_sorted()]
        assert drained == sorted(float(v) for v in values)

    @given(
        operations=st.lists(
            st.tuples(
                st.sampled_from(["push", "pop", "replace"]),
                st.integers(0, 9),  # tiny range forces priority ties
                st.integers(0, 9),
            ),
            max_size=120,
        ),
        arity=st.sampled_from([2, 3, 8]),
    )
    def test_structural_invariant_under_mixed_operations(self, operations, arity):
        """The d-ary shape property itself: every parent <= its children
        on (priority, tiebreak), checked after every mutation."""
        heap = DAryMinHeap(arity=arity)

        def check():
            entries = list(heap)
            for index in range(1, len(entries)):
                parent = entries[(index - 1) // arity]
                child = entries[index]
                assert (parent[0], parent[1]) <= (child[0], child[1])

        for operation, priority, tiebreak in operations:
            if operation == "push":
                heap.push(float(priority), float(tiebreak), None)
            elif operation == "pop" and heap:
                heap.pop()
            elif operation == "replace" and heap:
                heap.replace_root(float(priority), float(tiebreak), None)
            check()
        drained = [(p, t) for p, t, _ in heap.drain_sorted()]
        assert drained == sorted(drained)

    @given(
        operations=st.lists(
            st.tuples(st.sampled_from(["push", "pop", "replace"]), st.integers(0, 99)),
            max_size=100,
        )
    )
    def test_heap_invariant_under_mixed_operations(self, operations):
        heap = DAryMinHeap(arity=4)
        model: list[float] = []
        for operation, value in operations:
            if operation == "push":
                heap.push(float(value), 0.0, value)
                model.append(float(value))
            elif operation == "pop" and model:
                assert heap.pop()[0] == min(model)
                model.remove(min(model))
            elif operation == "replace" and model:
                old = heap.replace_root(float(value), 0.0, value)
                assert old[0] == min(model)
                model.remove(min(model))
                model.append(float(value))
        assert len(heap) == len(model)
        assert sorted(entry[0] for entry in heap.drain_sorted()) == sorted(model)


class TestBoundedTopK:
    def test_keeps_largest(self):
        top = BoundedTopK(3)
        for value in [1, 9, 5, 7, 3]:
            top.offer(float(value), 0.0, value)
        assert [payload for _, _, payload in top.descending()] == [9, 7, 5]

    def test_capacity_never_exceeded(self):
        top = BoundedTopK(2)
        for value in range(10):
            top.offer(float(value), 0.0, value)
            assert len(top) <= 2

    def test_tiebreak_prefers_higher_tiebreak(self):
        top = BoundedTopK(1)
        top.offer(1.0, 100.0, "old")
        top.offer(1.0, 200.0, "new")
        assert top.descending()[0][2] == "new"

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            BoundedTopK(0)

    @given(
        values=st.lists(
            st.tuples(st.floats(-1e6, 1e6), st.integers(0, 10**6)),
            min_size=1,
            max_size=300,
        ),
        capacity=st.integers(1, 50),
    )
    @settings(max_examples=60)
    def test_topk_matches_sort_oracle(self, values, capacity):
        top = BoundedTopK(capacity, arity=8)
        for index, (priority, tiebreak) in enumerate(values):
            top.offer(priority, float(tiebreak), index)
        got = [(p, t) for p, t, _ in top.descending()]
        expected = sorted(
            ((p, float(t)) for p, t in values), reverse=True
        )[:capacity]
        assert got == expected


class TestMostRecentTracker:
    def test_tracks_most_recent(self):
        tracker = MostRecentTracker(2)
        tracker.add(10.0, "a")
        tracker.add(20.0, "b")
        assert tracker.is_full
        evicted = tracker.displace_oldest(30.0, "c")
        assert evicted == "a"
        assert sorted(tracker.payloads()) == ["b", "c"]

    def test_add_when_full_raises(self):
        tracker = MostRecentTracker(1)
        tracker.add(1.0, "x")
        with pytest.raises(OverflowError):
            tracker.add(2.0, "y")

    def test_oldest_timestamp(self):
        tracker = MostRecentTracker(3)
        for timestamp in (5.0, 3.0, 9.0):
            tracker.add(timestamp, timestamp)
        assert tracker.oldest_timestamp() == 3.0

    def test_tied_timestamps_evict_by_tiebreak(self):
        """On a full tie, the smallest (timestamp, tiebreak) goes first —
        VMIS-kNN passes the internal session id here, which is what makes
        index-time retention deterministic on same-timestamp sessions."""
        tracker = MostRecentTracker(2)
        tracker.add(10.0, "sid-3", tiebreak=3.0)
        tracker.add(10.0, "sid-7", tiebreak=7.0)
        evicted = tracker.displace_oldest(10.0, "sid-9", tiebreak=9.0)
        assert evicted == "sid-3"
        assert sorted(tracker.payloads()) == ["sid-7", "sid-9"]

    @given(
        entries=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 10**6)),
            min_size=1,
            max_size=200,
        ),
        capacity=st.integers(1, 40),
    )
    def test_retention_is_deterministic_on_ties(self, entries, capacity):
        """With (timestamp, tiebreak) pairs, the tracker keeps exactly the
        lexicographically largest ``capacity`` pairs."""
        tracker = MostRecentTracker(capacity)
        for position, (timestamp, tiebreak) in enumerate(entries):
            if not tracker.is_full:
                tracker.add(float(timestamp), position, tiebreak=float(tiebreak))
            else:
                root_timestamp, root_tiebreak, _ = tracker._heap.peek()
                if (float(timestamp), float(tiebreak)) > (
                    root_timestamp,
                    root_tiebreak,
                ):
                    tracker.displace_oldest(
                        float(timestamp), position, tiebreak=float(tiebreak)
                    )
        kept = sorted(
            (entries[p][0], entries[p][1]) for p in tracker.payloads()
        )
        expected = sorted(entries)[-len(kept) :]
        assert kept == [tuple(e) for e in expected]

    @given(
        timestamps=st.lists(st.integers(0, 10**6), min_size=1, max_size=200),
        capacity=st.integers(1, 40),
    )
    def test_retains_the_most_recent_set(self, timestamps, capacity):
        tracker = MostRecentTracker(capacity)
        for position, timestamp in enumerate(timestamps):
            if not tracker.is_full:
                tracker.add(float(timestamp), position)
            elif timestamp > tracker.oldest_timestamp():
                tracker.displace_oldest(float(timestamp), position)
        kept = sorted(timestamps[p] for p in tracker.payloads())
        expected = sorted(timestamps)[-len(kept) :]
        assert kept == expected
