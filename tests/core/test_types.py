"""Tests for the fundamental data types."""

from __future__ import annotations

import pytest

from repro.core.types import (
    Click,
    EvolvingSession,
    clicks_to_sessions,
    insertion_orders,
    unique_items_reversed,
)


class TestClick:
    def test_as_tuple_roundtrip(self):
        click = Click(1, 2, 3)
        assert click.as_tuple() == (1, 2, 3)

    def test_clicks_are_hashable_and_frozen(self):
        click = Click(1, 2, 3)
        assert click in {click}
        with pytest.raises(AttributeError):
            click.item_id = 5


class TestEvolvingSession:
    def test_add_click_appends_and_tracks_time(self):
        session = EvolvingSession(session_id=7)
        session.add_click(10, timestamp=100)
        session.add_click(20, timestamp=200)
        assert session.items == [10, 20]
        assert session.last_updated == 200
        assert session.most_recent_item == 20
        assert len(session) == 2

    def test_history_capped_at_max_items(self):
        session = EvolvingSession(session_id=1, max_items=3)
        for item in range(10):
            session.add_click(item, timestamp=item)
        assert session.items == [7, 8, 9]

    def test_most_recent_item_on_empty_raises(self):
        with pytest.raises(ValueError):
            EvolvingSession(session_id=1).most_recent_item

    def test_out_of_order_timestamps_keep_max(self):
        session = EvolvingSession(session_id=1)
        session.add_click(1, timestamp=500)
        session.add_click(2, timestamp=300)
        assert session.last_updated == 500


class TestInsertionOrders:
    def test_basic_ordering(self):
        assert insertion_orders([1, 2, 4]) == {1: 1, 2: 2, 4: 3}

    def test_duplicates_take_most_recent_position(self):
        assert insertion_orders([10, 20, 10]) == {10: 3, 20: 2}

    def test_empty(self):
        assert insertion_orders([]) == {}


class TestUniqueItemsReversed:
    def test_reverse_order_without_duplicates(self):
        assert list(unique_items_reversed([1, 2, 1, 3])) == [3, 1, 2]

    def test_matches_paper_traversal(self):
        # Most recent item first; a duplicate's first (most recent)
        # occurrence wins.
        assert list(unique_items_reversed([5, 5, 5])) == [5]


class TestClicksToSessions:
    def test_groups_and_sorts_by_time(self):
        clicks = [Click(1, 30, 3), Click(1, 10, 1), Click(2, 20, 2)]
        sessions = clicks_to_sessions(clicks)
        assert sessions == {1: [(1, 10), (3, 30)], 2: [(2, 20)]}
