"""Tests for the batched, sharded prediction engine and its LRU cache."""

from __future__ import annotations

import pytest

from repro.core.batch import BatchPredictionEngine, LRUResultCache, shard_index
from repro.core.predictor import SessionRecommender, batch_via_loop
from repro.core.types import ScoredItem
from repro.core.vmis import VMISKNN
from repro.data.synthetic import generate_clickstream


@pytest.fixture(scope="module")
def batch_clicks():
    return list(generate_clickstream(num_sessions=400, num_items=120, days=6, seed=9))


@pytest.fixture(scope="module")
def batch_model(batch_clicks):
    return VMISKNN.from_clicks(batch_clicks, m=60, k=30, exclude_current_items=True)


@pytest.fixture(scope="module")
def query_sessions(batch_clicks):
    """Growing prefixes replayed from the training data, plus edge cases."""
    by_session: dict[int, list[int]] = {}
    for click in batch_clicks:
        by_session.setdefault(click.session_id, []).append(click.item_id)
    sequences = list(by_session.values())[:60]
    queries: list[list[int]] = [[], [10**9]]  # empty + unknown item
    for sequence in sequences:
        for cut in range(1, len(sequence)):
            queries.append(sequence[:cut])
    queries.append(list(queries[5]))  # intra-batch duplicate
    return queries


def scored_pairs(ranked):
    return [(scored.item_id, scored.score) for scored in ranked]


class TestLRUResultCache:
    def test_put_get_roundtrip(self):
        cache = LRUResultCache(maxsize=4)
        key = cache.key([1, 2], 5)
        assert cache.get(key) is None
        cache.put(key, [ScoredItem(7, 1.5)])
        assert cache.get(key) == [ScoredItem(7, 1.5)]
        assert cache.hits == 1 and cache.misses == 1

    def test_returned_list_is_a_copy(self):
        cache = LRUResultCache(maxsize=4)
        key = cache.key([1], 5)
        cache.put(key, [ScoredItem(7, 1.5)])
        cache.get(key).append(ScoredItem(8, 0.1))
        assert cache.get(key) == [ScoredItem(7, 1.5)]

    def test_lru_eviction_order(self):
        cache = LRUResultCache(maxsize=2)
        keys = [cache.key([n], 5) for n in range(3)]
        cache.put(keys[0], [])
        cache.put(keys[1], [])
        cache.get(keys[0])  # refresh 0, making 1 the eviction victim
        cache.put(keys[2], [])
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) is not None
        assert len(cache) == 2

    def test_suffix_keying(self):
        cache = LRUResultCache(maxsize=4, suffix_length=2)
        assert cache.key([1, 2, 3, 4], 5) == cache.key([9, 3, 4], 5)
        assert cache.key([3, 4], 5) == ((3, 4), 5)
        assert cache.key([1, 2], 5) != cache.key([1, 2], 6)

    def test_info_counters(self):
        cache = LRUResultCache(maxsize=8)
        key = cache.key([1], 5)
        cache.get(key)
        cache.put(key, [])
        cache.get(key)
        info = cache.info()
        assert info["hits"] == 1 and info["misses"] == 1
        assert info["hit_rate"] == 0.5
        assert info["size"] == 1 and info["maxsize"] == 8

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            LRUResultCache(maxsize=0)
        with pytest.raises(ValueError):
            LRUResultCache(maxsize=4, suffix_length=0)


class TestShardIndex:
    def test_single_shard_is_the_original(self, batch_model):
        assert shard_index(batch_model.index, 1) == [batch_model.index]

    def test_shards_partition_postings(self, batch_model):
        index = batch_model.index
        shards = shard_index(index, 3)
        assert len(shards) == 3
        for item, postings in index.item_to_sessions.items():
            recombined = []
            for shard in shards:
                recombined.extend(shard.item_to_sessions.get(item, []))
            assert sorted(recombined) == sorted(postings)
        for number, shard in enumerate(shards):
            for postings in shard.item_to_sessions.values():
                assert all(sid % 3 == number for sid in postings)
                # newest-first order survives the split
                stamps = [index.session_timestamps[sid] for sid in postings]
                assert stamps == sorted(stamps, reverse=True)

    def test_shards_share_metadata(self, batch_model):
        shards = shard_index(batch_model.index, 2)
        for shard in shards:
            assert shard.session_timestamps is batch_model.index.session_timestamps
            assert shard.session_items is batch_model.index.session_items

    def test_rejects_bad_count(self, batch_model):
        with pytest.raises(ValueError):
            shard_index(batch_model.index, 0)


ENGINE_CONFIGS = [
    pytest.param(dict(num_workers=0), id="inline"),
    pytest.param(dict(num_workers=3), id="threads"),
    pytest.param(dict(num_workers=2, use_processes=True), id="processes"),
    pytest.param(dict(num_workers=3, shard_strategy="index"), id="index-sharded"),
    pytest.param(dict(num_workers=0, cache_size=0), id="no-cache"),
]


class TestBatchPredictionEngine:
    @pytest.mark.parametrize("config", ENGINE_CONFIGS)
    def test_batch_matches_serial_recommend(
        self, batch_model, query_sessions, config
    ):
        serial = [
            scored_pairs(batch_model.recommend(items, how_many=10))
            for items in query_sessions
        ]
        with BatchPredictionEngine(batch_model, **config) as engine:
            batched = engine.recommend_batch(query_sessions, how_many=10)
            assert [scored_pairs(ranked) for ranked in batched] == serial
            # a second pass (all-hot when cached) must be identical too
            again = engine.recommend_batch(query_sessions, how_many=10)
            assert [scored_pairs(ranked) for ranked in again] == serial

    def test_satisfies_protocol(self, batch_model):
        engine = BatchPredictionEngine(batch_model)
        assert isinstance(engine, SessionRecommender)

    def test_single_query_cache_hit_is_identical(self, batch_model, query_sessions):
        with BatchPredictionEngine(batch_model, cache_size=64) as engine:
            query = query_sessions[10]
            cold = engine.recommend(query, how_many=10)
            hot = engine.recommend(query, how_many=10)
            assert scored_pairs(hot) == scored_pairs(cold)
            assert engine.cache_info()["hits"] == 1

    def test_intra_batch_duplicates_computed_once(self, batch_model):
        with BatchPredictionEngine(batch_model, cache_size=64) as engine:
            query = [batch_model.index.session_items[0][0]]
            results = engine.recommend_batch([query, list(query), query])
            assert scored_pairs(results[0]) == scored_pairs(results[1])
            assert scored_pairs(results[1]) == scored_pairs(results[2])
            info = engine.cache_info()
            assert info["misses"] == 1 and info["size"] == 1

    def test_results_are_independent_copies(self, batch_model):
        with BatchPredictionEngine(batch_model, cache_size=64) as engine:
            query = [batch_model.index.session_items[0][0]]
            first, second = engine.recommend_batch([query, list(query)])
            first.clear()
            assert second  # sibling slot unaffected
            assert engine.recommend(query)  # cache unaffected

    def test_cache_disabled_reports_zeros(self, batch_model):
        engine = BatchPredictionEngine(batch_model, cache_size=0)
        engine.recommend([1, 2])
        info = engine.cache_info()
        assert info == {
            "hits": 0, "misses": 0, "hit_rate": 0.0, "size": 0, "maxsize": 0,
            "deadline_shed": 0,
        }

    def test_cache_suffix_collapses_long_histories(self, batch_model):
        with BatchPredictionEngine(
            batch_model, cache_size=64, cache_suffix=2
        ) as engine:
            long_query = [5, 6] + list(batch_model.index.session_items[3])
            engine.recommend(long_query, how_many=10)
            # different history, same last-2 suffix -> served from cache
            engine.recommend(long_query[2:], how_many=10)
            info = engine.cache_info()
            assert info["hits"] == 1 and info["misses"] == 1

    def test_close_is_idempotent(self, batch_model):
        engine = BatchPredictionEngine(batch_model, num_workers=2)
        engine.recommend_batch([[1], [2], [3]])
        engine.close()
        engine.close()

    def test_index_sharding_requires_fitted_vmis(self, batch_model):
        with pytest.raises(TypeError):
            BatchPredictionEngine(object(), shard_strategy="index")
        with pytest.raises(ValueError):
            BatchPredictionEngine(VMISKNN(m=10, k=5), shard_strategy="index")
        with pytest.raises(ValueError):
            BatchPredictionEngine(
                batch_model, shard_strategy="index", use_processes=True
            )

    def test_rejects_bad_arguments(self, batch_model):
        with pytest.raises(ValueError):
            BatchPredictionEngine(batch_model, num_workers=-1)
        with pytest.raises(ValueError):
            BatchPredictionEngine(batch_model, shard_strategy="rows")

    def test_empty_batch(self, batch_model):
        with BatchPredictionEngine(batch_model, num_workers=2) as engine:
            assert engine.recommend_batch([]) == []


def test_batch_via_loop_matches_manual_loop(batch_model, query_sessions):
    queries = query_sessions[:5]
    looped = batch_via_loop(batch_model, queries, how_many=7)
    assert [scored_pairs(r) for r in looped] == [
        scored_pairs(batch_model.recommend(q, how_many=7)) for q in queries
    ]


class TestBatchDeadlines:
    def make_clock(self):
        class FakeClock:
            now = 0.0

            def __call__(self):
                return self.now

        return FakeClock()

    def test_expired_deadline_sheds_all_compute(self, batch_model):
        from repro.core.deadline import Deadline

        clock = self.make_clock()
        with BatchPredictionEngine(batch_model, cache_size=64) as engine:
            results = engine.recommend_batch(
                [[1], [2], [3]], deadline=Deadline(0.0, clock=clock)
            )
            assert results == [[], [], []]
            assert engine.deadline_shed == 3
            assert engine.cache_info()["size"] == 0  # shed slots never cached

    def test_generous_deadline_matches_undeadlined_results(self, batch_model):
        from repro.core.deadline import Deadline

        with BatchPredictionEngine(batch_model, cache_size=0) as engine:
            plain = engine.recommend_batch([[1], [2]], how_many=5)
            timed = engine.recommend_batch(
                [[1], [2]], how_many=5, deadline=Deadline(60.0)
            )
            assert [scored_pairs(r) for r in timed] == [
                scored_pairs(r) for r in plain
            ]
            assert engine.deadline_shed == 0

    def test_cached_results_served_despite_expired_deadline(self, batch_model):
        from repro.core.deadline import Deadline

        clock = self.make_clock()
        with BatchPredictionEngine(batch_model, cache_size=64) as engine:
            warm = engine.recommend_batch([[1]], how_many=5)
            results = engine.recommend_batch(
                [[1]], how_many=5, deadline=Deadline(0.0, clock=clock)
            )
            # Finished work is never discarded; only new compute is shed.
            assert scored_pairs(results[0]) == scored_pairs(warm[0])
            assert engine.deadline_shed == 0

    def test_pooled_path_sheds_slow_chunks(self):
        from repro.core.deadline import Deadline

        class SlowRecommender:
            def recommend(self, session_items, how_many=21):
                import time

                time.sleep(0.2)
                return [ScoredItem(1, 1.0)]

            def recommend_batch(self, sessions, how_many=21):
                return [self.recommend(s, how_many) for s in sessions]

        with BatchPredictionEngine(
            SlowRecommender(), num_workers=2, cache_size=0
        ) as engine:
            results = engine.recommend_batch(
                [[1], [2], [3], [4]], deadline=Deadline(0.010)
            )
            # 200 ms of work per chunk against a 10 ms budget: all shed.
            assert results == [[], [], [], []]
            assert engine.deadline_shed == 4


class TestMergeCandidateTieBreak:
    """Pin the index-sharded merge's recency tie-break (batch.py).

    ``_merge_candidates`` truncates the shard union to the ``m`` most
    recent sessions with ``heapq.nlargest`` over the internal ids alone.
    That is only correct because build-time id assignment refines the
    ``(timestamp, external id)`` order — these tests keep both the
    refinement audit and the end-to-end equality honest on workloads
    where every timestamp ties.
    """

    @pytest.fixture(scope="class")
    def tied_model(self):
        from repro.testing.generators import WorkloadConfig, WorkloadGenerator

        generator = WorkloadGenerator(
            WorkloadConfig(
                seed=88,
                num_sessions=80,
                num_items=12,
                timestamp_granularity=10_000.0,  # every timestamp ties
            )
        )
        return VMISKNN.from_clicks(generator.clicks(), m=7, k=5)

    def test_id_order_refines_recency_order(self, tied_model):
        import heapq

        timestamps = tied_model.index.session_timestamps
        candidates = list(range(tied_model.index.num_sessions))
        by_id = heapq.nlargest(tied_model.m, candidates)
        by_recency = heapq.nlargest(
            tied_model.m, candidates, key=lambda sid: (timestamps[sid], sid)
        )
        assert by_id == by_recency

    def test_merge_truncation_keeps_most_recent_ids(self, tied_model):
        """A shard union larger than m keeps exactly the m largest ids,
        in descending order (the deterministic session-id tie-break)."""
        import heapq
        from unittest import mock

        union = {sid: 1.0 for sid in range(0, 30, 2)}
        shard_maps = [
            {sid: sim for sid, sim in union.items() if sid % 3 == r}
            for r in range(3)
        ]
        with mock.patch(
            "repro.core.batch.score_items", side_effect=score_spy
        ) as spy:
            BatchPredictionEngine._merge_candidates(
                tied_model, [0], shard_maps, how_many=5
            )
        (_, _, neighbors), _ = spy.call_args
        # Retention keeps the m largest ids; with every similarity tied,
        # the k-neighbour heap then breaks ties towards larger ids too.
        retained = heapq.nlargest(tied_model.m, union)
        expected_ids = heapq.nlargest(tied_model.k, retained)
        assert [sid for sid, _ in neighbors] == expected_ids

    def test_sharded_batch_matches_serial_on_tied_timestamps(self, tied_model):
        sequences = list(tied_model.index.session_items)[:40]
        queries = [list(items[: max(1, len(items) - 1)]) for items in sequences]
        serial = [
            scored_pairs(tied_model.recommend(items, how_many=10))
            for items in queries
        ]
        with BatchPredictionEngine(
            tied_model, num_workers=3, shard_strategy="index", cache_size=0
        ) as engine:
            batched = engine.recommend_batch(queries, how_many=10)
        assert [scored_pairs(ranked) for ranked in batched] == serial


def score_spy(index, items, neighbors, **kwargs):
    from repro.core.scoring import score_items

    return score_items(index, items, neighbors, **kwargs)
