"""Tests for the item-scoring step shared by VS-kNN and VMIS-kNN."""

from __future__ import annotations


import pytest

from repro.core.scoring import score_items, top_n
from repro.core.types import ScoredItem


class TestScoreItems:
    def test_empty_neighbors_yield_no_scores(self, toy_index):
        assert score_items(toy_index, [1, 2], []) == {}

    def test_vmis_scoring_uses_pure_idf(self, toy_index):
        # Single neighbour: session 2 = items (1, 2, 4); evolving [1, 2].
        # Most recent shared item has position 2 -> lambda = 0.8.
        scores = score_items(
            toy_index, [1, 2], [(2, 1.5)], match_weight="paper", style="vmis"
        )
        expected_4 = 0.8 * 1.5 * toy_index.idf(4)
        assert scores[4] == pytest.approx(expected_4)

    def test_vsknn_scoring_adds_one_to_idf_and_length_norm(self, toy_index):
        scores = score_items(
            toy_index, [1, 2], [(2, 1.5)], match_weight="paper", style="vsknn"
        )
        expected_4 = 0.8 * 1.5 * 0.5 * (1.0 + toy_index.idf(4))
        assert scores[4] == pytest.approx(expected_4)

    def test_neighbor_without_overlap_contributes_nothing(self, toy_index):
        # Session 3 = items (3, 4); evolving session [1, 5] shares nothing
        # (that combination is session 4; use a session id with no overlap).
        scores = score_items(toy_index, [2], [(4, 1.0)])  # session 4 = (1, 5)
        assert scores == {}

    def test_exclude_current_items(self, toy_index):
        scores = score_items(
            toy_index, [1, 2], [(2, 1.0)], exclude_current_items=True
        )
        assert 1 not in scores and 2 not in scores
        assert 4 in scores

    def test_zero_match_weight_skips_neighbor(self, toy_index):
        # An evolving session of length >= 10 pushes lambda to zero for a
        # neighbour whose most recent shared item is the latest click.
        long_session = [99] * 9 + [1]  # item 1 at position 10
        scores = score_items(toy_index, long_session, [(2, 1.0)])
        assert scores == {}

    def test_unknown_style_rejected(self, toy_index):
        with pytest.raises(ValueError):
            score_items(toy_index, [1], [(0, 1.0)], style="bogus")


class TestTopN:
    def test_orders_by_score_then_item_id(self):
        scores = {5: 1.0, 3: 2.0, 9: 2.0}
        ranked = top_n(scores, 3)
        assert ranked == [
            ScoredItem(3, 2.0),
            ScoredItem(9, 2.0),
            ScoredItem(5, 1.0),
        ]

    def test_truncates(self):
        ranked = top_n({i: float(i) for i in range(10)}, 4)
        assert [s.item_id for s in ranked] == [9, 8, 7, 6]

    def test_empty(self):
        assert top_n({}, 5) == []
