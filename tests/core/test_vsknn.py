"""Tests for the VS-kNN baseline (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.core.index import SessionIndex
from repro.core.vsknn import VSKNN


class TestVSKNNNeighbors:
    def test_empty_session_returns_nothing(self, toy_index):
        model = VSKNN(toy_index, m=10, k=5)
        assert model.find_neighbors([]) == []
        assert model.recommend([]) == []

    def test_unknown_items_return_nothing(self, toy_index):
        model = VSKNN(toy_index, m=10, k=5)
        assert model.find_neighbors([12345]) == []

    def test_similarity_matches_toy_example(self, toy_index):
        """Paper toy example: s = [1, 2, 4], h = [2, 4] -> similarity 5/3."""
        model = VSKNN(toy_index, m=10, k=10)
        neighbors = dict(model.find_neighbors([1, 2, 4]))
        # Session 5 contains items (2, 4, 5): shared 2 (pos 2) and 4 (pos 3)
        # -> 2/3 + 3/3 = 5/3.
        assert neighbors[5] == pytest.approx(5 / 3)

    def test_k_limits_neighbor_count(self, toy_index):
        model = VSKNN(toy_index, m=10, k=2)
        assert len(model.find_neighbors([1, 2, 4])) == 2

    def test_recency_sampling_prefers_recent_sessions(self, toy_clicks):
        index = SessionIndex.from_clicks(toy_clicks, max_sessions_per_item=2**62)
        model = VSKNN(index, m=2, k=10)
        neighbors = model.find_neighbors([2])
        # Sessions containing item 2 end at 101, 201, 302, 602; with m=2
        # only the two most recent (302, 602) may appear.
        timestamps = {index.timestamp_of(sid) for sid, _ in neighbors}
        assert timestamps <= {302, 602}

    def test_rejects_bad_hyperparameters(self, toy_index):
        with pytest.raises(ValueError):
            VSKNN(toy_index, m=0)
        with pytest.raises(ValueError):
            VSKNN(toy_index, k=0)


class TestVSKNNRecommend:
    def test_recommends_unseen_items_from_neighbors(self, toy_index):
        model = VSKNN(toy_index, m=10, k=10, exclude_current_items=True)
        recommended = {s.item_id for s in model.recommend([1, 2])}
        assert recommended  # sessions with 1 or 2 contain 3, 4, 5
        assert recommended.isdisjoint({1, 2})

    def test_scores_descending(self, toy_index):
        model = VSKNN(toy_index, m=10, k=10)
        scores = [s.score for s in model.recommend([1, 2, 4], how_many=10)]
        assert scores == sorted(scores, reverse=True)

    def test_how_many_respected(self, toy_index):
        model = VSKNN(toy_index, m=10, k=10)
        assert len(model.recommend([1, 2, 4], how_many=2)) == 2

    def test_from_clicks_builds_untruncated_storage(self, toy_clicks):
        model = VSKNN.from_clicks(toy_clicks, m=3, k=5)
        # Build-time cap must not truncate: item 2 occurs in 4 sessions.
        assert len(model.index.sessions_for_item(2)) == 4
