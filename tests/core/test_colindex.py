"""Edge cases for the columnar index and the vectorized scorer.

The broad bit-equality sweeps live in
``tests/testing/test_columnar_properties.py``; this file pins the narrow
edges by hand — empty posting runs, single-item sessions, ``m`` beyond
the build-time cap, the early-stopping cutoff landing exactly on the
heap-root timestamp, and the evolving-session length cap.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.colindex import ColumnarSessionIndex, VMISKNNColumnar
from repro.core.index import SessionIndex
from repro.core.types import Click
from repro.core.vmis import VMISKNN
from repro.core.weights import resolve_decay


def bit_pairs(neighbors):
    return [(sid, score.hex()) for sid, score in neighbors]


def bit_scores(ranked):
    return [(scored.item_id, scored.score.hex()) for scored in ranked]


def paired_models(clicks, build_m=50, **kwargs):
    """Heap-path and columnar models over the identical index contents."""
    index = SessionIndex.from_clicks(clicks, max_sessions_per_item=build_m)
    heap = VMISKNN(index, **kwargs)
    columnar = VMISKNNColumnar(
        ColumnarSessionIndex.from_session_index(index), **kwargs
    )
    return heap, columnar


class TestConstructionRoundtrip:
    def test_session_index_roundtrip(self, toy_index):
        columnar = ColumnarSessionIndex.from_session_index(toy_index)
        restored = columnar.to_session_index()
        assert restored.item_to_sessions == toy_index.item_to_sessions
        assert restored.session_items == toy_index.session_items
        assert restored.item_session_counts == toy_index.item_session_counts
        assert restored.max_sessions_per_item == toy_index.max_sessions_per_item
        # Timestamps come back as floats (the columnar store is float64).
        assert restored.session_timestamps == [
            float(t) for t in toy_index.session_timestamps
        ]

    def test_surface_matches_session_index(self, toy_index):
        columnar = ColumnarSessionIndex.from_session_index(toy_index)
        assert columnar.num_sessions == toy_index.num_sessions
        assert columnar.num_items == toy_index.num_items
        assert columnar.memory_profile() == toy_index.memory_profile()
        for item in list(toy_index.item_to_sessions) + [10**9]:
            assert columnar.sessions_for_item(item) == (
                toy_index.sessions_for_item(item)
            )
            assert columnar.idf(item) == toy_index.idf(item)
        for sid in range(toy_index.num_sessions):
            assert columnar.timestamp_of(sid) == toy_index.timestamp_of(sid)
            assert columnar.items_of(sid) == toy_index.items_of(sid)

    def test_ascending_mirror_reverses_each_run(self, toy_index):
        columnar = ColumnarSessionIndex.from_session_index(toy_index)
        total = columnar.posting_sessions.shape[0]
        offsets = columnar.posting_offsets.tolist()
        for row in range(columnar.num_items):
            start, end = offsets[row], offsets[row + 1]
            run = columnar.posting_sessions[start:end].tolist()
            mirrored = columnar.posting_sessions_asc[
                total - end : total - start
            ].tolist()
            assert mirrored == run[::-1]

    def test_posting_timestamps_derived_from_sessions(self, toy_index):
        columnar = ColumnarSessionIndex.from_session_index(toy_index)
        expected = columnar.session_timestamps[columnar.posting_sessions]
        assert np.array_equal(columnar.posting_timestamps, expected)


class TestConstructionValidation:
    def _kwargs(self, **overrides):
        base = dict(
            item_ids=[1],
            item_frequencies=[2],
            posting_offsets=[0, 2],
            posting_sessions=[1, 0],
            session_timestamps=[100.0, 200.0],
            session_item_offsets=[0, 1, 2],
            session_item_values=[1, 1],
            max_sessions_per_item=10,
        )
        base.update(overrides)
        return base

    def test_valid_baseline_constructs(self):
        ColumnarSessionIndex(**self._kwargs())

    def test_offsets_must_start_at_zero(self):
        with pytest.raises(ValueError, match="start at 0"):
            ColumnarSessionIndex(**self._kwargs(posting_offsets=[1, 2]))

    def test_offsets_must_be_monotone(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            ColumnarSessionIndex(
                **self._kwargs(
                    item_ids=[1, 2],
                    item_frequencies=[2, 1],
                    posting_offsets=[0, 2, 1],
                )
            )

    def test_offsets_must_end_at_payload_length(self):
        with pytest.raises(ValueError, match="payload length"):
            ColumnarSessionIndex(**self._kwargs(posting_offsets=[0, 1]))

    def test_item_ids_must_ascend(self):
        with pytest.raises(ValueError, match="ascending"):
            ColumnarSessionIndex(
                **self._kwargs(
                    item_ids=[2, 1],
                    item_frequencies=[1, 1],
                    posting_offsets=[0, 1, 2],
                    posting_sessions=[1, 0],
                    session_item_values=[2, 1],
                )
            )

    def test_posting_ids_must_be_in_range(self):
        with pytest.raises(ValueError, match="out of range"):
            ColumnarSessionIndex(**self._kwargs(posting_sessions=[5, 0]))

    def test_runs_must_descend(self):
        with pytest.raises(ValueError, match="descending"):
            ColumnarSessionIndex(**self._kwargs(posting_sessions=[0, 1]))

    def test_runs_must_be_distinct(self):
        with pytest.raises(ValueError, match="descending"):
            ColumnarSessionIndex(**self._kwargs(posting_sessions=[1, 1]))

    def test_session_items_need_a_posting_row(self):
        with pytest.raises(ValueError, match="no posting row"):
            ColumnarSessionIndex(**self._kwargs(session_item_values=[1, 7]))


class TestEmptyPostingRuns:
    """An item row whose run is empty (all postings aged out) is legal."""

    def _with_empty_run(self):
        return ColumnarSessionIndex(
            item_ids=[1, 2],
            item_frequencies=[2, 3],
            posting_offsets=[0, 0, 2],  # item 1's run is empty
            posting_sessions=[1, 0],
            session_timestamps=[100.0, 200.0],
            session_item_offsets=[0, 1, 2],
            session_item_values=[2, 2],
            max_sessions_per_item=10,
        )

    def test_empty_run_queries(self):
        index = self._with_empty_run()
        assert index.sessions_for_item(1) == []
        assert index.sessions_for_item(2) == [1, 0]
        model = VMISKNNColumnar(index, m=5, k=5)
        # Query touching only the empty run finds no neighbours at all.
        assert model.find_neighbors([1]) == []
        assert model.recommend([1]) == []
        # Mixed query skips the empty run but scores the populated one.
        assert [sid for sid, _ in model.find_neighbors([1, 2])] == [1, 0]

    def test_leading_empty_run_validates(self):
        # Regression guard: the run-boundary mask must not wrap to -1
        # when the first run is empty.
        index = self._with_empty_run()
        assert index.posting_offsets.tolist() == [0, 0, 2]


class TestSingleItemSessions:
    def test_bit_equal_on_single_item_log(self):
        clicks = [Click(f"s{n}", n % 3, 100 + n) for n in range(9)]
        heap, columnar = paired_models(clicks, m=4, k=4)
        for query in ([0], [1], [2], [0, 1], [2, 0, 1], [9]):
            assert bit_pairs(columnar.find_neighbors(query)) == bit_pairs(
                heap.find_neighbors(query)
            )
            assert bit_scores(columnar.recommend(query)) == bit_scores(
                heap.recommend(query)
            )

    def test_single_item_query_uses_the_fast_path(self, toy_clicks):
        heap, columnar = paired_models(toy_clicks, m=3, k=10)
        for item in range(1, 6):
            assert bit_pairs(columnar.find_neighbors([item])) == bit_pairs(
                heap.find_neighbors([item])
            )


class TestSamplingEdges:
    def test_m_larger_than_build_cap(self, small_log):
        """Scoring m beyond the build-time posting cap must stay exact:
        the bounded window simply never fills."""
        clicks = list(small_log)
        index = SessionIndex.from_clicks(clicks, max_sessions_per_item=3)
        heap = VMISKNN(index, m=64, k=20)
        columnar = VMISKNNColumnar(
            ColumnarSessionIndex.from_session_index(index), m=64, k=20
        )
        sequences = list(small_log.session_item_sequences().values())[:15]
        for sequence in sequences:
            prefix = sequence[: max(1, len(sequence) // 2)]
            assert bit_pairs(columnar.find_neighbors(prefix)) == bit_pairs(
                heap.find_neighbors(prefix)
            )
            assert bit_scores(columnar.recommend(prefix)) == bit_scores(
                heap.recommend(prefix)
            )

    def test_early_stop_cutoff_exactly_at_heap_root_timestamp(self):
        """Posting entries whose timestamp ties the heap root exactly must
        still accumulate (the heap path stops on *strictly* older only).

        All four sessions tie on the timestamp, so after item 10 fills
        the m=2 sample the root timestamp equals every remaining posting
        timestamp; item 20's run for retained session 2 lands exactly on
        the cutoff and its weight must be added.
        """
        clicks = [
            Click("a", 10, 100),
            Click("b", 10, 100),
            Click("b", 20, 100),
            Click("c", 10, 100),
            Click("c", 20, 100),
            Click("d", 10, 100),
        ]
        heap, columnar = paired_models(clicks, m=2, k=4)
        query = [20, 10]
        expected = heap.find_neighbors(query)
        got = columnar.find_neighbors(query)
        assert bit_pairs(got) == bit_pairs(expected)
        # Retained = two largest internal ids {2 ("c"), 3 ("d")}; session
        # 2 shares both query items, so both decay weights accumulate.
        decay = resolve_decay("linear")
        w_20, w_10 = decay(1, 2), decay(2, 2)
        assert got == [(2, w_10 + w_20), (3, w_10)]

    def test_max_session_items_truncates_before_scoring(self, toy_clicks):
        heap, columnar = paired_models(
            toy_clicks, m=5, k=5, max_session_items=2
        )
        _, untruncated = paired_models(toy_clicks, m=5, k=5)
        long_query = [1, 3, 2, 4]
        assert bit_pairs(columnar.find_neighbors(long_query)) == bit_pairs(
            heap.find_neighbors(long_query)
        )
        # The cap keeps the *newest* suffix, exactly once.
        assert bit_pairs(columnar.find_neighbors(long_query)) == bit_pairs(
            untruncated.find_neighbors(long_query[-2:])
        )
        assert bit_scores(columnar.recommend(long_query)) == bit_scores(
            heap.recommend(long_query)
        )


class TestScorerContract:
    def test_constructor_rejects_bad_params(self):
        with pytest.raises(ValueError, match="m and k must be >= 1"):
            VMISKNNColumnar(m=0, k=5)
        with pytest.raises(ValueError, match="m and k must be >= 1"):
            VMISKNNColumnar(m=5, k=0)
        with pytest.raises(ValueError, match="max_session_items"):
            VMISKNNColumnar(max_session_items=0)

    def test_unfit_model_raises(self):
        with pytest.raises(RuntimeError, match="fit"):
            VMISKNNColumnar().find_neighbors([1])

    def test_unknown_scoring_style_rejected(self, toy_index):
        model = VMISKNNColumnar(
            ColumnarSessionIndex.from_session_index(toy_index),
            scoring_style="cosine",
        )
        with pytest.raises(ValueError, match="unknown scoring style"):
            model.recommend([1])

    def test_empty_and_unknown_queries(self, toy_index):
        model = VMISKNNColumnar(
            ColumnarSessionIndex.from_session_index(toy_index), m=5, k=5
        )
        assert model.find_neighbors([]) == []
        assert model.recommend([]) == []
        assert model.find_neighbors([10**9]) == []
        assert model.recommend([10**9]) == []

    def test_outputs_are_python_scalars(self, toy_index):
        model = VMISKNNColumnar(
            ColumnarSessionIndex.from_session_index(toy_index), m=5, k=5
        )
        for sid, score in model.find_neighbors([1, 2]):
            assert type(sid) is int and type(score) is float
        for scored in model.recommend([1, 2]):
            assert type(scored.item_id) is int
            assert type(scored.score) is float

    def test_fit_builds_with_the_model_m(self, toy_clicks):
        model = VMISKNNColumnar(m=2, k=5).fit(toy_clicks)
        assert model.index is not None
        assert model.index.max_sessions_per_item == 2
        heap = VMISKNN.from_clicks(toy_clicks, m=2, k=5)
        for query in ([1], [2, 4], [5, 2]):
            assert bit_pairs(model.find_neighbors(query)) == bit_pairs(
                heap.find_neighbors(query)
            )
