"""Tests for the embedded KV store, including model-based property tests."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore.store import KVStore


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestBasicOperations:
    def test_read_your_writes(self):
        store = KVStore()
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"

    def test_missing_key(self):
        assert KVStore().get(b"missing") is None

    def test_overwrite(self):
        store = KVStore()
        store.put(b"k", b"v1")
        store.put(b"k", b"v2")
        assert store.get(b"k") == b"v2"

    def test_delete(self):
        store = KVStore()
        store.put(b"k", b"v")
        assert store.delete(b"k") is True
        assert store.get(b"k") is None
        assert store.delete(b"k") is False

    def test_keys_lists_live_entries(self):
        store = KVStore()
        store.put(b"a", b"1")
        store.put(b"b", b"2")
        assert sorted(store.keys()) == [b"a", b"b"]


class TestTTL:
    def test_entry_expires(self):
        clock = FakeClock()
        store = KVStore(default_ttl=100, clock=clock)
        store.put(b"k", b"v")
        clock.advance(99)
        assert store.get(b"k") == b"v"
        clock.advance(2)
        assert store.get(b"k") is None

    def test_per_put_ttl_overrides_default(self):
        clock = FakeClock()
        store = KVStore(default_ttl=100, clock=clock)
        store.put(b"k", b"v", ttl=10)
        clock.advance(11)
        assert store.get(b"k") is None

    def test_touch_refreshes(self):
        clock = FakeClock()
        store = KVStore(default_ttl=100, clock=clock)
        store.put(b"k", b"v")
        clock.advance(90)
        assert store.touch(b"k") is True
        clock.advance(90)
        assert store.get(b"k") == b"v"

    def test_touch_of_expired_entry_fails(self):
        clock = FakeClock()
        store = KVStore(default_ttl=10, clock=clock)
        store.put(b"k", b"v")
        clock.advance(20)
        assert store.touch(b"k") is False

    def test_sweep_removes_expired(self):
        clock = FakeClock()
        store = KVStore(default_ttl=10, clock=clock)
        for i in range(5):
            store.put(f"k{i}".encode(), b"v")
        clock.advance(20)
        store.put(b"fresh", b"v")
        assert store.sweep() == 5
        assert len(store) == 1

    def test_delete_of_expired_entry_reports_false(self):
        clock = FakeClock()
        store = KVStore(default_ttl=10, clock=clock)
        store.put(b"k", b"v")
        clock.advance(20)
        assert store.delete(b"k") is False


class TestDurability:
    def test_wal_replay_restores_state(self, tmp_path):
        path = tmp_path / "store.wal"
        with KVStore(wal_path=path) as store:
            store.put(b"a", b"1")
            store.put(b"b", b"2")
            store.delete(b"a")
        with KVStore(wal_path=path) as restored:
            assert restored.get(b"a") is None
            assert restored.get(b"b") == b"2"

    def test_expired_entries_not_restored(self, tmp_path):
        path = tmp_path / "store.wal"
        clock = FakeClock()
        with KVStore(wal_path=path, default_ttl=10, clock=clock) as store:
            store.put(b"k", b"v")
        clock.advance(20)
        with KVStore(wal_path=path, clock=clock) as restored:
            assert restored.get(b"k") is None

    def test_compact_shrinks_wal(self, tmp_path):
        path = tmp_path / "store.wal"
        with KVStore(wal_path=path) as store:
            for _ in range(50):
                store.put(b"hot", b"x" * 100)
            before = path.stat().st_size
            store.compact()
            after = path.stat().st_size
            assert after < before
            assert store.get(b"hot") == b"x" * 100

    def test_state_survives_compaction_cycle(self, tmp_path):
        path = tmp_path / "store.wal"
        with KVStore(wal_path=path) as store:
            store.put(b"a", b"1")
            store.delete(b"a")
            store.put(b"b", b"2")
            store.compact()
        with KVStore(wal_path=path) as restored:
            assert restored.get(b"a") is None
            assert restored.get(b"b") == b"2"


class TestModelBased:
    @given(
        operations=st.lists(
            st.tuples(
                st.sampled_from(["put", "delete", "get"]),
                st.integers(0, 8),
                st.binary(max_size=12),
            ),
            max_size=80,
        )
    )
    @settings(max_examples=60)
    def test_matches_dict_model(self, operations):
        store = KVStore()
        model: dict[bytes, bytes] = {}
        for operation, key_number, value in operations:
            key = f"key{key_number}".encode()
            if operation == "put":
                store.put(key, value)
                model[key] = value
            elif operation == "delete":
                assert store.delete(key) == (key in model)
                model.pop(key, None)
            else:
                assert store.get(key) == model.get(key)

    @given(
        operations=st.lists(
            st.tuples(
                st.sampled_from(["put", "delete"]),
                st.integers(0, 5),
                st.binary(max_size=8),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=30)
    def test_wal_replay_equals_live_state(self, operations):
        # A fresh file per hypothesis example (tmp_path would be shared
        # across examples, leaking records between runs).
        import tempfile
        from pathlib import Path

        path = Path(tempfile.mkdtemp()) / "model.wal"
        live: dict[bytes, bytes | None] = {}
        with KVStore(wal_path=path) as store:
            for operation, key_number, value in operations:
                key = f"key{key_number}".encode()
                if operation == "put":
                    store.put(key, value)
                    live[key] = value
                else:
                    store.delete(key)
                    live[key] = None
        with KVStore(wal_path=path) as restored:
            for key, value in live.items():
                assert restored.get(key) == value
