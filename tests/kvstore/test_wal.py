"""Tests for the write-ahead log."""

from __future__ import annotations

from repro.kvstore.wal import OP_DELETE, OP_PUT, WalRecord, WriteAheadLog


class TestRecordEncoding:
    def test_put_roundtrip(self, tmp_path):
        path = tmp_path / "wal.bin"
        with WriteAheadLog(path) as wal:
            wal.append(WalRecord(OP_PUT, b"key", b"value", 123.5))
        records = list(WriteAheadLog.replay(path))
        assert len(records) == 1
        assert records[0].op == OP_PUT
        assert records[0].key == b"key"
        assert records[0].value == b"value"
        assert records[0].expire_at == 123.5

    def test_delete_roundtrip(self, tmp_path):
        path = tmp_path / "wal.bin"
        with WriteAheadLog(path) as wal:
            wal.append(WalRecord(OP_DELETE, b"gone"))
        records = list(WriteAheadLog.replay(path))
        assert records[0].op == OP_DELETE
        assert records[0].key == b"gone"

    def test_many_records_in_order(self, tmp_path):
        path = tmp_path / "wal.bin"
        with WriteAheadLog(path) as wal:
            for i in range(100):
                wal.append(WalRecord(OP_PUT, f"k{i}".encode(), f"v{i}".encode()))
        keys = [r.key for r in WriteAheadLog.replay(path)]
        assert keys == [f"k{i}".encode() for i in range(100)]

    def test_empty_values_allowed(self, tmp_path):
        path = tmp_path / "wal.bin"
        with WriteAheadLog(path) as wal:
            wal.append(WalRecord(OP_PUT, b"", b""))
        records = list(WriteAheadLog.replay(path))
        assert records[0].key == b"" and records[0].value == b""


class TestRecovery:
    def test_replay_of_missing_file_is_empty(self, tmp_path):
        assert list(WriteAheadLog.replay(tmp_path / "nope.bin")) == []

    def test_torn_tail_truncated(self, tmp_path):
        path = tmp_path / "wal.bin"
        with WriteAheadLog(path) as wal:
            wal.append(WalRecord(OP_PUT, b"good", b"1"))
            wal.append(WalRecord(OP_PUT, b"torn", b"2"))
        data = path.read_bytes()
        path.write_bytes(data[:-3])  # simulate crash mid-append
        records = list(WriteAheadLog.replay(path))
        assert [r.key for r in records] == [b"good"]

    def test_corrupted_tail_stops_replay(self, tmp_path):
        path = tmp_path / "wal.bin"
        with WriteAheadLog(path) as wal:
            wal.append(WalRecord(OP_PUT, b"a", b"1"))
            wal.append(WalRecord(OP_PUT, b"b", b"2"))
        data = bytearray(path.read_bytes())
        data[-2] ^= 0xFF  # flip a byte inside the second record
        path.write_bytes(bytes(data))
        records = list(WriteAheadLog.replay(path))
        assert [r.key for r in records] == [b"a"]

    def test_append_after_reopen(self, tmp_path):
        path = tmp_path / "wal.bin"
        with WriteAheadLog(path) as wal:
            wal.append(WalRecord(OP_PUT, b"first", b"1"))
        with WriteAheadLog(path) as wal:
            wal.append(WalRecord(OP_PUT, b"second", b"2"))
        keys = [r.key for r in WriteAheadLog.replay(path)]
        assert keys == [b"first", b"second"]
