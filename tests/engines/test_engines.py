"""Tests for the four alternative engines of the Figure 3(a) comparison."""

from __future__ import annotations

import pytest

from repro.core.index import SessionIndex
from repro.core.vmis import VMISKNN
from repro.engines import (
    DataflowVMIS,
    GarbageCollectorSimulator,
    HashmapVMIS,
    MemoryBudgetExceeded,
    ReferenceVSKNN,
    SQLVMIS,
)


@pytest.fixture(scope="module")
def engine_index(medium_log):
    return SessionIndex.from_clicks(medium_log, max_sessions_per_item=10**9)


@pytest.fixture(scope="module")
def test_prefixes(medium_log):
    sequences = list(medium_log.session_item_sequences().values())[:15]
    return [seq[: max(1, len(seq) // 2)] for seq in sequences]


class TestAllEnginesProduceResults:
    @pytest.mark.parametrize(
        "engine_cls", [ReferenceVSKNN, DataflowVMIS, HashmapVMIS, SQLVMIS]
    )
    def test_nonempty_descending_recommendations(
        self, engine_cls, engine_index, test_prefixes
    ):
        engine = engine_cls(engine_index, m=100, k=50)
        produced = 0
        for prefix in test_prefixes:
            results = engine.recommend(prefix, how_many=10)
            scores = [s.score for s in results]
            assert scores == sorted(scores, reverse=True)
            produced += bool(results)
        assert produced > 0

    @pytest.mark.parametrize(
        "engine_cls", [ReferenceVSKNN, DataflowVMIS, HashmapVMIS, SQLVMIS]
    )
    def test_empty_session(self, engine_cls, engine_index):
        assert engine_cls(engine_index, m=10, k=5).recommend([]) == []


class TestCrossEngineAgreement:
    """With m larger than every candidate set, all VMIS-style engines must
    rank the same items as the reference VMIS-kNN implementation."""

    def test_hashmap_matches_vmis(self, engine_index, test_prefixes):
        m = engine_index.num_sessions + 1
        vmis = VMISKNN(engine_index, m=m, k=50)
        hashmap = HashmapVMIS(engine_index, m=m, k=50)
        for prefix in test_prefixes:
            expected = [s.item_id for s in vmis.recommend(prefix, 10)]
            got = [s.item_id for s in hashmap.recommend(prefix, 10)]
            assert got == expected, prefix

    def test_dataflow_matches_vmis(self, engine_index, test_prefixes):
        m = engine_index.num_sessions + 1
        vmis = VMISKNN(engine_index, m=m, k=50)
        dataflow = DataflowVMIS(engine_index, m=m, k=50)
        for prefix in test_prefixes:
            dataflow.reset()
            expected = [s.item_id for s in vmis.recommend(prefix, 10)]
            got = [s.item_id for s in dataflow.recommend(prefix, 10)]
            assert got == expected, prefix

    def test_sql_matches_vmis(self, engine_index, test_prefixes):
        m = engine_index.num_sessions + 1
        vmis = VMISKNN(engine_index, m=m, k=50)
        sql = SQLVMIS(engine_index, m=m, k=50, intermediate_budget=10**9)
        for prefix in test_prefixes:
            expected = [s.item_id for s in vmis.recommend(prefix, 10)]
            got = [s.item_id for s in sql.recommend(prefix, 10)]
            assert got == expected, prefix


class TestDataflowIncrementality:
    def test_growing_session_reuses_state(self, engine_index):
        engine = DataflowVMIS(engine_index, m=50, k=20)
        sequence = next(
            items
            for items in (
                engine_index.items_of(sid)
                for sid in range(engine_index.num_sessions)
            )
            if len(items) >= 3
        )
        engine.recommend(list(sequence[:1]))
        state_after_one = engine.state_size()
        engine.recommend(list(sequence[:2]))  # extends -> incremental
        assert engine._flow is not None
        assert engine._flow.items == list(sequence[:2])
        assert engine.state_size()["similarities"] >= 0
        del state_after_one

    def test_non_prefix_input_resets(self, engine_index):
        engine = DataflowVMIS(engine_index, m=50, k=20)
        engine.recommend([1, 2])
        engine.recommend([3])
        assert engine._flow.items == [3]

    def test_retraction_on_weight_change(self, engine_index):
        # Appending a click changes all decay weights; the maintained sums
        # must equal a from-scratch computation.
        engine_a = DataflowVMIS(engine_index, m=100, k=30)
        engine_b = DataflowVMIS(engine_index, m=100, k=30)
        session = [1, 5, 9, 3]
        for cut in range(1, len(session) + 1):
            incremental = engine_a.recommend(session[:cut], 10)
            engine_b.reset()
            fresh = engine_b.recommend(session[:cut], 10)
            assert incremental == fresh


class TestMemoryBudgets:
    def test_reference_budget_enforced(self, engine_index):
        engine = ReferenceVSKNN(engine_index, m=100, k=50, intermediate_budget=5)
        # Any reasonably popular item should blow a 5-row budget.
        popular_item = max(
            engine_index.item_to_sessions,
            key=lambda item: len(engine_index.item_to_sessions[item]),
        )
        with pytest.raises(MemoryBudgetExceeded):
            engine.recommend([popular_item])

    def test_sql_budget_enforced(self, engine_index):
        engine = SQLVMIS(engine_index, m=100, k=50, intermediate_budget=10)
        popular_item = max(
            engine_index.item_to_sessions,
            key=lambda item: len(engine_index.item_to_sessions[item]),
        )
        with pytest.raises(MemoryBudgetExceeded):
            engine.recommend([popular_item])

    def test_budget_error_carries_counts(self):
        error = MemoryBudgetExceeded("X", rows=100, budget=10)
        assert error.engine == "X"
        assert error.rows == 100
        assert error.budget == 10


class TestGarbageCollectorSimulator:
    def test_collects_at_threshold(self):
        gc = GarbageCollectorSimulator(young_generation_size=10)
        for _ in range(25):
            gc.allocate(object())
        assert gc.collections == 2
        assert gc.objects_traced == 20

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            GarbageCollectorSimulator(young_generation_size=0)
