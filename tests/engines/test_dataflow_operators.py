"""Unit tests for the mini-dataflow operators themselves."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines.dataflow import Arrangement, KeyedSum


class TestArrangement:
    def test_insert_and_read(self):
        arrangement = Arrangement()
        arrangement.apply("k", "v", +1)
        assert arrangement.values_of("k") == {"v": 1}

    def test_retraction_cancels(self):
        arrangement = Arrangement()
        arrangement.apply("k", "v", +1)
        arrangement.apply("k", "v", -1)
        assert arrangement.values_of("k") == {}
        assert len(arrangement) == 0

    def test_multiplicities_accumulate(self):
        arrangement = Arrangement()
        arrangement.apply("k", "v", +1)
        arrangement.apply("k", "v", +1)
        assert arrangement.values_of("k") == {"v": 2}

    def test_update_counter(self):
        arrangement = Arrangement()
        for _ in range(5):
            arrangement.apply("k", "v", +1)
        assert arrangement.updates == 5

    @given(
        deltas=st.lists(
            st.tuples(
                st.integers(0, 3), st.integers(0, 3), st.sampled_from([1, -1])
            ),
            max_size=100,
        )
    )
    @settings(max_examples=60)
    def test_matches_multiset_model(self, deltas):
        arrangement = Arrangement()
        model: dict[tuple[int, int], int] = {}
        for key, value, diff in deltas:
            arrangement.apply(key, value, diff)
            model[(key, value)] = model.get((key, value), 0) + diff
        for (key, value), count in model.items():
            stored = arrangement.values_of(key).get(value, 0)
            assert stored == count


class TestKeyedSum:
    def test_sum_maintained(self):
        reducer = KeyedSum()
        reducer.apply("a", 2.0, +1)
        reducer.apply("a", 3.0, +1)
        assert reducer.sums["a"] == 5.0

    def test_retraction_subtracts(self):
        reducer = KeyedSum()
        reducer.apply("a", 2.0, +1)
        reducer.apply("a", 2.0, -1)
        assert "a" not in reducer.sums  # zeroed entries are dropped

    @given(
        deltas=st.lists(
            st.tuples(
                st.integers(0, 3),
                st.floats(0.01, 10.0, allow_nan=False),
                st.sampled_from([1, -1]),
            ),
            max_size=100,
        )
    )
    @settings(max_examples=60)
    def test_matches_float_model(self, deltas):
        reducer = KeyedSum()
        model: dict[int, float] = {}
        for key, amount, diff in deltas:
            reducer.apply(key, amount, diff)
            model[key] = model.get(key, 0.0) + amount * diff
        for key, total in model.items():
            assert abs(reducer.sums.get(key, 0.0) - total) < 1e-6
