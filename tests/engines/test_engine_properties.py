"""Property tests: every engine computes the same function as VMIS-kNN."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import SessionIndex
from repro.core.types import Click
from repro.core.vmis import VMISKNN
from repro.engines import DataflowVMIS, HashmapVMIS, SQLVMIS


def clicks_strategy():
    return st.lists(
        st.tuples(
            st.integers(0, 11),
            st.integers(0, 9),
            st.integers(0, 5_000),
        ),
        min_size=2,
        max_size=80,
    ).map(lambda rows: [Click(s, i, t) for s, i, t in rows])


def session_strategy():
    return st.lists(st.integers(0, 9), min_size=1, max_size=6)


class TestEnginesComputeTheSameFunction:
    """With m above every candidate-set size, all engines must agree with
    the reference VMIS-kNN on the final ranking (random inputs)."""

    @given(clicks=clicks_strategy(), session=session_strategy())
    @settings(max_examples=40, deadline=None)
    def test_hashmap_agrees(self, clicks, session):
        index = SessionIndex.from_clicks(clicks, max_sessions_per_item=10**6)
        m = index.num_sessions + 1
        expected = VMISKNN(index, m=m, k=10**6).recommend(session, 20)
        got = HashmapVMIS(index, m=m, k=10**6).recommend(session, 20)
        assert [s.item_id for s in got] == [s.item_id for s in expected]

    @given(clicks=clicks_strategy(), session=session_strategy())
    @settings(max_examples=40, deadline=None)
    def test_dataflow_agrees(self, clicks, session):
        index = SessionIndex.from_clicks(clicks, max_sessions_per_item=10**6)
        m = index.num_sessions + 1
        expected = VMISKNN(index, m=m, k=10**6).recommend(session, 20)
        engine = DataflowVMIS(index, m=m, k=10**6)
        got = engine.recommend(session, 20)
        assert [s.item_id for s in got] == [s.item_id for s in expected]

    @given(clicks=clicks_strategy(), session=session_strategy())
    @settings(max_examples=30, deadline=None)
    def test_sql_agrees(self, clicks, session):
        index = SessionIndex.from_clicks(clicks, max_sessions_per_item=10**6)
        m = index.num_sessions + 1
        expected = VMISKNN(index, m=m, k=10**6).recommend(session, 20)
        engine = SQLVMIS(index, m=m, k=10**6, intermediate_budget=10**9)
        got = engine.recommend(session, 20)
        assert [s.item_id for s in got] == [s.item_id for s in expected]

    @given(
        clicks=clicks_strategy(),
        session=session_strategy(),
        extension=st.lists(st.integers(0, 9), min_size=1, max_size=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_dataflow_incremental_equals_fresh(self, clicks, session, extension):
        """Feeding a session incrementally (prefix then extension) must
        equal computing the full session from scratch."""
        index = SessionIndex.from_clicks(clicks, max_sessions_per_item=10**6)
        engine = DataflowVMIS(index, m=10**6, k=10**6)
        engine.recommend(session, 20)  # warm incremental state
        incremental = engine.recommend(session + extension, 20)
        fresh_engine = DataflowVMIS(index, m=10**6, k=10**6)
        fresh = fresh_engine.recommend(session + extension, 20)
        assert incremental == fresh
