"""Numpy neural-network primitives for the session-based baselines.

The paper compares VMIS-kNN against GRU4Rec, NARM and STAMP. Re-running
the authors' GPU stacks is out of scope here, so the three architectures
are implemented from scratch on numpy with explicit forward/backward
passes. These primitives keep the models small and readable:

* :class:`Embedding` with sparse Adagrad updates (only touched rows);
* :class:`Dense` affine layers;
* :class:`GRUCell` with a single-step backward (BPTT(1)), the truncation
  the original GRU4Rec training scheme uses;
* :class:`Adagrad`, the optimiser of choice of the original papers;
* softmax cross-entropy over the full (small) catalog.
"""

from __future__ import annotations

import numpy as np


def glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


def softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max()
    exp = np.exp(shifted)
    return exp / exp.sum()


def softmax_cross_entropy(
    logits: np.ndarray, target: int
) -> tuple[float, np.ndarray]:
    """Loss and gradient d(loss)/d(logits) for one target class."""
    probabilities = softmax(logits)
    loss = -float(np.log(max(probabilities[target], 1e-12)))
    gradient = probabilities.copy()
    gradient[target] -= 1.0
    return loss, gradient


class Adagrad:
    """Per-parameter Adagrad with support for sparse (row) updates."""

    def __init__(self, learning_rate: float = 0.05, epsilon: float = 1e-8) -> None:
        self.learning_rate = learning_rate
        self.epsilon = epsilon
        self._accumulators: dict[int, np.ndarray] = {}

    def _accumulator(self, parameter: np.ndarray) -> np.ndarray:
        key = id(parameter)
        accumulator = self._accumulators.get(key)
        if accumulator is None:
            accumulator = np.zeros_like(parameter)
            self._accumulators[key] = accumulator
        return accumulator

    def update(self, parameter: np.ndarray, gradient: np.ndarray) -> None:
        """Dense in-place update."""
        accumulator = self._accumulator(parameter)
        accumulator += gradient * gradient
        parameter -= (
            self.learning_rate * gradient / (np.sqrt(accumulator) + self.epsilon)
        )

    def update_rows(
        self, parameter: np.ndarray, rows: np.ndarray, gradient: np.ndarray
    ) -> None:
        """Sparse update of selected rows (for embeddings)."""
        accumulator = self._accumulator(parameter)
        np.add.at(accumulator, rows, gradient * gradient)
        parameter[rows] -= (
            self.learning_rate
            * gradient
            / (np.sqrt(accumulator[rows]) + self.epsilon)
        )


class Embedding:
    """Item embedding table with gradient scatter."""

    def __init__(self, num_items: int, dim: int, rng: np.random.Generator) -> None:
        self.weight = rng.normal(0.0, 0.1, size=(num_items, dim))

    def lookup(self, item_indices: np.ndarray) -> np.ndarray:
        return self.weight[item_indices]

    def apply_gradient(
        self, optimizer: Adagrad, item_indices: np.ndarray, gradient: np.ndarray
    ) -> None:
        optimizer.update_rows(self.weight, item_indices, gradient)


class Dense:
    """Affine layer ``y = x W + b`` with cached-input backward."""

    def __init__(
        self, fan_in: int, fan_out: int, rng: np.random.Generator
    ) -> None:
        self.weight = glorot(rng, fan_in, fan_out)
        self.bias = np.zeros(fan_out)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x @ self.weight + self.bias

    def backward(
        self, x: np.ndarray, grad_output: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Returns (grad_x, grad_weight, grad_bias) for a single example."""
        grad_weight = np.outer(x, grad_output)
        grad_bias = grad_output
        grad_x = grad_output @ self.weight.T
        return grad_x, grad_weight, grad_bias

    def apply_gradient(
        self, optimizer: Adagrad, grad_weight: np.ndarray, grad_bias: np.ndarray
    ) -> None:
        optimizer.update(self.weight, grad_weight)
        optimizer.update(self.bias, grad_bias)


class GRUCell:
    """A gated recurrent unit with single-step (BPTT(1)) backward.

    Gates follow the standard formulation::

        z = sigmoid(x Wz + h Uz + bz)        (update gate)
        r = sigmoid(x Wr + h Ur + br)        (reset gate)
        c = tanh(x Wc + (r * h) Uc + bc)     (candidate)
        h' = (1 - z) * h + z * c
    """

    def __init__(
        self, input_dim: int, hidden_dim: int, rng: np.random.Generator
    ) -> None:
        self.hidden_dim = hidden_dim
        self.Wz = glorot(rng, input_dim, hidden_dim)
        self.Wr = glorot(rng, input_dim, hidden_dim)
        self.Wc = glorot(rng, input_dim, hidden_dim)
        self.Uz = glorot(rng, hidden_dim, hidden_dim)
        self.Ur = glorot(rng, hidden_dim, hidden_dim)
        self.Uc = glorot(rng, hidden_dim, hidden_dim)
        self.bz = np.zeros(hidden_dim)
        self.br = np.zeros(hidden_dim)
        self.bc = np.zeros(hidden_dim)

    def initial_state(self) -> np.ndarray:
        return np.zeros(self.hidden_dim)

    def forward(self, x: np.ndarray, h: np.ndarray) -> tuple[np.ndarray, dict]:
        """One step; returns (h_next, cache for backward)."""
        z = sigmoid(x @ self.Wz + h @ self.Uz + self.bz)
        r = sigmoid(x @ self.Wr + h @ self.Ur + self.br)
        candidate = np.tanh(x @ self.Wc + (r * h) @ self.Uc + self.bc)
        h_next = (1.0 - z) * h + z * candidate
        cache = {"x": x, "h": h, "z": z, "r": r, "c": candidate}
        return h_next, cache

    def backward(
        self, grad_h_next: np.ndarray, cache: dict
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Single-step backward: grads w.r.t. x and the parameters.

        The gradient into the previous hidden state is *not* propagated
        (BPTT truncated at one step), matching GRU4Rec's training scheme.
        """
        x, h, z, r, candidate = (
            cache["x"],
            cache["h"],
            cache["z"],
            cache["r"],
            cache["c"],
        )
        grad_c = grad_h_next * z
        grad_z = grad_h_next * (candidate - h)

        grad_c_pre = grad_c * (1.0 - candidate * candidate)
        grad_z_pre = grad_z * z * (1.0 - z)
        grad_rh = grad_c_pre @ self.Uc.T
        grad_r = grad_rh * h
        grad_r_pre = grad_r * r * (1.0 - r)

        grads = {
            "Wz": np.outer(x, grad_z_pre),
            "Wr": np.outer(x, grad_r_pre),
            "Wc": np.outer(x, grad_c_pre),
            "Uz": np.outer(h, grad_z_pre),
            "Ur": np.outer(h, grad_r_pre),
            "Uc": np.outer(r * h, grad_c_pre),
            "bz": grad_z_pre,
            "br": grad_r_pre,
            "bc": grad_c_pre,
        }
        grad_x = (
            grad_z_pre @ self.Wz.T
            + grad_r_pre @ self.Wr.T
            + grad_c_pre @ self.Wc.T
        )
        return grad_x, grads

    def apply_gradients(
        self, optimizer: Adagrad, grads: dict[str, np.ndarray]
    ) -> None:
        for name, gradient in grads.items():
            optimizer.update(getattr(self, name), gradient)
