"""Shared training utilities for the neural session models.

All three baselines consume the same supervision signal: within each
training session, every prefix predicts the immediately following item.
This module provides the vocabulary mapping, the (prefix, target) step
iterator and a small training-loop driver with epoch-level loss reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.core.types import Click, ItemId, clicks_to_sessions


@dataclass
class Vocabulary:
    """Bidirectional mapping between external item ids and model indices."""

    item_to_index: dict[ItemId, int]
    index_to_item: list[ItemId]

    @classmethod
    def from_clicks(cls, clicks: Sequence[Click]) -> "Vocabulary":
        items = sorted({click.item_id for click in clicks})
        return cls(
            item_to_index={item: i for i, item in enumerate(items)},
            index_to_item=items,
        )

    def __len__(self) -> int:
        return len(self.index_to_item)

    def encode(self, items: Sequence[ItemId]) -> list[int]:
        """Map external ids to indices, silently dropping unknown items."""
        return [
            self.item_to_index[item]
            for item in items
            if item in self.item_to_index
        ]


def training_sequences(
    clicks: Sequence[Click], vocabulary: Vocabulary, min_length: int = 2
) -> list[list[int]]:
    """Vocabulary-encoded session sequences with at least two items."""
    sequences = []
    for events in clicks_to_sessions(clicks).values():
        encoded = vocabulary.encode([item for _, item in events])
        if len(encoded) >= min_length:
            sequences.append(encoded)
    return sequences


def prediction_steps(
    sequences: Sequence[Sequence[int]],
) -> Iterator[tuple[list[int], int]]:
    """Yield every (prefix, next-item) supervision step."""
    for sequence in sequences:
        for cut in range(1, len(sequence)):
            yield list(sequence[:cut]), sequence[cut]


@dataclass
class TrainingLog:
    """Per-epoch average losses, for convergence checks in tests."""

    epoch_losses: list[float]

    @property
    def improved(self) -> bool:
        """Did the final epoch beat the first one?"""
        return len(self.epoch_losses) >= 2 and (
            self.epoch_losses[-1] < self.epoch_losses[0]
        )


def run_epochs(
    sequences: Sequence[Sequence[int]],
    step_fn: Callable[[Sequence[int], int], float],
    epochs: int,
    rng: np.random.Generator,
    max_steps_per_epoch: int | None = None,
) -> TrainingLog:
    """Drive ``step_fn(prefix, target) -> loss`` over shuffled epochs."""
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    order = np.arange(len(sequences))
    losses = []
    for _ in range(epochs):
        rng.shuffle(order)
        total, steps = 0.0, 0
        for sequence_index in order:
            sequence = sequences[sequence_index]
            for cut in range(1, len(sequence)):
                total += step_fn(sequence[:cut], sequence[cut])
                steps += 1
                if max_steps_per_epoch is not None and steps >= max_steps_per_epoch:
                    break
            if max_steps_per_epoch is not None and steps >= max_steps_per_epoch:
                break
        losses.append(total / max(steps, 1))
    return TrainingLog(epoch_losses=losses)
