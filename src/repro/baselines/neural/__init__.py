"""Numpy neural baselines: GRU4Rec, NARM, STAMP."""

from repro.baselines.neural.gru4rec import GRU4Rec
from repro.baselines.neural.layers import (
    Adagrad,
    Dense,
    Embedding,
    GRUCell,
    glorot,
    sigmoid,
    softmax,
    softmax_cross_entropy,
)
from repro.baselines.neural.narm import NARM
from repro.baselines.neural.stamp import STAMP
from repro.baselines.neural.training import (
    TrainingLog,
    Vocabulary,
    prediction_steps,
    run_epochs,
    training_sequences,
)

__all__ = [
    "Adagrad",
    "Dense",
    "Embedding",
    "GRU4Rec",
    "GRUCell",
    "NARM",
    "STAMP",
    "TrainingLog",
    "Vocabulary",
    "glorot",
    "prediction_steps",
    "run_epochs",
    "sigmoid",
    "softmax",
    "softmax_cross_entropy",
    "training_sequences",
]
