"""GRU4Rec (Hidasi et al., 2015) — numpy reimplementation.

The first RNN architecture for session-based recommendation: item
embeddings feed a GRU whose hidden state after the last click scores the
whole catalog through an output projection. Training follows the
original's truncated scheme — gradients flow through the output layer and
a single GRU step (BPTT(1)).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.predictor import TrainableMixin
from repro.core.types import Click, ItemId, ScoredItem
from repro.baselines.neural.layers import (
    Adagrad,
    Embedding,
    GRUCell,
    softmax_cross_entropy,
)
from repro.baselines.neural.training import (
    TrainingLog,
    Vocabulary,
    run_epochs,
    training_sequences,
)


class GRU4Rec(TrainableMixin):
    """Session-based RNN recommender."""

    name = "GRU4Rec"

    def __init__(
        self,
        embedding_dim: int = 32,
        hidden_dim: int = 48,
        epochs: int = 3,
        learning_rate: float = 0.08,
        max_steps_per_epoch: int | None = None,
        seed: int = 17,
        exclude_current_items: bool = False,
    ) -> None:
        self.embedding_dim = embedding_dim
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.max_steps_per_epoch = max_steps_per_epoch
        self.seed = seed
        self.exclude_current_items = exclude_current_items

        self.vocabulary: Vocabulary | None = None
        self.training_log: TrainingLog | None = None
        self._embedding: Embedding | None = None
        self._gru: GRUCell | None = None
        self._output_weight: np.ndarray | None = None
        self._output_bias: np.ndarray | None = None
        self._optimizer: Adagrad | None = None

    def fit(self, clicks: Sequence[Click]) -> "GRU4Rec":
        rng = np.random.default_rng(self.seed)
        self.vocabulary = Vocabulary.from_clicks(clicks)
        num_items = len(self.vocabulary)
        if num_items == 0:
            raise ValueError("no items in the training clicks")
        self._embedding = Embedding(num_items, self.embedding_dim, rng)
        self._gru = GRUCell(self.embedding_dim, self.hidden_dim, rng)
        self._output_weight = rng.normal(
            0.0, 0.1, size=(self.hidden_dim, num_items)
        )
        self._output_bias = np.zeros(num_items)
        self._optimizer = Adagrad(self.learning_rate)

        sequences = training_sequences(clicks, self.vocabulary)
        self.training_log = run_epochs(
            sequences,
            self._train_step,
            self.epochs,
            rng,
            self.max_steps_per_epoch,
        )
        return self

    def _encode(self, prefix: Sequence[int]) -> tuple[np.ndarray, dict, int]:
        """Run the GRU over the prefix; return (h, last cache, last index)."""
        h = self._gru.initial_state()
        cache: dict = {}
        last_index = prefix[-1]
        for index in prefix:
            x = self._embedding.weight[index]
            h, cache = self._gru.forward(x, h)
        return h, cache, last_index

    def _train_step(self, prefix: Sequence[int], target: int) -> float:
        h, cache, last_index = self._encode(prefix)
        logits = h @ self._output_weight + self._output_bias
        loss, grad_logits = softmax_cross_entropy(logits, target)

        # Output layer gradients.
        grad_output_weight = np.outer(h, grad_logits)
        grad_h = grad_logits @ self._output_weight.T
        self._optimizer.update(self._output_weight, grad_output_weight)
        self._optimizer.update(self._output_bias, grad_logits)

        # One GRU step and the last item's embedding (BPTT(1)).
        grad_x, gru_grads = self._gru.backward(grad_h, cache)
        self._gru.apply_gradients(self._optimizer, gru_grads)
        self._embedding.apply_gradient(
            self._optimizer, np.array([last_index]), grad_x[np.newaxis, :]
        )
        return loss

    def recommend(
        self, session_items: Sequence[ItemId], how_many: int = 21
    ) -> list[ScoredItem]:
        if self.vocabulary is None:
            raise RuntimeError("fit() must be called before recommend()")
        prefix = self.vocabulary.encode(session_items)
        if not prefix:
            return []
        h, _, _ = self._encode(prefix)
        logits = h @ self._output_weight + self._output_bias
        return self._rank(logits, session_items, how_many)

    def _rank(
        self,
        logits: np.ndarray,
        session_items: Sequence[ItemId],
        how_many: int,
    ) -> list[ScoredItem]:
        if self.exclude_current_items:
            for index in self.vocabulary.encode(session_items):
                logits[index] = -np.inf
        count = min(how_many, len(logits))
        top = np.argpartition(-logits, count - 1)[:count]
        top = top[np.argsort(-logits[top])]
        return [
            ScoredItem(self.vocabulary.index_to_item[i], float(logits[i]))
            for i in top
            if logits[i] > -np.inf
        ]
