"""STAMP (Liu et al., KDD 2018) — numpy reimplementation.

Short-Term Attention/Memory Priority: a feed-forward architecture that
attends over the session's item embeddings with a query built from the
session mean (general interest) and the last click (current interest),
then scores items by a trilinear composition::

    m_s = mean(x_1..x_L)                     (general memory)
    m_t = x_L                                (short-term memory)
    a_j = w0 . sigmoid(W1 x_j + W2 m_t + W3 m_s + ba)
    m_a = sum_j a_j x_j                      (attended memory)
    h_s = tanh(Ws m_a + bs),  h_t = tanh(Wt m_t + bt)
    score_i = x_i . (h_s * h_t)

Being fully feed-forward, STAMP admits an exact backward pass, which this
implementation performs (no truncation anywhere).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.predictor import TrainableMixin
from repro.core.types import Click, ItemId, ScoredItem
from repro.baselines.neural.layers import (
    Adagrad,
    Embedding,
    glorot,
    sigmoid,
    softmax_cross_entropy,
)
from repro.baselines.neural.training import (
    TrainingLog,
    Vocabulary,
    run_epochs,
    training_sequences,
)


class STAMP(TrainableMixin):
    """Attention-MLP session recommender with short-term priority."""

    name = "STAMP"

    def __init__(
        self,
        embedding_dim: int = 32,
        epochs: int = 3,
        learning_rate: float = 0.05,
        max_steps_per_epoch: int | None = None,
        seed: int = 23,
        exclude_current_items: bool = False,
    ) -> None:
        self.embedding_dim = embedding_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.max_steps_per_epoch = max_steps_per_epoch
        self.seed = seed
        self.exclude_current_items = exclude_current_items

        self.vocabulary: Vocabulary | None = None
        self.training_log: TrainingLog | None = None
        self._embedding: Embedding | None = None
        self._optimizer: Adagrad | None = None
        # Attention parameters.
        self._W1 = self._W2 = self._W3 = None
        self._w0 = self._ba = None
        # Output MLPs.
        self._Ws = self._bs = self._Wt = self._bt = None

    def fit(self, clicks: Sequence[Click]) -> "STAMP":
        rng = np.random.default_rng(self.seed)
        self.vocabulary = Vocabulary.from_clicks(clicks)
        num_items = len(self.vocabulary)
        if num_items == 0:
            raise ValueError("no items in the training clicks")
        d = self.embedding_dim
        self._embedding = Embedding(num_items, d, rng)
        self._W1 = glorot(rng, d, d)
        self._W2 = glorot(rng, d, d)
        self._W3 = glorot(rng, d, d)
        self._w0 = rng.normal(0.0, 0.1, size=d)
        self._ba = np.zeros(d)
        self._Ws = glorot(rng, d, d)
        self._bs = np.zeros(d)
        self._Wt = glorot(rng, d, d)
        self._bt = np.zeros(d)
        self._optimizer = Adagrad(self.learning_rate)

        sequences = training_sequences(clicks, self.vocabulary)
        self.training_log = run_epochs(
            sequences,
            self._train_step,
            self.epochs,
            rng,
            self.max_steps_per_epoch,
        )
        return self

    def _forward(self, prefix: Sequence[int]) -> dict:
        """Forward pass; returns every intermediate needed by backward."""
        X = self._embedding.weight[np.asarray(prefix)]  # (L, d)
        m_s = X.mean(axis=0)
        m_t = X[-1]
        pre = X @ self._W1 + m_t @ self._W2 + m_s @ self._W3 + self._ba  # (L, d)
        gate = sigmoid(pre)
        attention = gate @ self._w0  # (L,)
        m_a = attention @ X  # (d,)
        hs_pre = m_a @ self._Ws + self._bs
        h_s = np.tanh(hs_pre)
        ht_pre = m_t @ self._Wt + self._bt
        h_t = np.tanh(ht_pre)
        composed = h_s * h_t
        logits = self._embedding.weight @ composed
        return {
            "prefix": np.asarray(prefix),
            "X": X,
            "m_s": m_s,
            "m_t": m_t,
            "gate": gate,
            "attention": attention,
            "m_a": m_a,
            "h_s": h_s,
            "h_t": h_t,
            "composed": composed,
            "logits": logits,
        }

    def _train_step(self, prefix: Sequence[int], target: int) -> float:
        state = self._forward(prefix)
        loss, grad_logits = softmax_cross_entropy(state["logits"], target)
        E = self._embedding.weight
        X, gate, attention = state["X"], state["gate"], state["attention"]
        length = len(state["prefix"])

        # logits = E @ composed
        grad_composed = grad_logits @ E
        grad_E_out = np.outer(grad_logits, state["composed"])  # dense, (V, d)

        grad_h_s = grad_composed * state["h_t"]
        grad_h_t = grad_composed * state["h_s"]
        grad_hs_pre = grad_h_s * (1.0 - state["h_s"] ** 2)
        grad_ht_pre = grad_h_t * (1.0 - state["h_t"] ** 2)

        grad_Ws = np.outer(state["m_a"], grad_hs_pre)
        grad_Wt = np.outer(state["m_t"], grad_ht_pre)
        grad_m_a = grad_hs_pre @ self._Ws.T
        grad_m_t = grad_ht_pre @ self._Wt.T

        # m_a = attention @ X
        grad_attention = X @ grad_m_a  # (L,)
        grad_X = np.outer(attention, grad_m_a)  # (L, d)

        # attention = gate @ w0 ; gate = sigmoid(pre)
        grad_gate = np.outer(grad_attention, self._w0)
        grad_w0 = gate.T @ grad_attention
        grad_pre = grad_gate * gate * (1.0 - gate)  # (L, d)

        grad_W1 = X.T @ grad_pre
        grad_W2 = np.outer(state["m_t"], grad_pre.sum(axis=0))
        grad_W3 = np.outer(state["m_s"], grad_pre.sum(axis=0))
        grad_ba = grad_pre.sum(axis=0)
        grad_X += grad_pre @ self._W1.T
        grad_m_t += grad_pre.sum(axis=0) @ self._W2.T
        grad_m_s = grad_pre.sum(axis=0) @ self._W3.T

        # m_s = mean(X); m_t = X[-1]
        grad_X += grad_m_s / length
        grad_X[-1] += grad_m_t

        optimizer = self._optimizer
        optimizer.update(self._Ws, grad_Ws)
        optimizer.update(self._bs, grad_hs_pre)
        optimizer.update(self._Wt, grad_Wt)
        optimizer.update(self._bt, grad_ht_pre)
        optimizer.update(self._W1, grad_W1)
        optimizer.update(self._W2, grad_W2)
        optimizer.update(self._W3, grad_W3)
        optimizer.update(self._ba, grad_ba)
        optimizer.update(self._w0, grad_w0)
        # Embedding rows: the session's items (as inputs) plus the full
        # output gradient (logits touch every item's embedding).
        optimizer.update(E, grad_E_out)
        self._embedding.apply_gradient(optimizer, state["prefix"], grad_X)
        return loss

    def recommend(
        self, session_items: Sequence[ItemId], how_many: int = 21
    ) -> list[ScoredItem]:
        if self.vocabulary is None:
            raise RuntimeError("fit() must be called before recommend()")
        prefix = self.vocabulary.encode(session_items)
        if not prefix:
            return []
        logits = self._forward(prefix)["logits"].copy()
        if self.exclude_current_items:
            for index in set(prefix):
                logits[index] = -np.inf
        count = min(how_many, len(logits))
        top = np.argpartition(-logits, count - 1)[:count]
        top = top[np.argsort(-logits[top])]
        return [
            ScoredItem(self.vocabulary.index_to_item[i], float(logits[i]))
            for i in top
            if logits[i] > -np.inf
        ]
