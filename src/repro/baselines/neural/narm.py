"""NARM (Li et al., CIKM 2017) — numpy reimplementation.

Neural Attentive Recommendation Machine: a GRU encodes the session; a
*global* representation (the last hidden state) captures the user's overall
purpose while a *local* representation attends over all hidden states to
pick out the salient clicks. Both are concatenated and scored against the
item embeddings through a bilinear decoder::

    h_1..h_L = GRU(x_1..x_L)
    a_j = v . sigmoid(A1 h_L + A2 h_j)
    c_local = sum_j a_j h_j ;  c = [h_L ; c_local]
    score_i = x_i . (B c)

Training backpropagates exactly through the decoder and attention, and one
step into the GRU (the same BPTT(1) truncation used for GRU4Rec).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.predictor import TrainableMixin
from repro.core.types import Click, ItemId, ScoredItem
from repro.baselines.neural.layers import (
    Adagrad,
    Embedding,
    GRUCell,
    glorot,
    sigmoid,
    softmax_cross_entropy,
)
from repro.baselines.neural.training import (
    TrainingLog,
    Vocabulary,
    run_epochs,
    training_sequences,
)


class NARM(TrainableMixin):
    """Attentive GRU session recommender."""

    name = "NARM"

    def __init__(
        self,
        embedding_dim: int = 32,
        hidden_dim: int = 48,
        epochs: int = 3,
        learning_rate: float = 0.08,
        max_steps_per_epoch: int | None = None,
        seed: int = 29,
        exclude_current_items: bool = False,
    ) -> None:
        self.embedding_dim = embedding_dim
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.max_steps_per_epoch = max_steps_per_epoch
        self.seed = seed
        self.exclude_current_items = exclude_current_items

        self.vocabulary: Vocabulary | None = None
        self.training_log: TrainingLog | None = None
        self._embedding: Embedding | None = None
        self._gru: GRUCell | None = None
        self._A1 = self._A2 = self._v = None  # attention
        self._B = None  # bilinear decoder: (2*hidden, embedding_dim)
        self._optimizer: Adagrad | None = None

    def fit(self, clicks: Sequence[Click]) -> "NARM":
        rng = np.random.default_rng(self.seed)
        self.vocabulary = Vocabulary.from_clicks(clicks)
        num_items = len(self.vocabulary)
        if num_items == 0:
            raise ValueError("no items in the training clicks")
        self._embedding = Embedding(num_items, self.embedding_dim, rng)
        self._gru = GRUCell(self.embedding_dim, self.hidden_dim, rng)
        self._A1 = glorot(rng, self.hidden_dim, self.hidden_dim)
        self._A2 = glorot(rng, self.hidden_dim, self.hidden_dim)
        self._v = rng.normal(0.0, 0.1, size=self.hidden_dim)
        self._B = glorot(rng, 2 * self.hidden_dim, self.embedding_dim)
        self._optimizer = Adagrad(self.learning_rate)

        sequences = training_sequences(clicks, self.vocabulary)
        self.training_log = run_epochs(
            sequences,
            self._train_step,
            self.epochs,
            rng,
            self.max_steps_per_epoch,
        )
        return self

    def _forward(self, prefix: Sequence[int]) -> dict:
        indices = np.asarray(prefix)
        X = self._embedding.weight[indices]
        h = self._gru.initial_state()
        hidden_states = []
        caches = []
        for x in X:
            h, cache = self._gru.forward(x, h)
            hidden_states.append(h)
            caches.append(cache)
        H = np.asarray(hidden_states)  # (L, hidden)
        h_last = H[-1]
        pre = h_last @ self._A1 + H @ self._A2  # (L, hidden)
        gate = sigmoid(pre)
        attention = gate @ self._v  # (L,)
        c_local = attention @ H
        c = np.concatenate([h_last, c_local])  # (2*hidden,)
        decoded = c @ self._B  # (embedding_dim,)
        logits = self._embedding.weight @ decoded
        return {
            "indices": indices,
            "X": X,
            "H": H,
            "caches": caches,
            "gate": gate,
            "attention": attention,
            "c": c,
            "decoded": decoded,
            "logits": logits,
        }

    def _train_step(self, prefix: Sequence[int], target: int) -> float:
        state = self._forward(prefix)
        loss, grad_logits = softmax_cross_entropy(state["logits"], target)
        E = self._embedding.weight
        H, gate, attention = state["H"], state["gate"], state["attention"]
        hidden = self.hidden_dim
        h_last = H[-1]

        # logits = E @ decoded ; decoded = c @ B
        grad_decoded = grad_logits @ E
        grad_E_out = np.outer(grad_logits, state["decoded"])
        grad_B = np.outer(state["c"], grad_decoded)
        grad_c = grad_decoded @ self._B.T
        grad_h_last = grad_c[:hidden].copy()
        grad_c_local = grad_c[hidden:]

        # c_local = attention @ H
        grad_attention = H @ grad_c_local  # (L,)
        grad_H = np.outer(attention, grad_c_local)  # (L, hidden)

        # attention = sigmoid(h_last A1 + H A2) @ v
        grad_gate = np.outer(grad_attention, self._v)
        grad_v = gate.T @ grad_attention
        grad_pre = grad_gate * gate * (1.0 - gate)
        grad_A1 = np.outer(h_last, grad_pre.sum(axis=0))
        grad_A2 = H.T @ grad_pre
        grad_h_last += grad_pre.sum(axis=0) @ self._A1.T
        grad_H += grad_pre @ self._A2.T
        grad_H[-1] += grad_h_last

        optimizer = self._optimizer
        optimizer.update(self._B, grad_B)
        optimizer.update(self._A1, grad_A1)
        optimizer.update(self._A2, grad_A2)
        optimizer.update(self._v, grad_v)
        optimizer.update(E, grad_E_out)

        # Backpropagate each step's hidden-state gradient one GRU step
        # (BPTT(1)): parameters accumulate over steps, embeddings scatter.
        accumulated: dict[str, np.ndarray] = {}
        grad_X = np.zeros_like(state["X"])
        for position, cache in enumerate(state["caches"]):
            grad_x, gru_grads = self._gru.backward(grad_H[position], cache)
            grad_X[position] = grad_x
            for parameter_name, gradient in gru_grads.items():
                if parameter_name in accumulated:
                    accumulated[parameter_name] += gradient
                else:
                    accumulated[parameter_name] = gradient
        self._gru.apply_gradients(optimizer, accumulated)
        self._embedding.apply_gradient(optimizer, state["indices"], grad_X)
        return loss

    def recommend(
        self, session_items: Sequence[ItemId], how_many: int = 21
    ) -> list[ScoredItem]:
        if self.vocabulary is None:
            raise RuntimeError("fit() must be called before recommend()")
        prefix = self.vocabulary.encode(session_items)
        if not prefix:
            return []
        logits = self._forward(prefix)["logits"].copy()
        if self.exclude_current_items:
            for index in set(prefix):
                logits[index] = -np.inf
        count = min(how_many, len(logits))
        top = np.argpartition(-logits, count - 1)[:count]
        top = top[np.argsort(-logits[top])]
        return [
            ScoredItem(self.vocabulary.index_to_item[i], float(logits[i]))
            for i in top
            if logits[i] > -np.inf
        ]
