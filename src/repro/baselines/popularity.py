"""Popularity baseline: recommend the globally most-clicked items.

The weakest sensible baseline for session-based recommendation; any
session-aware method must clearly beat it (cf. the reality-check papers
[28, 30] the paper cites).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.predictor import TrainableMixin
from repro.core.types import Click, ItemId, ScoredItem


class PopularityRecommender(TrainableMixin):
    """Ranks items by click count, optionally excluding session items."""

    name = "popularity"

    def __init__(self, exclude_current_items: bool = False) -> None:
        self.exclude_current_items = exclude_current_items
        self._ranked: list[ScoredItem] = []

    def fit(self, clicks: Sequence[Click]) -> "PopularityRecommender":
        counts: dict[ItemId, int] = {}
        for click in clicks:
            counts[click.item_id] = counts.get(click.item_id, 0) + 1
        total = sum(counts.values()) or 1
        self._ranked = [
            ScoredItem(item, count / total)
            for item, count in sorted(
                counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        return self

    def recommend(
        self, session_items: Sequence[ItemId], how_many: int = 21
    ) -> list[ScoredItem]:
        if not self._ranked:
            raise RuntimeError("fit() must be called before recommend()")
        if not self.exclude_current_items:
            return self._ranked[:how_many]
        current = set(session_items)
        return [
            scored for scored in self._ranked if scored.item_id not in current
        ][:how_many]
