"""S-kNN: plain session-kNN without sequential weighting.

The unweighted ancestor of VS-kNN in the session-rec family: session
similarity is the binary cosine between item sets, with no decay on
insertion order and no match-weight function. Included as an ablation
point — the quality gap between S-kNN and VMIS-kNN isolates the value of
the sequence-aware weighting.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.core.index import SessionIndex
from repro.core.predictor import BatchMixin
from repro.core.scoring import top_n
from repro.core.types import Click, ItemId, ScoredItem


class SKNNRecommender(BatchMixin):
    """Cosine session-kNN over the most recent matching sessions."""

    name = "s-knn"

    def __init__(
        self,
        index: SessionIndex | None = None,
        m: int = 500,
        k: int = 100,
        exclude_current_items: bool = False,
    ) -> None:
        self.index = index
        self.m = m
        self.k = k
        self.exclude_current_items = exclude_current_items

    def fit(self, clicks: Iterable[Click]) -> "SKNNRecommender":
        """Build the session index from raw clicks; returns self."""
        self.index = SessionIndex.from_clicks(
            clicks, max_sessions_per_item=self.m
        )
        return self

    @classmethod
    def from_clicks(cls, clicks: Iterable[Click], m: int = 500, **kwargs) -> "SKNNRecommender":
        return cls(m=m, **kwargs).fit(clicks)

    def recommend(
        self, session_items: Sequence[ItemId], how_many: int = 21
    ) -> list[ScoredItem]:
        if not session_items:
            return []
        if self.index is None:
            raise RuntimeError("fit() must be called before recommending")
        index = self.index
        evolving = set(session_items)

        # Candidate overlap counts over per-item recent postings.
        overlap: dict[int, int] = {}
        for item in evolving:
            for session_id in index.sessions_for_item(item)[: self.m]:
                overlap[session_id] = overlap.get(session_id, 0) + 1

        # Binary cosine similarity, top-k.
        scored = sorted(
            (
                (
                    count / math.sqrt(len(evolving) * len(index.items_of(sid))),
                    index.timestamp_of(sid),
                    sid,
                )
                for sid, count in overlap.items()
            ),
            reverse=True,
        )[: self.k]

        scores: dict[ItemId, float] = {}
        current = evolving if self.exclude_current_items else frozenset()
        for similarity, _, session_id in scored:
            for item in index.items_of(session_id):
                if item not in current:
                    scores[item] = scores.get(item, 0.0) + similarity
        return top_n(scores, how_many)
