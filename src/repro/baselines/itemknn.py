"""Item-to-item collaborative filtering — the paper's *legacy* system.

The A/B test (§5.2.3) compares Serenade against "our existing legacy
recommendation system …, which applies a variant of classic item-to-item
collaborative filtering [Sarwar et al. 2001]". This module implements that
legacy control arm: cosine similarity between items over their session
co-occurrence vectors, recommending the items most similar to the one
currently viewed. It is *static* — it ignores everything about the
evolving session except the most recent item, which is exactly why the
session-aware Serenade variants beat it.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.predictor import TrainableMixin
from repro.core.types import Click, ItemId, ScoredItem, clicks_to_sessions


class ItemKNNRecommender(TrainableMixin):
    """Cosine item-to-item CF over session co-occurrences."""

    name = "item-knn (legacy)"

    def __init__(
        self,
        neighbors_per_item: int = 100,
        min_cooccurrence: int = 1,
        exclude_current_items: bool = False,
    ) -> None:
        """Args:
        neighbors_per_item: per-item neighbour list cap (memory bound).
        min_cooccurrence: co-click support threshold below which a pair
            is considered noise.
        exclude_current_items: drop session items from the results.
        """
        if neighbors_per_item < 1:
            raise ValueError("neighbors_per_item must be >= 1")
        self.neighbors_per_item = neighbors_per_item
        self.min_cooccurrence = min_cooccurrence
        self.exclude_current_items = exclude_current_items
        self._neighbors: dict[ItemId, list[ScoredItem]] = {}

    def fit(self, clicks: Sequence[Click]) -> "ItemKNNRecommender":
        cooccurrence: dict[ItemId, dict[ItemId, int]] = {}
        item_sessions: dict[ItemId, int] = {}
        for events in clicks_to_sessions(clicks).values():
            items = sorted({item for _, item in events})
            for item in items:
                item_sessions[item] = item_sessions.get(item, 0) + 1
            for position, left in enumerate(items):
                row = cooccurrence.setdefault(left, {})
                for right in items[position + 1 :]:
                    row[right] = row.get(right, 0) + 1

        self._neighbors = {}
        for left, row in cooccurrence.items():
            for right, count in row.items():
                if count < self.min_cooccurrence:
                    continue
                similarity = count / math.sqrt(
                    item_sessions[left] * item_sessions[right]
                )
                self._neighbors.setdefault(left, []).append(
                    ScoredItem(right, similarity)
                )
                self._neighbors.setdefault(right, []).append(
                    ScoredItem(left, similarity)
                )
        for neighbor_list in self._neighbors.values():
            neighbor_list.sort(key=lambda s: (-s.score, s.item_id))
            del neighbor_list[self.neighbors_per_item :]
        return self

    def recommend(
        self, session_items: Sequence[ItemId], how_many: int = 21
    ) -> list[ScoredItem]:
        if not session_items:
            return []
        candidates = self._neighbors.get(session_items[-1], [])
        if not self.exclude_current_items:
            return candidates[:how_many]
        current = set(session_items)
        return [
            scored for scored in candidates if scored.item_id not in current
        ][:how_many]
