"""STAN — Sequence and Time-Aware Neighborhood (Garg et al., SIGIR 2019).

The strongest published sibling of VS-kNN in the session-kNN family and a
common comparator in the studies the paper cites. STAN refines plain
session-kNN with three exponential-decay factors:

1. items of the *current* session are weighted by recency of their
   position (lambda_1);
2. candidate sessions are weighted by how recently they *occurred*
   relative to the current session (lambda_2);
3. items of a neighbour session are weighted by their positional
   proximity to the matched item (lambda_3).

Included here as an extension baseline: it lets users check that the
VMIS-kNN index serves other members of the algorithm family too (STAN
runs on the same :class:`SessionIndex`).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.core.index import SessionIndex
from repro.core.predictor import BatchMixin
from repro.core.scoring import top_n
from repro.core.types import Click, ItemId, ScoredItem, Timestamp


class STANRecommender(BatchMixin):
    """Sequence- and time-aware neighbourhood recommender.

    Args:
        index: the shared session index (posting lists + item sets).
        m: number of recent candidate sessions to score.
        k: number of neighbour sessions used for item scoring.
        lambda1: decay (in positions) for current-session item weights;
            larger = flatter (``None`` disables the factor).
        lambda2: decay (in seconds) for candidate-session age; larger =
            flatter (``None`` disables).
        lambda3: decay (in positions) for neighbour-item proximity to the
            matched item (``None`` disables).
    """

    name = "STAN"

    def __init__(
        self,
        index: SessionIndex | None = None,
        m: int = 500,
        k: int = 100,
        lambda1: float | None = 2.0,
        lambda2: float | None = 24 * 3600.0,
        lambda3: float | None = 2.0,
        exclude_current_items: bool = False,
    ) -> None:
        if m < 1 or k < 1:
            raise ValueError(f"m and k must be >= 1, got m={m}, k={k}")
        for name, value in (("lambda1", lambda1), ("lambda2", lambda2), ("lambda3", lambda3)):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive or None, got {value}")
        self.index = index
        self.m = m
        self.k = k
        self.lambda1 = lambda1
        self.lambda2 = lambda2
        self.lambda3 = lambda3
        self.exclude_current_items = exclude_current_items

    def fit(self, clicks: Iterable[Click]) -> "STANRecommender":
        """Build the session index from raw clicks; returns self."""
        self.index = SessionIndex.from_clicks(
            clicks, max_sessions_per_item=self.m
        )
        return self

    @classmethod
    def from_clicks(cls, clicks: Iterable[Click], m: int = 500, **kwargs) -> "STANRecommender":
        return cls(m=m, **kwargs).fit(clicks)

    def _item_weights(self, session_items: Sequence[ItemId]) -> dict[ItemId, float]:
        """Factor 1: recency-decayed weights of the current session."""
        length = len(session_items)
        weights: dict[ItemId, float] = {}
        for position, item in enumerate(session_items, start=1):
            if self.lambda1 is None:
                weight = 1.0
            else:
                weight = math.exp(-(length - position) / self.lambda1)
            weights[item] = max(weights.get(item, 0.0), weight)
        return weights

    def find_neighbors(
        self, session_items: Sequence[ItemId], now: Timestamp | None = None
    ) -> list[tuple[int, float]]:
        """Top-k candidate sessions under factors 1 and 2."""
        if not session_items:
            return []
        if self.index is None:
            raise RuntimeError("fit() must be called before recommending")
        index = self.index
        weights = self._item_weights(session_items)

        overlaps: dict[int, float] = {}
        for item, weight in weights.items():
            for session_id in index.sessions_for_item(item)[: self.m]:
                overlaps[session_id] = overlaps.get(session_id, 0.0) + weight
        if not overlaps:
            return []
        if now is None:
            now = max(index.timestamp_of(sid) for sid in overlaps)

        scored = []
        norm = math.sqrt(len(weights))
        for session_id, overlap in overlaps.items():
            similarity = overlap / (
                norm * math.sqrt(len(index.items_of(session_id)))
            )
            if self.lambda2 is not None:
                age = max(0, now - index.timestamp_of(session_id))
                similarity *= math.exp(-age / self.lambda2)
            scored.append((similarity, index.timestamp_of(session_id), session_id))
        scored.sort(reverse=True)
        return [(sid, sim) for sim, _, sid in scored[: self.k]]

    def recommend(
        self, session_items: Sequence[ItemId], how_many: int = 21
    ) -> list[ScoredItem]:
        neighbors = self.find_neighbors(session_items)
        if not neighbors:
            return []
        index = self.index
        current = set(session_items)
        scores: dict[ItemId, float] = {}
        for session_id, similarity in neighbors:
            neighbor_items = index.items_of(session_id)
            # Position of the most recent item shared with the session.
            match_position = max(
                (
                    position
                    for position, item in enumerate(neighbor_items)
                    if item in current
                ),
                default=None,
            )
            if match_position is None:
                continue
            for position, item in enumerate(neighbor_items):
                if self.exclude_current_items and item in current:
                    continue
                weight = similarity
                if self.lambda3 is not None:
                    distance = abs(position - match_position)
                    weight *= math.exp(-distance / self.lambda3)
                scores[item] = scores.get(item, 0.0) + weight
        return top_n(scores, how_many)
