"""First-order Markov / association-rule baseline.

Scores candidates by the conditional click-through frequency from the
session's most recent item — the classic "sequential rules" baseline of
the session-rec studies the paper builds on. A configurable window also
counts skip-one transitions with a decayed weight.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.predictor import TrainableMixin
from repro.core.types import Click, ItemId, ScoredItem, clicks_to_sessions


class MarkovRecommender(TrainableMixin):
    """Weighted item-to-next-item transition counts."""

    name = "markov"

    def __init__(self, window: int = 2, exclude_current_items: bool = False) -> None:
        """``window``: how many successors of each click to count; the
        w-th successor gets weight 1/w."""
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.exclude_current_items = exclude_current_items
        self._transitions: dict[ItemId, dict[ItemId, float]] = {}

    def fit(self, clicks: Sequence[Click]) -> "MarkovRecommender":
        self._transitions = {}
        for events in clicks_to_sessions(clicks).values():
            items = [item for _, item in events]
            for position, source in enumerate(items):
                successors = items[position + 1 : position + 1 + self.window]
                for distance, target in enumerate(successors, start=1):
                    if target == source:
                        continue
                    row = self._transitions.setdefault(source, {})
                    row[target] = row.get(target, 0.0) + 1.0 / distance
        return self

    def recommend(
        self, session_items: Sequence[ItemId], how_many: int = 21
    ) -> list[ScoredItem]:
        if not session_items:
            return []
        row = self._transitions.get(session_items[-1], {})
        current = set(session_items) if self.exclude_current_items else frozenset()
        ranked = sorted(
            (
                (score, item)
                for item, score in row.items()
                if item not in current
            ),
            key=lambda pair: (-pair[0], pair[1]),
        )
        return [ScoredItem(item, score) for score, item in ranked[:how_many]]
