"""Baseline recommenders: non-neural classics and numpy neural models."""

from repro.baselines.itemknn import ItemKNNRecommender
from repro.baselines.markov import MarkovRecommender
from repro.baselines.neural import GRU4Rec, NARM, STAMP
from repro.baselines.popularity import PopularityRecommender
from repro.baselines.sknn import SKNNRecommender
from repro.baselines.stan import STANRecommender

__all__ = [
    "GRU4Rec",
    "ItemKNNRecommender",
    "MarkovRecommender",
    "NARM",
    "PopularityRecommender",
    "SKNNRecommender",
    "STANRecommender",
    "STAMP",
]
