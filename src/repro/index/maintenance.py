"""Incremental index maintenance (the paper's stated future work, §7).

Serenade rebuilds its index from scratch once per day. The paper's future
work asks whether the index can instead be *incrementally maintained* as
new sessions arrive. :class:`IncrementalIndexer` implements exactly that:

* new finished sessions are appended with fresh internal ids (timestamps
  must be monotonically non-decreasing across batches, which daily batches
  satisfy by construction);
* their items are *prepended* to the posting lists (they are the most
  recent sessions) and lists are re-truncated to ``m``;
* true item frequencies ``h_i`` keep counting beyond truncation so idf
  stays unbiased.

The result after any number of ``apply_batch`` calls is identical to a
full rebuild over the concatenated click log (verified property-based in
the test suite), while touching only the new postings — the ablation
benchmark quantifies the saving.

For the streaming path (:mod:`repro.streaming`) the indexer is hardened
for **at-least-once** delivery: every applied session is fingerprinted
by ``(external id, timestamp, item sequence)``, and re-applying an
identical session — the replay-after-crash case — is an idempotent
no-op, counted but never double-indexed. Out-of-order sessions can be
skipped-and-counted (``on_stale="skip"``) instead of raising, which is
the defence-in-depth mode the streaming pipeline runs in. The
fingerprint map round-trips through :meth:`IncrementalIndexer.state_dict`
/ :meth:`IncrementalIndexer.restore` so a CLI consumer can resume against
a reloaded index artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.index import SessionIndex
from repro.core.types import Click, ItemId, SessionId, Timestamp, clicks_to_sessions

__all__ = ["ApplyReport", "IncrementalIndexer", "rebuild_equivalent"]


@dataclass(frozen=True, slots=True)
class ApplyReport:
    """Accounting for one ``apply_batch`` call (at-least-once bookkeeping)."""

    sessions_applied: int = 0
    #: exact replays of already indexed sessions, skipped idempotently.
    sessions_skipped_duplicate: int = 0
    #: sessions older than the newest indexed one, skipped under
    #: ``on_stale="skip"`` (always 0 under the default ``"raise"``).
    sessions_skipped_stale: int = 0

    @property
    def sessions_seen(self) -> int:
        return (
            self.sessions_applied
            + self.sessions_skipped_duplicate
            + self.sessions_skipped_stale
        )


class IncrementalIndexer:
    """Maintains a :class:`SessionIndex` under appended session batches."""

    def __init__(self, max_sessions_per_item: int = 5000) -> None:
        if max_sessions_per_item < 1:
            raise ValueError("max_sessions_per_item must be >= 1")
        self.max_sessions_per_item = max_sessions_per_item
        self._index = SessionIndex(
            item_to_sessions={},
            session_timestamps=[],
            session_items=[],
            item_session_counts={},
            max_sessions_per_item=max_sessions_per_item,
        )
        # Fingerprints of applied sessions: external id -> (timestamp,
        # clicked items in session order). An incoming session matching
        # its fingerprint exactly is a redelivery, not new data.
        self._applied: dict[SessionId, tuple[Timestamp, tuple[ItemId, ...]]] = {}
        self.last_report = ApplyReport()

    @property
    def index(self) -> SessionIndex:
        """The live index; valid to query between batches."""
        return self._index

    def apply_batch(self, clicks: Iterable[Click], on_stale: str = "raise") -> int:
        """Ingest one batch of finished sessions; returns sessions added.

        Exact redeliveries of already applied sessions (same external id,
        timestamp and item sequence) are skipped idempotently, so replay
        after an at-least-once consumer restart never double-counts.

        With ``on_stale="raise"`` (the default, the daily-batch contract)
        a batch whose oldest *new* session precedes the newest indexed
        session raises — the incremental scheme relies on append-only
        time order, which daily batch boundaries guarantee. With
        ``on_stale="skip"`` such sessions are dropped and counted in
        :attr:`last_report` instead (the streaming pipeline's
        defence-in-depth mode).
        """
        if on_stale not in ("raise", "skip"):
            raise ValueError(f"on_stale must be 'raise' or 'skip', got {on_stale!r}")
        grouped = clicks_to_sessions(clicks)
        batch: list[tuple[Timestamp, SessionId, list[ItemId]]] = []
        duplicates = 0
        for session_id, events in grouped.items():
            timestamp = max(ts for ts, _ in events)
            items = [item for _, item in events]
            if self._applied.get(session_id) == (timestamp, tuple(items)):
                duplicates += 1
                continue
            batch.append((timestamp, session_id, items))
        batch.sort(key=lambda row: (row[0], row[1]))

        index = self._index
        stale = 0
        if batch and index.session_timestamps:
            newest = index.session_timestamps[-1]
            if batch[0][0] < newest:
                if on_stale == "raise":
                    raise ValueError(
                        f"batch starts at {batch[0][0]} before newest indexed "
                        f"session at {newest}; batches must be time-ordered"
                    )
                fresh = [row for row in batch if row[0] >= newest]
                stale = len(batch) - len(fresh)
                batch = fresh

        m = self.max_sessions_per_item
        for timestamp, session_id, items in batch:
            internal_id = len(index.session_timestamps)
            distinct = tuple(dict.fromkeys(items))
            index.session_timestamps.append(timestamp)
            index.session_items.append(distinct)
            for item in distinct:
                postings = index.item_to_sessions.setdefault(item, [])
                postings.insert(0, internal_id)
                if len(postings) > m:
                    postings.pop()
                index.item_session_counts[item] = (
                    index.item_session_counts.get(item, 0) + 1
                )
            self._applied[session_id] = (timestamp, tuple(items))
        if batch:
            # New sessions shift |H| and counts; cached idf values are stale.
            index._idf_cache.clear()
        self.last_report = ApplyReport(
            sessions_applied=len(batch),
            sessions_skipped_duplicate=duplicates,
            sessions_skipped_stale=stale,
        )
        return len(batch)

    def applied_fingerprint(
        self, session_id: SessionId
    ) -> tuple[Timestamp, tuple[ItemId, ...]] | None:
        """The ``(timestamp, items)`` fingerprint of an applied session.

        ``None`` when the session has never been applied. The streaming
        pipeline uses this to tell a harmless redelivery (the click is
        inside the fingerprint) from a genuinely late click for an
        already sealed session.
        """
        return self._applied.get(session_id)

    @property
    def newest_timestamp(self) -> Timestamp | None:
        """Timestamp of the newest indexed session (``None`` when empty)."""
        if not self._index.session_timestamps:
            return None
        return self._index.session_timestamps[-1]

    # -- persistence (CLI resume) --------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """JSON-serialisable replay-protection state (pairs with the index)."""
        return {
            "max_sessions_per_item": self.max_sessions_per_item,
            "applied": [
                [session_id, timestamp, list(items)]
                for session_id, (timestamp, items) in sorted(self._applied.items())
            ],
        }

    @classmethod
    def restore(cls, index: SessionIndex, state: dict[str, Any]) -> IncrementalIndexer:
        """Rebuild an indexer around a loaded index + saved ``state_dict``."""
        indexer = cls(max_sessions_per_item=int(state["max_sessions_per_item"]))
        indexer._index = index
        indexer._applied = {
            int(session_id): (int(timestamp), tuple(int(i) for i in items))
            for session_id, timestamp, items in state["applied"]
        }
        return indexer


def rebuild_equivalent(
    batches: list[list[Click]], max_sessions_per_item: int = 5000
) -> SessionIndex:
    """Full rebuild over all batches — the oracle for equivalence tests."""
    all_clicks = [click for batch in batches for click in batch]
    return SessionIndex.from_clicks(all_clicks, max_sessions_per_item)
