"""Incremental index maintenance (the paper's stated future work, §7).

Serenade rebuilds its index from scratch once per day. The paper's future
work asks whether the index can instead be *incrementally maintained* as
new sessions arrive. :class:`IncrementalIndexer` implements exactly that:

* new finished sessions are appended with fresh internal ids (timestamps
  must be monotonically non-decreasing across batches, which daily batches
  satisfy by construction);
* their items are *prepended* to the posting lists (they are the most
  recent sessions) and lists are re-truncated to ``m``;
* true item frequencies ``h_i`` keep counting beyond truncation so idf
  stays unbiased.

The result after any number of ``apply_batch`` calls is identical to a
full rebuild over the concatenated click log (verified property-based in
the test suite), while touching only the new postings — the ablation
benchmark quantifies the saving.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.index import SessionIndex
from repro.core.types import Click, ItemId, SessionId, Timestamp, clicks_to_sessions


class IncrementalIndexer:
    """Maintains a :class:`SessionIndex` under appended session batches."""

    def __init__(self, max_sessions_per_item: int = 5000) -> None:
        if max_sessions_per_item < 1:
            raise ValueError("max_sessions_per_item must be >= 1")
        self.max_sessions_per_item = max_sessions_per_item
        self._index = SessionIndex(
            item_to_sessions={},
            session_timestamps=[],
            session_items=[],
            item_session_counts={},
            max_sessions_per_item=max_sessions_per_item,
        )

    @property
    def index(self) -> SessionIndex:
        """The live index; valid to query between batches."""
        return self._index

    def apply_batch(self, clicks: Iterable[Click]) -> int:
        """Ingest one batch of finished sessions; returns sessions added.

        Raises if a new session's timestamp precedes the newest already
        indexed session — the incremental scheme relies on append-only
        time order, which daily batch boundaries guarantee.
        """
        grouped = clicks_to_sessions(clicks)
        batch: list[tuple[Timestamp, SessionId, list[ItemId]]] = []
        for session_id, events in grouped.items():
            timestamp = max(ts for ts, _ in events)
            batch.append((timestamp, session_id, [item for _, item in events]))
        batch.sort(key=lambda row: (row[0], row[1]))

        index = self._index
        if batch and index.session_timestamps:
            newest = index.session_timestamps[-1]
            if batch[0][0] < newest:
                raise ValueError(
                    f"batch starts at {batch[0][0]} before newest indexed "
                    f"session at {newest}; batches must be time-ordered"
                )

        m = self.max_sessions_per_item
        for timestamp, _, items in batch:
            internal_id = len(index.session_timestamps)
            distinct = tuple(dict.fromkeys(items))
            index.session_timestamps.append(timestamp)
            index.session_items.append(distinct)
            for item in distinct:
                postings = index.item_to_sessions.setdefault(item, [])
                postings.insert(0, internal_id)
                if len(postings) > m:
                    postings.pop()
                index.item_session_counts[item] = (
                    index.item_session_counts.get(item, 0) + 1
                )
        # New sessions shift |H| and counts; cached idf values are stale.
        index._idf_cache.clear()
        return len(batch)


def rebuild_equivalent(
    batches: list[list[Click]], max_sessions_per_item: int = 5000
) -> SessionIndex:
    """Full rebuild over all batches — the oracle for equivalence tests."""
    all_clicks = [click for batch in batches for click in batch]
    return SessionIndex.from_clicks(all_clicks, max_sessions_per_item)
