"""Query-time compressed index (the paper's stated future work, §7).

"We intend to explore whether we can run our similarity computations on a
compressed version of the index." This module implements that exploration:
posting lists and session item sets are stored delta/varint-encoded in a
single byte arena and decoded on access, with a small LRU cache over hot
posting lists (item popularity is Zipfian, so a tiny cache absorbs most
decodes).

``CompressedSessionIndex`` exposes the same query interface as
:class:`~repro.core.index.SessionIndex`, so ``VMISKNN`` runs on either —
the ablation benchmark ``bench_ablation_index`` measures the memory/latency
trade-off.
"""

from __future__ import annotations

import math
from collections import OrderedDict

from repro.core.index import SessionIndex
from repro.core.types import ItemId, SessionId, Timestamp
from repro.index.serialization import (
    _decode_descending,
    _encode_descending,
    _read_varint,
    _write_varint,
)


class CompressedSessionIndex:
    """A drop-in, compressed substitute for :class:`SessionIndex`.

    Built from an existing uncompressed index via :meth:`from_index`.
    Decoded posting lists are cached in an LRU of ``cache_size`` entries.
    """

    def __init__(
        self,
        posting_arena: bytes,
        posting_offsets: dict[ItemId, int],
        items_arena: bytes,
        items_offsets: list[int],
        session_timestamps: list[Timestamp],
        item_session_counts: dict[ItemId, int],
        max_sessions_per_item: int,
        cache_size: int = 1024,
    ) -> None:
        self._posting_arena = posting_arena
        self._posting_offsets = posting_offsets
        self._items_arena = items_arena
        self._items_offsets = items_offsets
        self.session_timestamps = session_timestamps
        self.item_session_counts = item_session_counts
        self.max_sessions_per_item = max_sessions_per_item
        self._cache_size = cache_size
        self._cache: OrderedDict[ItemId, list[SessionId]] = OrderedDict()
        self._idf_cache: dict[ItemId, float] = {}

    @classmethod
    def from_index(
        cls, index: SessionIndex, cache_size: int = 1024
    ) -> "CompressedSessionIndex":
        """Compress an uncompressed index."""
        posting_arena = bytearray()
        posting_offsets: dict[ItemId, int] = {}
        for item, postings in index.item_to_sessions.items():
            posting_offsets[item] = len(posting_arena)
            posting_arena += _encode_descending(postings)

        items_arena = bytearray()
        items_offsets: list[int] = []
        for items in index.session_items:
            items_offsets.append(len(items_arena))
            _write_varint(items_arena, len(items))
            previous = 0
            for item in sorted(items):
                _write_varint(items_arena, item - previous)
                previous = item
        return cls(
            posting_arena=bytes(posting_arena),
            posting_offsets=posting_offsets,
            items_arena=bytes(items_arena),
            items_offsets=items_offsets,
            session_timestamps=list(index.session_timestamps),
            item_session_counts=dict(index.item_session_counts),
            max_sessions_per_item=index.max_sessions_per_item,
            cache_size=cache_size,
        )

    # -- SessionIndex query interface -------------------------------------

    @property
    def num_sessions(self) -> int:
        return len(self.session_timestamps)

    @property
    def num_items(self) -> int:
        return len(self._posting_offsets)

    def sessions_for_item(self, item_id: ItemId) -> list[SessionId]:
        """Decode (or fetch from cache) the posting list for an item."""
        cached = self._cache.get(item_id)
        if cached is not None:
            self._cache.move_to_end(item_id)
            return cached
        offset = self._posting_offsets.get(item_id)
        if offset is None:
            return []
        postings, _ = _decode_descending(self._posting_arena, offset)
        self._cache[item_id] = postings
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return postings

    def timestamp_of(self, session_id: SessionId) -> Timestamp:
        return self.session_timestamps[session_id]

    def items_of(self, session_id: SessionId) -> tuple[ItemId, ...]:
        """Decode a session's (sorted) distinct item set.

        Note: compression sorts items, losing click order within the
        session. Scoring only tests membership and looks up insertion
        orders of the *evolving* session, so results are unaffected.
        """
        offset = self._items_offsets[session_id]
        arena = self._items_arena
        count, offset = _read_varint(arena, offset)
        items = []
        previous = 0
        for _ in range(count):
            delta, offset = _read_varint(arena, offset)
            previous += delta
            items.append(previous)
        return tuple(items)

    def idf(self, item_id: ItemId) -> float:
        cached = self._idf_cache.get(item_id)
        if cached is not None:
            return cached
        count = self.item_session_counts.get(item_id, 0)
        value = math.log(self.num_sessions / count) if count else 0.0
        self._idf_cache[item_id] = value
        return value

    # -- introspection ------------------------------------------------------

    def compressed_bytes(self) -> int:
        """Size of the two byte arenas (the compressible payload)."""
        return len(self._posting_arena) + len(self._items_arena)


def uncompressed_payload_bytes(index: SessionIndex) -> int:
    """Comparable payload size if stored as flat 8-byte integers."""
    postings = sum(len(v) for v in index.item_to_sessions.values())
    stored_items = sum(len(v) + 1 for v in index.session_items)
    return 8 * (postings + stored_items)


def compression_ratio(index: SessionIndex, compressed: CompressedSessionIndex) -> float:
    """uncompressed / compressed payload size (higher is better)."""
    return uncompressed_payload_bytes(index) / max(1, compressed.compressed_bytes())
