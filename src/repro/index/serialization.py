"""On-disk index format (the Avro-artifact substitute).

The paper's Spark job writes the index as compressed Avro files which the
serving component ingests at startup. We use a self-contained binary
container with the same roles — versioned, schema'd, checksummed:

* magic ``VMIS`` + format version (u32 LE);
* a JSON header (counts, the build-time ``m``) with a u32 length prefix;
* the ``t`` timestamp array as u64 LE;
* per-session item tuples, varint-encoded;
* per-item posting lists, varint-encoded with the item's true session
  frequency ``h_i`` (needed for idf, which truncation would otherwise bias);
* a trailing CRC32 over everything before it.

Varints use the LEB128 scheme; posting lists are *descending*, so they are
stored as first value + positive deltas, which keeps varints short and is
the usual inverted-index trick.

The columnar index (:class:`~repro.core.colindex.ColumnarSessionIndex`)
has its own container, magic ``VMIC``: the same envelope (magic, u32
version, length-prefixed JSON header, trailing CRC32) around the raw
little-endian buffers in a fixed order — ``item_ids``,
``item_frequencies``, ``posting_offsets``, ``posting_sessions`` (int64),
``session_timestamps`` (float64), ``session_item_offsets``,
``session_item_values`` (int64). The parallel ``posting_timestamps``
array is *derived* on load (``t[posting_sessions]``), which both halves
the posting payload and guarantees the two arrays can never disagree.
:func:`serialize_artifact` / :func:`deserialize_artifact` dispatch on the
artifact type / magic so the registry can version either layout.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.colindex import ColumnarSessionIndex
from repro.core.index import SessionIndex

MAGIC = b"VMIS"
FORMAT_VERSION = 1

COLUMNAR_MAGIC = b"VMIC"
COLUMNAR_FORMAT_VERSION = 1

IndexArtifact = Union[SessionIndex, ColumnarSessionIndex]


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError(f"varints are unsigned, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(buffer: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = buffer[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def _encode_descending(values: list[int]) -> bytearray:
    """Delta-encode a strictly descending int list as varints."""
    out = bytearray()
    _write_varint(out, len(values))
    previous = None
    for value in values:
        if previous is None:
            _write_varint(out, value)
        else:
            delta = previous - value
            if delta <= 0:
                raise ValueError("posting list must be strictly descending")
            _write_varint(out, delta)
        previous = value
    return out


def _decode_descending(buffer: bytes, offset: int) -> tuple[list[int], int]:
    count, offset = _read_varint(buffer, offset)
    values: list[int] = []
    previous = 0
    for position in range(count):
        raw, offset = _read_varint(buffer, offset)
        previous = raw if position == 0 else previous - raw
        values.append(previous)
    return values, offset


def serialize_index(index: SessionIndex) -> bytes:
    """Serialize an index to the binary container format."""
    out = bytearray()
    out += MAGIC
    out += struct.pack("<I", FORMAT_VERSION)

    header = json.dumps(
        {
            "num_sessions": index.num_sessions,
            "num_items": index.num_items,
            "max_sessions_per_item": index.max_sessions_per_item,
        }
    ).encode("utf-8")
    out += struct.pack("<I", len(header))
    out += header

    out += struct.pack(f"<{index.num_sessions}Q", *index.session_timestamps)

    for items in index.session_items:
        _write_varint(out, len(items))
        for item in items:
            _write_varint(out, item)

    for item, postings in sorted(index.item_to_sessions.items()):
        _write_varint(out, item)
        _write_varint(out, index.item_session_counts[item])
        out += _encode_descending(postings)

    out += struct.pack("<I", zlib.crc32(bytes(out)) & 0xFFFFFFFF)
    return bytes(out)


def deserialize_index(data: bytes) -> SessionIndex:
    """Parse the binary container back into a :class:`SessionIndex`."""
    if len(data) < 12 or data[:4] != MAGIC:
        raise ValueError("not a VMIS index file (bad magic)")
    stored_crc = struct.unpack("<I", data[-4:])[0]
    actual_crc = zlib.crc32(data[:-4]) & 0xFFFFFFFF
    if stored_crc != actual_crc:
        raise ValueError(
            f"index file corrupted: crc {actual_crc:#x} != stored {stored_crc:#x}"
        )
    version = struct.unpack("<I", data[4:8])[0]
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported index format version {version}")

    header_len = struct.unpack("<I", data[8:12])[0]
    offset = 12 + header_len
    header = json.loads(data[12:offset].decode("utf-8"))
    num_sessions = header["num_sessions"]
    num_items = header["num_items"]

    timestamps = list(
        struct.unpack_from(f"<{num_sessions}Q", data, offset)
    )
    offset += 8 * num_sessions

    session_items: list[tuple[int, ...]] = []
    for _ in range(num_sessions):
        count, offset = _read_varint(data, offset)
        items = []
        for _ in range(count):
            item, offset = _read_varint(data, offset)
            items.append(item)
        session_items.append(tuple(items))

    item_to_sessions: dict[int, list[int]] = {}
    item_session_counts: dict[int, int] = {}
    for _ in range(num_items):
        item, offset = _read_varint(data, offset)
        frequency, offset = _read_varint(data, offset)
        postings, offset = _decode_descending(data, offset)
        item_to_sessions[item] = postings
        item_session_counts[item] = frequency

    return SessionIndex(
        item_to_sessions=item_to_sessions,
        session_timestamps=timestamps,
        session_items=session_items,
        item_session_counts=item_session_counts,
        max_sessions_per_item=header["max_sessions_per_item"],
    )


def serialize_columnar(index: ColumnarSessionIndex) -> bytes:
    """Serialize a columnar index to the ``VMIC`` binary container."""
    out = bytearray()
    out += COLUMNAR_MAGIC
    out += struct.pack("<I", COLUMNAR_FORMAT_VERSION)

    header = json.dumps(
        {
            "num_sessions": index.num_sessions,
            "num_items": index.num_items,
            "posting_entries": int(index.posting_sessions.shape[0]),
            "session_item_entries": int(index.session_item_values.shape[0]),
            "max_sessions_per_item": index.max_sessions_per_item,
        }
    ).encode("utf-8")
    out += struct.pack("<I", len(header))
    out += header

    for buffer, dtype in (
        (index.item_ids, "<i8"),
        (index.item_frequencies, "<i8"),
        (index.posting_offsets, "<i8"),
        (index.posting_sessions, "<i8"),
        (index.session_timestamps, "<f8"),
        (index.session_item_offsets, "<i8"),
        (index.session_item_values, "<i8"),
    ):
        out += np.ascontiguousarray(buffer, dtype=dtype).tobytes()

    out += struct.pack("<I", zlib.crc32(bytes(out)) & 0xFFFFFFFF)
    return bytes(out)


def deserialize_columnar(data: bytes) -> ColumnarSessionIndex:
    """Parse a ``VMIC`` container back into a columnar index.

    The CRC is verified before anything else, so truncation and bit
    flips surface as ``ValueError`` exactly like the ``VMIS`` container;
    the constructor's structural validation is a second line of defence.
    """
    if len(data) < 12 or data[:4] != COLUMNAR_MAGIC:
        raise ValueError("not a VMIC columnar index file (bad magic)")
    stored_crc = struct.unpack("<I", data[-4:])[0]
    actual_crc = zlib.crc32(data[:-4]) & 0xFFFFFFFF
    if stored_crc != actual_crc:
        raise ValueError(
            f"columnar index file corrupted: "
            f"crc {actual_crc:#x} != stored {stored_crc:#x}"
        )
    version = struct.unpack("<I", data[4:8])[0]
    if version != COLUMNAR_FORMAT_VERSION:
        raise ValueError(f"unsupported columnar format version {version}")

    header_len = struct.unpack("<I", data[8:12])[0]
    offset = 12 + header_len
    header = json.loads(data[12:offset].decode("utf-8"))
    num_sessions = header["num_sessions"]
    num_items = header["num_items"]
    posting_entries = header["posting_entries"]
    session_item_entries = header["session_item_entries"]

    def take(count: int, dtype: str) -> np.ndarray:
        nonlocal offset
        end = offset + 8 * count
        if end > len(data) - 4:
            raise ValueError("columnar index file corrupted: buffer overrun")
        buffer = np.frombuffer(data, dtype=dtype, count=count, offset=offset)
        offset = end
        return buffer.copy()  # detach from (read-only) file bytes

    item_ids = take(num_items, "<i8")
    item_frequencies = take(num_items, "<i8")
    posting_offsets = take(num_items + 1, "<i8")
    posting_sessions = take(posting_entries, "<i8")
    session_timestamps = take(num_sessions, "<f8")
    session_item_offsets = take(num_sessions + 1, "<i8")
    session_item_values = take(session_item_entries, "<i8")

    return ColumnarSessionIndex(
        item_ids=item_ids,
        item_frequencies=item_frequencies,
        posting_offsets=posting_offsets,
        posting_sessions=posting_sessions,
        session_timestamps=session_timestamps,
        session_item_offsets=session_item_offsets,
        session_item_values=session_item_values,
        max_sessions_per_item=header["max_sessions_per_item"],
    )


def serialize_artifact(index: IndexArtifact) -> bytes:
    """Serialize either index layout, dispatching on the artifact type."""
    if isinstance(index, ColumnarSessionIndex):
        return serialize_columnar(index)
    return serialize_index(index)


def deserialize_artifact(data: bytes) -> IndexArtifact:
    """Parse either container, dispatching on the leading magic."""
    if data[:4] == COLUMNAR_MAGIC:
        return deserialize_columnar(data)
    return deserialize_index(data)


def save_index(index: SessionIndex, path: str | Path) -> int:
    """Write an index artifact; returns the number of bytes written."""
    data = serialize_index(index)
    Path(path).write_bytes(data)
    return len(data)


def load_index(path: str | Path) -> SessionIndex:
    """Load an index artifact written by :func:`save_index`."""
    return deserialize_index(Path(path).read_bytes())


def save_artifact(index: IndexArtifact, path: str | Path) -> int:
    """Write either index layout; returns the number of bytes written."""
    data = serialize_artifact(index)
    Path(path).write_bytes(data)
    return len(data)


def load_artifact(path: str | Path) -> IndexArtifact:
    """Load an artifact of either layout, dispatching on its magic."""
    return deserialize_artifact(Path(path).read_bytes())
