"""Capacity planning: how big will the index be at production scale?

The paper reports that the serving component needs "around 13 gigabytes
of memory" for the index built from 180 days of clicks (§4.2: ~111M
sessions, 582M interactions, 6.5M items after filtering). Operators size
machines from a *sample*: build a small index, measure per-entry costs,
extrapolate.

This module does exactly that. The cost model counts the logical entries
of each component — postings (bounded by ``min(h_i, m)`` per item),
stored session items, the timestamp array, and hash-table overheads — and
prices them with a configurable bytes-per-entry schedule. The default
schedule reflects a compact native implementation (the paper's Rust
serving process), not CPython object sizes; a CPython schedule is also
provided for sizing this repository's own processes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.index import SessionIndex


@dataclass(frozen=True)
class CostSchedule:
    """Bytes per logical entry of each index component."""

    name: str
    bytes_per_posting: float
    bytes_per_session_item: float
    bytes_per_session_timestamp: float
    bytes_per_item_overhead: float  # hash entry: item id -> vector header
    bytes_per_session_overhead: float  # per-session vector header


#: A compact representation: 4-byte ids, 8-byte timestamps, small headers —
#: the regime of the paper's Rust/Avro pipeline.
NATIVE = CostSchedule(
    name="native",
    bytes_per_posting=4.0,
    bytes_per_session_item=4.0,
    bytes_per_session_timestamp=8.0,
    bytes_per_item_overhead=48.0,
    bytes_per_session_overhead=24.0,
)

#: CPython dict/list/int object costs, for sizing this repo's processes.
CPYTHON = CostSchedule(
    name="cpython",
    bytes_per_posting=36.0,
    bytes_per_session_item=36.0,
    bytes_per_session_timestamp=36.0,
    bytes_per_item_overhead=120.0,
    bytes_per_session_overhead=72.0,
)


@dataclass(frozen=True)
class CapacityEstimate:
    """A sized index: component bytes plus the total."""

    schedule: str
    sessions: int
    items: int
    postings: int
    stored_session_items: int
    posting_bytes: float
    session_item_bytes: float
    timestamp_bytes: float
    overhead_bytes: float

    @property
    def total_bytes(self) -> float:
        return (
            self.posting_bytes
            + self.session_item_bytes
            + self.timestamp_bytes
            + self.overhead_bytes
        )

    @property
    def total_gigabytes(self) -> float:
        return self.total_bytes / 1024**3

    def render(self) -> str:
        return "\n".join(
            [
                f"capacity estimate ({self.schedule} schedule):",
                f"  sessions:          {self.sessions:>15,}",
                f"  items:             {self.items:>15,}",
                f"  postings:          {self.postings:>15,}",
                f"  stored items:      {self.stored_session_items:>15,}",
                f"  posting bytes:     {self.posting_bytes:>15,.0f}",
                f"  session items:     {self.session_item_bytes:>15,.0f}",
                f"  timestamps:        {self.timestamp_bytes:>15,.0f}",
                f"  overheads:         {self.overhead_bytes:>15,.0f}",
                f"  TOTAL:             {self.total_gigabytes:>14.2f} GiB",
            ]
        )


def estimate_capacity(
    sessions: int,
    items: int,
    postings: int,
    stored_session_items: int,
    schedule: CostSchedule = NATIVE,
) -> CapacityEstimate:
    """Price raw component counts under a cost schedule."""
    if min(sessions, items, postings, stored_session_items) < 0:
        raise ValueError("component counts must be non-negative")
    return CapacityEstimate(
        schedule=schedule.name,
        sessions=sessions,
        items=items,
        postings=postings,
        stored_session_items=stored_session_items,
        posting_bytes=postings * schedule.bytes_per_posting,
        session_item_bytes=stored_session_items
        * schedule.bytes_per_session_item,
        timestamp_bytes=sessions * schedule.bytes_per_session_timestamp,
        overhead_bytes=items * schedule.bytes_per_item_overhead
        + sessions * schedule.bytes_per_session_overhead,
    )


def measure_index(index: SessionIndex, schedule: CostSchedule = NATIVE) -> CapacityEstimate:
    """Size an in-memory index directly."""
    profile = index.memory_profile()
    return estimate_capacity(
        sessions=profile["num_sessions"],
        items=profile["num_items"],
        postings=profile["posting_entries"],
        stored_session_items=profile["stored_session_items"],
        schedule=schedule,
    )


def extrapolate(
    sample: SessionIndex,
    target_sessions: int,
    target_items: int,
    max_sessions_per_item: int | None = None,
    schedule: CostSchedule = NATIVE,
) -> CapacityEstimate:
    """Extrapolate a sample index to production scale.

    Stored session items and timestamps scale linearly with the session
    count. Postings scale with the item count times the *expected posting
    length*, which saturates at ``m``: the sample's mean posting length is
    scaled by the sessions-per-item growth factor and clipped to ``m`` —
    exactly the saturation that makes the real index (Zipf-headed, m=500
    in production) much smaller than ``items x m``.
    """
    if target_sessions < 1 or target_items < 1:
        raise ValueError("targets must be positive")
    profile = sample.memory_profile()
    if profile["num_sessions"] == 0 or profile["num_items"] == 0:
        raise ValueError("sample index is empty")
    m = max_sessions_per_item or sample.max_sessions_per_item

    session_growth = target_sessions / profile["num_sessions"]
    items_per_session = profile["stored_session_items"] / profile["num_sessions"]
    target_stored = int(items_per_session * target_sessions)

    # Per-item posting growth: sessions-per-item scales with
    # (session growth) / (item growth); posting lengths clip at m.
    item_growth = target_items / profile["num_items"]
    posting_scale = session_growth / item_growth
    total_postings = 0.0
    for postings in sample.item_to_sessions.values():
        total_postings += min(float(m), len(postings) * posting_scale)
    target_postings = int(total_postings * item_growth)

    return estimate_capacity(
        sessions=target_sessions,
        items=target_items,
        postings=target_postings,
        stored_session_items=target_stored,
        schedule=schedule,
    )
