"""Staged rolling rollout of a new index across the serving cluster.

`ServingCluster.rollout_index` swaps every pod at once — fine when the
artifact is known-good, fleet-threatening when it is not. The
:class:`RolloutController` replaces the blind swap with the standard
production discipline:

1. **canary** — a fraction of pods (at least one) loads the candidate
   first. Each load retries with jittered exponential backoff (shared
   storage hiccups are transient) and must pass a local health check
   before the pod is swapped.
2. **observe** — synthetic canary traffic is driven through the real
   request path (consent-off, so probe sessions never pollute session
   stores) and split by routing into canary-served and baseline-served
   groups. A canary error rate above the budget, degraded answers, or a
   p90 latency regression beyond the allowed factor fails the canary.
3. **roll** — on a healthy canary the candidate factory is *committed*
   (new and restarted pods build from it — that is what makes the fleet
   converge under kills mid-rollout), then remaining pods swap one at a
   time, each with the same retry + health-check treatment.
4. **rollback** — any failure in 1–3 swaps every already-swapped pod
   back to the previous factory, restores the committed version, and
   counts the rollback on the cluster (exported at ``/metrics``).

Version skew mid-rollout is tolerated by construction: each pod serves
its own replica, the sticky router keeps any one session on one pod, so
a session sees one version consistently; pods killed mid-rollout are
skipped and converge to the committed version on restart.
"""

from __future__ import annotations

import enum
import logging
import math
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cluster.metrics import percentile
from repro.core.predictor import SessionRecommender
from repro.serving.app import RecommenderFactory, ServingCluster
from repro.serving.server import RecommendationRequest

logger = logging.getLogger(__name__)


class RolloutState(enum.Enum):
    IDLE = "idle"
    CANARY = "canary"
    ROLLING = "rolling"
    COMPLETED = "completed"
    ROLLED_BACK = "rolled_back"


class RolloutError(RuntimeError):
    """A rollout invariant was violated (bad policy, no pods)."""


@dataclass(frozen=True)
class RolloutPolicy:
    """Knobs for the staged rollout."""

    #: fraction of pods swapped in the canary stage (>= 1 pod always).
    canary_fraction: float = 0.25
    #: artifact/replica load retries per pod.
    max_load_attempts: int = 3
    backoff_base_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    #: +/- fraction of jitter applied to every backoff delay.
    backoff_jitter: float = 0.5
    #: sessions the local health check probes on a freshly loaded replica.
    health_check_sessions: tuple[tuple[int, ...], ...] = ((0,), (1, 2))
    #: synthetic requests per group when observing the canary.
    canary_probe_requests: int = 40
    #: item ids cycled through by the synthetic canary traffic.
    probe_item_ids: tuple[int, ...] = tuple(range(8))
    #: fraction of canary probes that may fail (error or degraded).
    max_canary_error_rate: float = 0.02
    #: canary p90 may not exceed baseline p90 times this factor.
    max_p90_regression: float = 3.0
    #: latency comparison needs at least this many samples per group.
    min_latency_samples: int = 10

    def __post_init__(self) -> None:
        if not 0.0 < self.canary_fraction <= 1.0:
            raise ValueError("canary_fraction must be in (0, 1]")
        if self.max_load_attempts < 1:
            raise ValueError("max_load_attempts must be >= 1")
        if self.max_p90_regression < 1.0:
            raise ValueError("max_p90_regression must be >= 1.0")


@dataclass
class CanaryStats:
    """Outcome of the canary observation stage."""

    canary_requests: int = 0
    canary_failures: int = 0
    baseline_requests: int = 0
    baseline_failures: int = 0
    canary_p90: float | None = None
    baseline_p90: float | None = None

    @property
    def canary_error_rate(self) -> float:
        if self.canary_requests == 0:
            return 0.0
        return self.canary_failures / self.canary_requests


@dataclass
class RolloutReport:
    """Everything one rollout attempt did."""

    from_version: str | None
    to_version: str | None
    state: RolloutState = RolloutState.IDLE
    canary_pods: list[str] = field(default_factory=list)
    swapped_pods: list[str] = field(default_factory=list)
    #: pods that were dead when their turn came (they converge on restart).
    skipped_pods: list[str] = field(default_factory=list)
    load_retries: int = 0
    rollback_reason: str | None = None
    canary: CanaryStats | None = None

    @property
    def succeeded(self) -> bool:
        return self.state is RolloutState.COMPLETED


#: optional custom canary probe: (cluster, canary_pods) -> CanaryStats.
CanaryProbe = Callable[[ServingCluster, Sequence[str]], CanaryStats]


class RolloutController:
    """Drives one candidate index through canary → rolling → commit."""

    def __init__(
        self,
        cluster: ServingCluster,
        policy: RolloutPolicy | None = None,
        rng: random.Random | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.cluster = cluster
        self.policy = policy or RolloutPolicy()
        self._rng = rng or random.Random()
        self._sleep = sleep

    # -- the rollout ----------------------------------------------------------

    def run(
        self,
        factory: RecommenderFactory,
        version: str | None = None,
        canary_probe: CanaryProbe | None = None,
    ) -> RolloutReport:
        """Roll ``factory`` across the cluster; never raises on bad builds.

        Returns a :class:`RolloutReport`; on any failure the cluster is
        left on its previous version with the rollback counted.
        """
        cluster = self.cluster
        old_factory = cluster.committed_factory
        old_version = cluster.index_version
        report = RolloutReport(from_version=old_version, to_version=version)
        pods = sorted(cluster.pods)
        if not pods:
            raise RolloutError("cluster has no pods to roll out to")
        canary_count = max(1, math.ceil(self.policy.canary_fraction * len(pods)))
        report.canary_pods = pods[:canary_count]

        self._set_state(report, RolloutState.CANARY)
        for pod_id in report.canary_pods:
            if not self._swap_pod(pod_id, factory, version, report):
                return self._rollback(report, old_factory, old_version)

        probe = canary_probe or self._default_canary_probe
        report.canary = probe(cluster, report.canary_pods)
        verdict = self._judge_canary(report.canary)
        if verdict is not None:
            report.rollback_reason = verdict
            return self._rollback(report, old_factory, old_version)

        # Canary is healthy: commit, so pods restarted or scaled up from
        # here on build the new version — the convergence guarantee.
        self._set_state(report, RolloutState.ROLLING)
        cluster.commit_index(factory, version)
        for pod_id in pods[canary_count:]:
            if pod_id not in cluster.pods:
                report.skipped_pods.append(pod_id)
                continue
            if not self._swap_pod(pod_id, factory, version, report):
                return self._rollback(report, old_factory, old_version)

        self._set_state(report, RolloutState.COMPLETED)
        return report

    def _set_state(self, report: RolloutReport, state: RolloutState) -> None:
        report.state = state
        self.cluster.rollout_state = state.value

    # -- per-pod swap with retries and health check ---------------------------

    def _swap_pod(
        self,
        pod_id: str,
        factory: RecommenderFactory,
        version: str | None,
        report: RolloutReport,
    ) -> bool:
        if pod_id not in self.cluster.pods:
            report.skipped_pods.append(pod_id)
            return True
        replica = self._load_with_retries(factory, report)
        if replica is None or not self._healthy(replica):
            report.rollback_reason = (
                f"pod {pod_id}: replica failed to load or failed health check"
            )
            return False
        self.cluster.swap_pod_recommender(pod_id, lambda: replica, version)
        report.swapped_pods.append(pod_id)
        return True

    def _load_with_retries(
        self, factory: RecommenderFactory, report: RolloutReport
    ) -> SessionRecommender | None:
        policy = self.policy
        delay = policy.backoff_base_seconds
        for attempt in range(1, policy.max_load_attempts + 1):
            try:
                return factory()
            except Exception:
                if attempt == policy.max_load_attempts:
                    return None
                report.load_retries += 1
                jitter = 1.0 + policy.backoff_jitter * (
                    2.0 * self._rng.random() - 1.0
                )
                self._sleep(max(0.0, delay * jitter))
                delay *= policy.backoff_multiplier
        return None

    def _healthy(self, replica: SessionRecommender) -> bool:
        """A loaded replica must answer probe sessions without crashing."""
        try:
            for session in self.policy.health_check_sessions:
                ranked = replica.recommend(list(session), how_many=5)
                if not isinstance(ranked, list):
                    return False
        except Exception:
            logger.warning(
                "health check failed: probe session crashed the replica",
                exc_info=True,
            )
            return False
        return True

    # -- canary observation ---------------------------------------------------

    def _default_canary_probe(
        self, cluster: ServingCluster, canary_pods: Sequence[str]
    ) -> CanaryStats:
        """Drive synthetic traffic and split outcomes by serving pod.

        Probes are consent-off so they never pollute per-user session
        state; keys are generated until both groups have their sample or
        the key budget runs out (a fully-canaried cluster simply has no
        baseline group, which disables the relative latency check).
        """
        policy = self.policy
        stats = CanaryStats()
        canary = set(canary_pods)
        canary_latencies: list[float] = []
        baseline_latencies: list[float] = []
        target = policy.canary_probe_requests
        budget = target * max(2, len(cluster.pods)) * 4
        for attempt in range(budget):
            if stats.canary_requests >= target and (
                stats.baseline_requests >= target
                or len(cluster.pods) == len(canary)
            ):
                break
            key = f"canary-probe-{attempt}"
            pod_id = cluster.route_live(key)
            is_canary = pod_id in canary
            if (stats.canary_requests >= target and is_canary) or (
                stats.baseline_requests >= target and not is_canary
            ):
                continue
            item = policy.probe_item_ids[attempt % len(policy.probe_item_ids)]
            request = RecommendationRequest(key, item, consent=False)
            failed = False
            elapsed = None
            try:
                response = cluster.handle(request)
                failed = response.degraded
                elapsed = response.service_seconds
            except Exception:
                logger.debug(
                    "canary probe request failed on pod %s",
                    pod_id,
                    exc_info=True,
                )
                failed = True
            if is_canary:
                stats.canary_requests += 1
                stats.canary_failures += failed
                if elapsed is not None:
                    canary_latencies.append(elapsed)
            else:
                stats.baseline_requests += 1
                stats.baseline_failures += failed
                if elapsed is not None:
                    baseline_latencies.append(elapsed)
        if len(canary_latencies) >= policy.min_latency_samples:
            stats.canary_p90 = percentile(sorted(canary_latencies), 90)
        if len(baseline_latencies) >= policy.min_latency_samples:
            stats.baseline_p90 = percentile(sorted(baseline_latencies), 90)
        return stats

    def _judge_canary(self, stats: CanaryStats) -> str | None:
        """None when the canary is healthy, else the refusal reason."""
        policy = self.policy
        if stats.canary_requests == 0:
            return "canary received no probe traffic"
        if stats.canary_error_rate > policy.max_canary_error_rate:
            return (
                f"canary error rate {stats.canary_error_rate:.1%} exceeds "
                f"{policy.max_canary_error_rate:.1%}"
            )
        if (
            stats.canary_p90 is not None
            and stats.baseline_p90 is not None
            and stats.baseline_p90 > 0
            and stats.canary_p90 > stats.baseline_p90 * policy.max_p90_regression
        ):
            return (
                f"canary p90 {stats.canary_p90 * 1e3:.2f} ms regressed beyond "
                f"{policy.max_p90_regression:.1f}x baseline "
                f"{stats.baseline_p90 * 1e3:.2f} ms"
            )
        return None

    # -- rollback -------------------------------------------------------------

    def _rollback(
        self,
        report: RolloutReport,
        old_factory: RecommenderFactory,
        old_version: str | None,
    ) -> RolloutReport:
        """Swap every already-swapped pod back and restore the commit."""
        cluster = self.cluster
        cluster.commit_index(old_factory, old_version)
        for pod_id in report.swapped_pods:
            if pod_id in cluster.pods:
                cluster.swap_pod_recommender(pod_id, old_factory, old_version)
        report.swapped_pods = []
        cluster.rollback_count += 1
        self._set_state(report, RolloutState.ROLLED_BACK)
        return report
