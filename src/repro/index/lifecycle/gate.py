"""The canary quality gate: measure a candidate index before promoting.

A structurally valid index can still be semantically broken — built from
a half-day of clicks, from a log with its timestamps zeroed, or from the
wrong shop's traffic. Following the session-rec evaluation methodology
(Ludewig & Jannach, arXiv:1803.09587), promotion becomes a measurable
decision: the candidate is evaluated with the standard incremental
next-item protocol on a holdout slice and compared against the currently
promoted index. A candidate that loses more than the configured
Recall@20 / MRR@20 budget — or fails cheap structural sanity bounds —
is refused.

Checks:

* **min_sessions / min_items** — an implausibly small index means the
  upstream export was truncated;
* **coverage ratio** — the candidate must cover at least
  ``min_coverage_ratio`` of the current index's item catalogue (a daily
  build never legitimately loses half the catalogue);
* **posting bounds** — no posting list may exceed the build-time ``m``
  (an inverted-index invariant; violation means a buggy build);
* **quality deltas** — Recall@20 and MRR@20 on the holdout may not drop
  more than the configured relative budget versus the current index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.index import SessionIndex
from repro.core.types import ItemId, SessionId
from repro.core.vmis import VMISKNN
from repro.eval.evaluator import evaluate_next_item


@dataclass(frozen=True)
class GatePolicy:
    """Thresholds for the canary quality gate."""

    #: maximum tolerated *relative* drop versus the current index
    #: (0.1 = the candidate may lose up to 10% of current Recall@20).
    max_recall_drop: float = 0.10
    max_mrr_drop: float = 0.10
    #: structural sanity bounds.
    min_sessions: int = 10
    min_items: int = 5
    min_coverage_ratio: float = 0.5
    #: evaluation protocol knobs.
    cutoff: int = 20
    max_predictions: int | None = 2000
    #: VMIS-kNN hyperparameters used for the holdout evaluation.
    m: int = 500
    k: int = 100

    def __post_init__(self) -> None:
        if not 0.0 <= self.max_recall_drop <= 1.0:
            raise ValueError("max_recall_drop must be in [0, 1]")
        if not 0.0 <= self.max_mrr_drop <= 1.0:
            raise ValueError("max_mrr_drop must be in [0, 1]")
        if not 0.0 <= self.min_coverage_ratio <= 1.0:
            raise ValueError("min_coverage_ratio must be in [0, 1]")


@dataclass(frozen=True)
class GateCheck:
    """One named check with its verdict and a human-readable detail."""

    name: str
    passed: bool
    detail: str


@dataclass
class GateReport:
    """All checks for one candidate, plus the measured metrics."""

    candidate_metrics: dict[str, float] = field(default_factory=dict)
    baseline_metrics: dict[str, float] = field(default_factory=dict)
    checks: list[GateCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def reasons(self) -> list[str]:
        """Why the candidate was refused (empty when it passed)."""
        return [
            f"{check.name}: {check.detail}"
            for check in self.checks
            if not check.passed
        ]

    def summary(self) -> dict:
        return {
            "passed": self.passed,
            "candidate_metrics": self.candidate_metrics,
            "baseline_metrics": self.baseline_metrics,
            "checks": [
                {"name": c.name, "passed": c.passed, "detail": c.detail}
                for c in self.checks
            ],
        }


HoldoutSequences = (
    Mapping[SessionId, Sequence[ItemId]] | Sequence[Sequence[ItemId]]
)


class CanaryQualityGate:
    """Decides whether a candidate index may replace the current one."""

    def __init__(self, policy: GatePolicy | None = None) -> None:
        self.policy = policy or GatePolicy()

    def evaluate(
        self,
        candidate: SessionIndex,
        holdout: HoldoutSequences,
        current: SessionIndex | None = None,
    ) -> GateReport:
        """Run structural checks, then the holdout quality comparison.

        With no ``current`` index (first ever build) only the structural
        checks and an absolute non-degenerate quality check apply.
        """
        policy = self.policy
        report = GateReport()
        self._structural_checks(candidate, current, report)
        if not report.passed:
            # Quality evaluation on a structurally broken index wastes
            # minutes of holdout replay to confirm what we already know.
            return report

        report.candidate_metrics = self._measure(candidate, holdout)
        if current is None:
            report.checks.append(
                GateCheck(
                    "first_build",
                    True,
                    "no current index; structural checks only",
                )
            )
            return report

        report.baseline_metrics = self._measure(current, holdout)
        for metric, budget in (
            ("recall", policy.max_recall_drop),
            ("mrr", policy.max_mrr_drop),
        ):
            base = report.baseline_metrics[metric]
            cand = report.candidate_metrics[metric]
            floor = base * (1.0 - budget)
            report.checks.append(
                GateCheck(
                    f"{metric}_delta",
                    cand >= floor,
                    f"candidate {cand:.4f} vs baseline {base:.4f} "
                    f"(floor {floor:.4f})",
                )
            )
        return report

    def _structural_checks(
        self,
        candidate: SessionIndex,
        current: SessionIndex | None,
        report: GateReport,
    ) -> None:
        policy = self.policy
        report.checks.append(
            GateCheck(
                "min_sessions",
                candidate.num_sessions >= policy.min_sessions,
                f"{candidate.num_sessions} sessions "
                f"(need >= {policy.min_sessions})",
            )
        )
        report.checks.append(
            GateCheck(
                "min_items",
                candidate.num_items >= policy.min_items,
                f"{candidate.num_items} items (need >= {policy.min_items})",
            )
        )
        longest = max(
            (len(p) for p in candidate.item_to_sessions.values()), default=0
        )
        report.checks.append(
            GateCheck(
                "posting_bounds",
                longest <= candidate.max_sessions_per_item,
                f"longest posting list {longest} "
                f"(cap m={candidate.max_sessions_per_item})",
            )
        )
        if current is not None and current.num_items > 0:
            covered = len(
                set(candidate.item_to_sessions) & set(current.item_to_sessions)
            )
            ratio = covered / current.num_items
            report.checks.append(
                GateCheck(
                    "item_coverage",
                    ratio >= policy.min_coverage_ratio,
                    f"covers {ratio:.1%} of current catalogue "
                    f"(need >= {policy.min_coverage_ratio:.0%})",
                )
            )

    def _measure(
        self, index: SessionIndex, holdout: HoldoutSequences
    ) -> dict[str, float]:
        policy = self.policy
        model = VMISKNN(
            index, m=policy.m, k=policy.k, exclude_current_items=True
        )
        result = evaluate_next_item(
            model,
            holdout,
            cutoff=policy.cutoff,
            max_predictions=policy.max_predictions,
        )
        return {
            "recall": result.recall,
            "mrr": result.mrr,
            "hit_rate": result.hit_rate,
            "predictions": float(result.predictions),
        }
