"""The one-call daily pipeline: validate → build → register → gate → roll.

This is the module the CLI (``repro index ...``) and operational jobs
drive. Each stage is independently usable; :class:`DailyIndexLifecycle`
wires them in the order the paper's daily refresh runs them, with the
hardening this package adds at every hand-off:

* the click log is validated first — a quarantine rate above the policy
  budget refuses the build outright (the day's export is untrustworthy);
* the built index is registered as a versioned, checksummed artifact;
* promotion runs the canary quality gate against the currently promoted
  version on a holdout slice;
* rollout, when a cluster is attached, is staged with automatic
  rollback; the registry's CURRENT pointer only moves when the gate
  passed, so a corrupt or anomalous build can never become the version
  restarted pods converge to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.index import SessionIndex
from repro.core.types import Click, ItemId
from repro.core.vmis import VMISKNN
from repro.index.builder import IndexBuilder
from repro.index.lifecycle.gate import CanaryQualityGate, GatePolicy, GateReport
from repro.index.lifecycle.registry import (
    IndexManifest,
    IndexRegistry,
    RegistryError,
)
from repro.index.lifecycle.rollout import (
    RolloutController,
    RolloutPolicy,
    RolloutReport,
)
from repro.index.lifecycle.validation import (
    ClickLogValidator,
    IngestionPolicy,
    ValidationReport,
)
from repro.serving.app import ServingCluster


@dataclass
class LifecycleOutcome:
    """What one end-to-end lifecycle run did, stage by stage."""

    validation: ValidationReport | None = None
    manifest: IndexManifest | None = None
    gate: GateReport | None = None
    rollout: RolloutReport | None = None
    promoted_version: str | None = None
    #: stage that refused, or None when everything succeeded.
    refused_at: str | None = None
    refusal_reasons: list[str] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return self.refused_at is None


class DailyIndexLifecycle:
    """Orchestrates the guarded daily refresh against one registry."""

    def __init__(
        self,
        registry: IndexRegistry,
        ingestion_policy: IngestionPolicy | None = None,
        gate_policy: GatePolicy | None = None,
        rollout_policy: RolloutPolicy | None = None,
        max_sessions_per_item: int = 500,
    ) -> None:
        self.registry = registry
        self.ingestion_policy = ingestion_policy or IngestionPolicy()
        self.gate_policy = gate_policy or GatePolicy()
        self.rollout_policy = rollout_policy or RolloutPolicy()
        self.max_sessions_per_item = max_sessions_per_item

    # -- individual stages ----------------------------------------------------

    def build_and_register(
        self,
        clicks: Iterable[Click],
        provenance: dict | None = None,
    ) -> tuple[IndexManifest | None, ValidationReport]:
        """Validate the click log, build and register a candidate.

        Returns ``(manifest, validation_report)``; the manifest is None
        when the log quarantined more than the policy budget allows.
        """
        validator = ClickLogValidator(self.ingestion_policy)
        clean, report = validator.validate(clicks)
        if not report.acceptable(self.ingestion_policy):
            return None, report
        builder = IndexBuilder(max_sessions_per_item=self.max_sessions_per_item)
        index = builder.build(clean)
        build_stats = {}
        if builder.last_report is not None:
            stats = builder.last_report
            build_stats = {
                "input_clicks": stats.input_clicks,
                "sessions": stats.sessions,
                "postings_after_truncation": stats.postings_after_truncation,
                "distinct_items": stats.distinct_items,
            }
        manifest = self.registry.register(
            index,
            build_stats=build_stats,
            provenance={
                **(provenance or {}),
                "validation": report.summary(),
            },
        )
        return manifest, report

    def gate_candidate(
        self,
        version: str,
        holdout: Sequence[Sequence[ItemId]],
    ) -> GateReport:
        """Run the canary quality gate for a registered version.

        The baseline is the currently promoted version (loaded with
        corruption fallback); a first-ever candidate is gated on
        structural checks only.
        """
        candidate = self.registry.load(version)
        current: SessionIndex | None = None
        if self.registry.current_version() is not None:
            current, _ = self.registry.load_current()
        gate = CanaryQualityGate(self.gate_policy)
        return gate.evaluate(candidate, holdout, current=current)

    def promote(
        self,
        version: str,
        holdout: Sequence[Sequence[ItemId]],
        cluster: ServingCluster | None = None,
    ) -> LifecycleOutcome:
        """Gate a candidate; on pass move CURRENT and optionally roll out.

        With a cluster attached, a rollout failure (canary regression,
        load failures) rolls the registry pointer back too, so CURRENT
        always names the version the fleet actually converges to.
        """
        outcome = LifecycleOutcome()
        try:
            outcome.gate = self.gate_candidate(version, holdout)
        except (ValueError, RegistryError) as error:
            # A corrupt or missing candidate artifact is a refusal, not a
            # crash: the day's promotion simply does not happen.
            outcome.refused_at = "artifact"
            outcome.refusal_reasons = [str(error)]
            return outcome
        if not outcome.gate.passed:
            outcome.refused_at = "gate"
            outcome.refusal_reasons = outcome.gate.reasons()
            return outcome

        previous = self.registry.current_version()
        self.registry.promote(version)
        outcome.promoted_version = version
        if cluster is None:
            return outcome

        index = self.registry.load(version)
        policy = self.gate_policy
        controller = RolloutController(cluster, self.rollout_policy)
        outcome.rollout = controller.run(
            lambda: VMISKNN(
                index, m=policy.m, k=policy.k, exclude_current_items=True
            ),
            version=version,
        )
        if not outcome.rollout.succeeded:
            outcome.refused_at = "rollout"
            if outcome.rollout.rollback_reason:
                outcome.refusal_reasons = [outcome.rollout.rollback_reason]
            outcome.promoted_version = previous
            if previous is not None:
                self.registry.promote(previous)
        return outcome

    # -- the full daily run ---------------------------------------------------

    def run(
        self,
        clicks: Iterable[Click],
        holdout: Sequence[Sequence[ItemId]],
        cluster: ServingCluster | None = None,
        provenance: dict | None = None,
    ) -> LifecycleOutcome:
        """Validate, build, register, gate, promote and roll out one day."""
        manifest, validation = self.build_and_register(clicks, provenance)
        if manifest is None:
            outcome = LifecycleOutcome(validation=validation)
            outcome.refused_at = "validation"
            outcome.refusal_reasons = [
                f"quarantine rate {validation.quarantine_rate:.1%} exceeds "
                f"{self.ingestion_policy.max_quarantine_rate:.1%}"
            ]
            return outcome
        outcome = self.promote(manifest.version, holdout, cluster=cluster)
        outcome.validation = validation
        outcome.manifest = manifest
        return outcome
