"""The hardened daily index lifecycle (build → validate → register →
canary → rollout → rollback).

Serenade's serving tier depends on a once-per-day offline index build
being handed to live pods (§4, Figure 1). This package turns that
hand-off from a blind swap into a guarded pipeline:

* :mod:`~repro.index.lifecycle.validation` — click-log ingestion
  validation: malformed rows, non-monotonic timestamps, duplicate
  clicks and bot-like sessions are quarantined or repaired into a
  :class:`ValidationReport` instead of poisoning the build;
* :mod:`~repro.index.lifecycle.registry` — versioned, checksummed index
  artifacts written atomically, with corrupt-on-load detection falling
  back to the last good version;
* :mod:`~repro.index.lifecycle.gate` — the canary quality gate: a
  candidate index must hold its Recall@20/MRR on a holdout slice and
  pass structural sanity bounds before it may be promoted;
* :mod:`~repro.index.lifecycle.rollout` — staged rolling rollout across
  the serving cluster (canary fraction → full) with per-pod health
  checks, jittered-backoff retries and automatic rollback;
* :mod:`~repro.index.lifecycle.pipeline` — the one-call daily pipeline
  the CLI drives.
"""

from repro.index.lifecycle.gate import (
    CanaryQualityGate,
    GateCheck,
    GatePolicy,
    GateReport,
)
from repro.index.lifecycle.pipeline import DailyIndexLifecycle, LifecycleOutcome
from repro.index.lifecycle.registry import (
    CURRENT_POINTER,
    IndexManifest,
    IndexRegistry,
    RegistryError,
)
from repro.index.lifecycle.rollout import (
    RolloutController,
    RolloutError,
    RolloutPolicy,
    RolloutReport,
    RolloutState,
)
from repro.index.lifecycle.validation import (
    ClickLogValidator,
    IngestionPolicy,
    ValidationReport,
    validate_clicks,
)

__all__ = [
    "CURRENT_POINTER",
    "CanaryQualityGate",
    "ClickLogValidator",
    "DailyIndexLifecycle",
    "GateCheck",
    "GatePolicy",
    "GateReport",
    "IndexManifest",
    "IndexRegistry",
    "IngestionPolicy",
    "LifecycleOutcome",
    "RegistryError",
    "RolloutController",
    "RolloutError",
    "RolloutPolicy",
    "RolloutReport",
    "RolloutState",
    "ValidationReport",
    "validate_clicks",
]
