"""Click-log ingestion validation for the daily index build.

The paper's pipeline ingests billions of click events exported from the
frontend; at that volume every pathology shows up daily: rows with
negative ids, clocks running backwards inside a session, double-fired
click trackers, and crawlers producing thousand-item "sessions" at
inhuman speed. A corrupt click log must never crash the build or poison
the index — it is validated row by row, and everything suspicious is
either *repaired* or *quarantined* into a :class:`ValidationReport`
according to a configurable :class:`IngestionPolicy`.

Checks, in the order applied:

1. **malformed clicks** — negative session/item ids or timestamps are
   always quarantined (there is no sensible repair);
2. **duplicate clicks** — identical ``(session, item, timestamp)``
   triples beyond the first are dropped (tracker double-fires);
3. **non-monotonic timestamps** — clicks inside one session whose
   timestamp precedes an earlier click are clamped forward (``repair``)
   or the whole session is quarantined (``reject``);
4. **bot-like sessions** — sessions longer than ``max_session_clicks``
   or sustaining a mean inter-click gap below
   ``min_mean_click_gap_seconds`` are quarantined (``reject``) or
   truncated to the cap (``repair``, rate offenders still rejected).

The validator never mutates its input and never raises on bad data; the
report carries enough to decide whether the day's export is usable at
all (``max_quarantine_rate``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.types import Click, SessionId

#: policy knob values for the repairable checks.
REJECT = "reject"
REPAIR = "repair"

#: How many quarantined-row samples the report retains.
MAX_QUARANTINE_SAMPLES = 25


@dataclass(frozen=True)
class IngestionPolicy:
    """Knobs for the ingestion validator.

    ``reject`` quarantines the offending session outright; ``repair``
    fixes what is fixable and keeps the session. Malformed rows are
    always quarantined regardless of policy.
    """

    timestamp_policy: str = REPAIR
    bot_policy: str = REJECT
    #: sessions longer than this are bot-like (the paper caps evolving
    #: sessions for the same reason: humans do not click 500 items).
    max_session_clicks: int = 200
    #: a session of >= ``bot_min_clicks`` clicks whose mean inter-click
    #: gap is below this is bot-like (sub-second sustained clicking).
    min_mean_click_gap_seconds: float = 1.0
    bot_min_clicks: int = 10
    #: builds quarantining more than this fraction of input clicks are
    #: not trustworthy; the pipeline refuses them.
    max_quarantine_rate: float = 0.25

    def __post_init__(self) -> None:
        for name in ("timestamp_policy", "bot_policy"):
            value = getattr(self, name)
            if value not in (REJECT, REPAIR):
                raise ValueError(
                    f"{name} must be {REJECT!r} or {REPAIR!r}, got {value!r}"
                )
        if self.max_session_clicks < 1:
            raise ValueError("max_session_clicks must be >= 1")
        if not 0.0 <= self.max_quarantine_rate <= 1.0:
            raise ValueError("max_quarantine_rate must be in [0, 1]")


@dataclass
class ValidationReport:
    """What the validator accepted, repaired and quarantined."""

    input_clicks: int = 0
    accepted_clicks: int = 0
    repaired_clicks: int = 0
    quarantined_clicks: int = 0
    quarantined_sessions: int = 0
    #: per-check counters, e.g. {"malformed": 3, "duplicate": 10, ...}.
    issues: dict[str, int] = field(default_factory=dict)
    #: up to MAX_QUARANTINE_SAMPLES of (check, session_id, detail).
    samples: list[tuple[str, SessionId, str]] = field(default_factory=list)

    def count(self, check: str, amount: int = 1) -> None:
        self.issues[check] = self.issues.get(check, 0) + amount

    def sample(self, check: str, session_id: SessionId, detail: str) -> None:
        if len(self.samples) < MAX_QUARANTINE_SAMPLES:
            self.samples.append((check, session_id, detail))

    @property
    def quarantine_rate(self) -> float:
        if self.input_clicks == 0:
            return 0.0
        return self.quarantined_clicks / self.input_clicks

    def acceptable(self, policy: IngestionPolicy) -> bool:
        """Is the day's export trustworthy enough to build from?"""
        return self.quarantine_rate <= policy.max_quarantine_rate

    def summary(self) -> dict:
        """JSON-friendly digest, stored in index-artifact provenance."""
        return {
            "input_clicks": self.input_clicks,
            "accepted_clicks": self.accepted_clicks,
            "repaired_clicks": self.repaired_clicks,
            "quarantined_clicks": self.quarantined_clicks,
            "quarantined_sessions": self.quarantined_sessions,
            "quarantine_rate": self.quarantine_rate,
            "issues": dict(sorted(self.issues.items())),
        }


class ClickLogValidator:
    """Validates raw clicks into a build-safe click list plus a report."""

    def __init__(self, policy: IngestionPolicy | None = None) -> None:
        self.policy = policy or IngestionPolicy()

    def validate(
        self, clicks: Iterable[Click]
    ) -> tuple[list[Click], ValidationReport]:
        """Run every check; returns (clean clicks, report)."""
        report = ValidationReport()
        sessions: dict[SessionId, list[Click]] = {}
        for click in clicks:
            report.input_clicks += 1
            if not self._well_formed(click):
                report.count("malformed")
                report.sample("malformed", click.session_id, repr(click))
                continue
            sessions.setdefault(click.session_id, []).append(click)

        accepted: list[Click] = []
        for session_id, session_clicks in sessions.items():
            kept = self._validate_session(session_id, session_clicks, report)
            if kept is None:
                report.quarantined_sessions += 1
            else:
                accepted.extend(kept)
        report.accepted_clicks = len(accepted)
        # Every input click is either accepted or quarantined, exactly once.
        report.quarantined_clicks = report.input_clicks - report.accepted_clicks
        return accepted, report

    @staticmethod
    def _well_formed(click: Click) -> bool:
        return (
            isinstance(click.session_id, int)
            and isinstance(click.item_id, int)
            and isinstance(click.timestamp, int)
            and click.session_id >= 0
            and click.item_id >= 0
            and click.timestamp >= 0
        )

    def _validate_session(
        self,
        session_id: SessionId,
        session_clicks: list[Click],
        report: ValidationReport,
    ) -> list[Click] | None:
        """All checks for one session; None quarantines it entirely.

        Clicks are inspected in *arrival order* — that is where backwards
        clocks are visible; sorting first would silently hide them.
        """
        policy = self.policy
        monotonic, repairs = self._monotonic(session_clicks)
        if repairs:
            if policy.timestamp_policy == REJECT:
                report.count("non_monotonic_session", 1)
                report.sample(
                    "non_monotonic_session",
                    session_id,
                    f"{repairs} backwards timestamps",
                )
                return None
            report.count("non_monotonic_repaired", repairs)
            report.repaired_clicks += repairs
        ordered = self._dedupe(session_id, monotonic, report)

        verdict = self._bot_verdict(ordered)
        if verdict is not None:
            if policy.bot_policy == REJECT or verdict == "bot_click_rate":
                # A sustained inhuman click rate cannot be repaired by
                # truncation; it is a crawler either way.
                report.count(verdict)
                report.sample(verdict, session_id, f"{len(ordered)} clicks")
                return None
            report.count("bot_truncated")
            ordered = ordered[: policy.max_session_clicks]
        return ordered

    def _dedupe(
        self,
        session_id: SessionId,
        session_clicks: list[Click],
        report: ValidationReport,
    ) -> list[Click]:
        seen: set[tuple[int, int]] = set()
        kept: list[Click] = []
        duplicates = 0
        for click in session_clicks:
            key = (click.item_id, click.timestamp)
            if key in seen:
                duplicates += 1
                continue
            seen.add(key)
            kept.append(click)
        if duplicates:
            report.count("duplicate", duplicates)
            report.sample("duplicate", session_id, f"{duplicates} duplicates")
        return kept

    @staticmethod
    def _monotonic(arrival_order: list[Click]) -> tuple[list[Click], int]:
        """Clamp backwards timestamps to the running maximum.

        Returns (clicks in arrival order, repair count). A backwards
        timestamp inside one session means the exporter interleaved two
        clock domains; clamping preserves the arrival order the user
        actually clicked in.
        """
        repairs = 0
        result: list[Click] = []
        high_water = None
        for click in arrival_order:
            if high_water is not None and click.timestamp < high_water:
                click = Click(click.session_id, click.item_id, high_water)
                repairs += 1
            high_water = click.timestamp
            result.append(click)
        return result, repairs

    def _bot_verdict(self, ordered: list[Click]) -> str | None:
        policy = self.policy
        if len(ordered) > policy.max_session_clicks:
            return "bot_session_length"
        if len(ordered) >= policy.bot_min_clicks:
            span = ordered[-1].timestamp - ordered[0].timestamp
            mean_gap = span / (len(ordered) - 1)
            if mean_gap < policy.min_mean_click_gap_seconds:
                return "bot_click_rate"
        return None


def validate_clicks(
    clicks: Iterable[Click] | Sequence[Click],
    policy: IngestionPolicy | None = None,
) -> tuple[list[Click], ValidationReport]:
    """One-call façade over :class:`ClickLogValidator`."""
    return ClickLogValidator(policy).validate(clicks)
