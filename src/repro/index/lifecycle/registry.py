"""Versioned, checksummed index artifacts with atomic publication.

The paper's Spark job writes the daily index to shared cloud storage and
the serving pods ingest it at startup (§4.2, Figure 1). That hand-off is
exactly where a truncated upload or a bit-flip takes the fleet down, so
the registry hardens it:

* every build becomes an immutable **version directory**
  ``v000042/{index.vmis, manifest.json}``; the manifest records the
  SHA-256 of the artifact, build statistics and click-log provenance
  (source, parse/validation reports);
* artifacts and manifests are published **atomically**: written to a
  temp file in the same directory, fsync'd, then renamed — a reader can
  never observe a half-written artifact;
* the **CURRENT pointer** (which version serving should load) is a tiny
  file updated with the same tmp+fsync+rename dance, so promotion and
  rollback are single atomic operations;
* loading verifies the checksum before deserialisation and **falls back
  to the previous good version** when the current artifact is corrupt —
  a bad daily build degrades to yesterday's index, never to an outage.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.core.locking import guarded_by
from repro.index.serialization import (
    IndexArtifact,
    deserialize_artifact,
    serialize_artifact,
)

ARTIFACT_NAME = "index.vmis"
MANIFEST_NAME = "manifest.json"
CURRENT_POINTER = "CURRENT"
_VERSION_RE = re.compile(r"^v(\d{6})$")


class RegistryError(RuntimeError):
    """A registry invariant was violated (unknown version, no artifact)."""


@dataclass(frozen=True)
class IndexManifest:
    """Sidecar metadata of one registered index artifact."""

    version: str
    checksum_sha256: str
    artifact_bytes: int
    created_at: float
    num_sessions: int
    num_items: int
    max_sessions_per_item: int
    #: per-stage row counts from the build pipeline, when available.
    build_stats: dict = field(default_factory=dict)
    #: click-log provenance: source path, parse report, validation report.
    provenance: dict = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(self.__dict__, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "IndexManifest":
        payload = json.loads(text)
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})


def _fsync_directory(path: Path) -> None:
    """Durably record a rename in its parent directory (POSIX only)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # e.g. Windows refuses O_RDONLY on directories
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """tmp + fsync + rename, so readers never see a partial file."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(path.parent)


@guarded_by("_lock", "_fallbacks")
class IndexRegistry:
    """A directory of versioned index artifacts plus the CURRENT pointer."""

    def __init__(self, root: str | Path, clock: Callable[[], float] = time.time) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._clock = clock
        self._lock = threading.Lock()
        # Versions skipped because their artifact failed verification,
        # in the order they were discovered (cleared on each load call).
        # Guarded: load_current may race a monitoring scrape reading
        # last_fallbacks from another thread.
        self._fallbacks: list[str] = []

    @property
    def last_fallbacks(self) -> list[str]:
        """Snapshot of the versions skipped by the latest load call."""
        with self._lock:
            return list(self._fallbacks)

    # -- registration ---------------------------------------------------------

    def register(
        self,
        index: IndexArtifact,
        build_stats: dict | None = None,
        provenance: dict | None = None,
    ) -> IndexManifest:
        """Serialise, checksum and atomically publish a new version.

        Accepts either index layout — the dict/list ``SessionIndex``
        (``VMIS`` container) or the numpy ``ColumnarSessionIndex``
        (``VMIC`` container); :func:`load` dispatches on the magic.
        """
        version = self._next_version()
        data = serialize_artifact(index)
        manifest = IndexManifest(
            version=version,
            checksum_sha256=hashlib.sha256(data).hexdigest(),
            artifact_bytes=len(data),
            created_at=self._clock(),
            num_sessions=index.num_sessions,
            num_items=index.num_items,
            max_sessions_per_item=index.max_sessions_per_item,
            build_stats=build_stats or {},
            provenance=provenance or {},
        )
        directory = self.root / version
        directory.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(directory / ARTIFACT_NAME, data)
        atomic_write_bytes(
            directory / MANIFEST_NAME, manifest.to_json().encode("utf-8")
        )
        return manifest

    def _next_version(self) -> str:
        versions = self.versions()
        if not versions:
            return "v000001"
        last = int(_VERSION_RE.match(versions[-1]).group(1))  # type: ignore[union-attr]
        return f"v{last + 1:06d}"

    # -- enumeration ----------------------------------------------------------

    def versions(self) -> list[str]:
        """All registered versions, oldest first."""
        found = []
        for entry in self.root.iterdir():
            if entry.is_dir() and _VERSION_RE.match(entry.name):
                found.append(entry.name)
        return sorted(found)

    def manifest(self, version: str) -> IndexManifest:
        path = self.root / version / MANIFEST_NAME
        if not path.exists():
            raise RegistryError(f"no manifest for version {version!r}")
        return IndexManifest.from_json(path.read_text(encoding="utf-8"))

    def current_version(self) -> str | None:
        """The promoted version, or None before the first promotion."""
        pointer = self.root / CURRENT_POINTER
        if not pointer.exists():
            return None
        value = pointer.read_text(encoding="utf-8").strip()
        return value or None

    # -- promotion / rollback -------------------------------------------------

    def promote(self, version: str) -> str:
        """Atomically point CURRENT at ``version``."""
        if version not in self.versions():
            raise RegistryError(f"cannot promote unknown version {version!r}")
        atomic_write_bytes(
            self.root / CURRENT_POINTER, f"{version}\n".encode("utf-8")
        )
        return version

    def rollback(self) -> str:
        """Point CURRENT at the newest *older-than-current* good version."""
        current = self.current_version()
        if current is None:
            raise RegistryError("nothing promoted yet; cannot roll back")
        older = [v for v in self.versions() if v < current]
        for version in reversed(older):
            if self.verify(version):
                return self.promote(version)
        raise RegistryError(f"no good version older than {current!r} to roll back to")

    # -- loading --------------------------------------------------------------

    def verify(self, version: str) -> bool:
        """Does the version's artifact match its manifest checksum?"""
        try:
            self._read_verified(version)
        except (RegistryError, ValueError):
            return False
        return True

    def _read_verified(self, version: str) -> bytes:
        artifact = self.root / version / ARTIFACT_NAME
        if not artifact.exists():
            raise RegistryError(f"version {version!r} has no artifact")
        manifest = self.manifest(version)
        data = artifact.read_bytes()
        digest = hashlib.sha256(data).hexdigest()
        if digest != manifest.checksum_sha256:
            raise ValueError(
                f"artifact {version} corrupted: sha256 {digest[:12]}… != "
                f"manifest {manifest.checksum_sha256[:12]}…"
            )
        return data

    def load(self, version: str) -> IndexArtifact:
        """Load one version, verifying checksum before deserialisation."""
        return deserialize_artifact(self._read_verified(version))

    def load_current(self) -> tuple[IndexArtifact, str]:
        """Load the promoted version, falling back past corrupt artifacts.

        Walks from CURRENT towards older versions until one verifies and
        deserialises; every skipped version is recorded in
        :attr:`last_fallbacks`. Raises :class:`RegistryError` only when
        *no* version at or below CURRENT is loadable.
        """
        with self._lock:
            self._fallbacks = []
        current = self.current_version()
        if current is None:
            raise RegistryError("nothing promoted yet")
        candidates = [v for v in self.versions() if v <= current]
        for version in reversed(candidates):
            try:
                return self.load(version), version
            except (ValueError, RegistryError):
                with self._lock:
                    self._fallbacks.append(version)
        raise RegistryError(
            f"no loadable version at or below {current!r} "
            f"(tried {self.last_fallbacks})"
        )

    # -- housekeeping ---------------------------------------------------------

    def prune(self, keep: int = 5) -> list[str]:
        """Delete the oldest versions beyond ``keep``; never the current.

        Returns the versions removed. The CURRENT pointer (and anything
        newer than it) is always preserved so rollback stays possible
        among the kept set.
        """
        if keep < 1:
            raise ValueError("keep must be >= 1")
        versions = self.versions()
        current = self.current_version()
        removable = versions[:-keep] if len(versions) > keep else []
        removed = []
        for version in removable:
            if current is not None and version >= current:
                continue
            directory = self.root / version
            for child in directory.iterdir():
                child.unlink()
            directory.rmdir()
            removed.append(version)
        return removed
