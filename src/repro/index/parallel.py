"""Data-parallel index generation (the Spark/Dataproc substitute).

The paper runs the daily index build as a parallel dataflow on 75 cloud
machines. Here the same logical plan runs over local worker processes:

* clicks are **partitioned by session id** (sessions are the unit of work,
  so no shuffle is needed before sessionization);
* each worker sessionizes and inverts its partition into partial posting
  fragments of ``(item, timestamp, session_key)``;
* the driver **merges** fragments per item, sorts by descending timestamp
  and truncates to the ``m`` most recent sessions — the same combine step
  a Spark ``reduceByKey`` would perform.

Worker-level functions are module-level so they pickle under the default
process start method. With ``num_workers <= 1`` everything runs inline,
which is also the deterministic path used by most tests.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Sequence

from repro.core.index import SessionIndex
from repro.core.types import Click, ItemId, SessionId, Timestamp

# A partial result: external session key -> (timestamp, distinct items).
_PartialSessions = dict[SessionId, tuple[Timestamp, tuple[ItemId, ...]]]


def _sessionize_partition(clicks: Sequence[tuple[int, int, int]]) -> _PartialSessions:
    """Worker task: group one partition's clicks into finished sessions."""
    events: dict[SessionId, list[tuple[Timestamp, ItemId]]] = {}
    for session_id, item_id, timestamp in clicks:
        events.setdefault(session_id, []).append((timestamp, item_id))
    partial: _PartialSessions = {}
    for session_id, session_events in events.items():
        session_events.sort()
        items = tuple(dict.fromkeys(item for _, item in session_events))
        partial[session_id] = (session_events[-1][0], items)
    return partial


class ParallelIndexBuilder:
    """Partitioned, multi-process index build.

    Args:
        max_sessions_per_item: posting list cap ``m``.
        num_workers: worker processes; ``<= 1`` runs inline (no pool).
        num_partitions: how many session-hash partitions to create;
            defaults to ``4 * num_workers`` for load balancing.
    """

    def __init__(
        self,
        max_sessions_per_item: int = 5000,
        num_workers: int = 1,
        num_partitions: int | None = None,
    ) -> None:
        if max_sessions_per_item < 1:
            raise ValueError("max_sessions_per_item must be >= 1")
        self.max_sessions_per_item = max_sessions_per_item
        self.num_workers = max(1, num_workers)
        self.num_partitions = num_partitions or max(1, 4 * self.num_workers)

    def build(self, clicks: Iterable[Click]) -> SessionIndex:
        """Partition, sessionize in parallel, merge, pack."""
        partitions: list[list[tuple[int, int, int]]] = [
            [] for _ in range(self.num_partitions)
        ]
        for click in clicks:
            partitions[click.session_id % self.num_partitions].append(
                click.as_tuple()
            )

        if self.num_workers <= 1:
            partials = [_sessionize_partition(p) for p in partitions if p]
        else:
            with ProcessPoolExecutor(max_workers=self.num_workers) as pool:
                partials = list(
                    pool.map(_sessionize_partition, (p for p in partitions if p))
                )

        merged: _PartialSessions = {}
        for partial in partials:
            # Session ids are partitioned, so keys never collide.
            merged.update(partial)
        return SessionIndex.from_sessions(
            {sid: (ts, list(items)) for sid, (ts, items) in merged.items()},
            self.max_sessions_per_item,
        )


def build_index_parallel(
    clicks: Iterable[Click],
    max_sessions_per_item: int = 5000,
    num_workers: int = 1,
) -> SessionIndex:
    """One-call façade over :class:`ParallelIndexBuilder`."""
    builder = ParallelIndexBuilder(max_sessions_per_item, num_workers)
    return builder.build(clicks)
