"""Offline index generation pipeline (Section 4.2, left side of Figure 1).

The paper builds the session-similarity index once per day with an Apache
Spark pipeline over ~2.3 billion click events. This module reproduces that
pipeline as explicit relational stages over in-memory click logs:

1. **sessionize** — group clicks by session id, aggregating the ordered
   item list and the session's last-click timestamp;
2. **assign ids** — remap sessions to consecutive integers ordered by
   ascending timestamp (so the ``t`` array supports O(1) lookup and larger
   id means at-least-as-recent);
3. **invert** — explode sessions into (item, session, timestamp) postings;
4. **truncate** — keep, per item, only the ``m`` most recent sessions,
   sorted newest first;
5. **pack** — assemble the :class:`~repro.core.index.SessionIndex`.

Every stage reports row counts, so capacity planning (how big will the
index artifact be?) can be done from a sample, as the paper's team does
from daily BigQuery snapshots.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.deadline import Clock
from repro.core.index import SessionIndex
from repro.core.types import Click, ItemId, SessionId, Timestamp


@dataclass
class BuildReport:
    """Row counts and wall-clock duration per pipeline stage."""

    input_clicks: int = 0
    sessions: int = 0
    postings_before_truncation: int = 0
    postings_after_truncation: int = 0
    distinct_items: int = 0
    stage_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def truncation_ratio(self) -> float:
        """Fraction of postings kept after per-item truncation to m."""
        if self.postings_before_truncation == 0:
            return 1.0
        return self.postings_after_truncation / self.postings_before_truncation


class IndexBuilder:
    """Single-process index build with per-stage reporting.

    Args:
        max_sessions_per_item: the ``m`` hyperparameter (posting list cap).
        min_session_length: sessions shorter than this are dropped before
            inversion — single-click sessions can never contribute a
            neighbour item different from the query item.
    """

    def __init__(
        self,
        max_sessions_per_item: int = 5000,
        min_session_length: int = 1,
        perf_clock: Clock = time.perf_counter,
    ) -> None:
        if max_sessions_per_item < 1:
            raise ValueError("max_sessions_per_item must be >= 1")
        self.max_sessions_per_item = max_sessions_per_item
        self.min_session_length = min_session_length
        self.last_report: BuildReport | None = None
        self._perf = perf_clock

    def build(self, clicks: Iterable[Click]) -> SessionIndex:
        """Run all pipeline stages and return the finished index."""
        report = BuildReport()
        started = self._perf()
        sessions = self._sessionize(clicks, report)
        report.stage_seconds["sessionize"] = self._perf() - started

        started = self._perf()
        ordered = self._assign_ids(sessions, report)
        report.stage_seconds["assign_ids"] = self._perf() - started

        started = self._perf()
        index = self._invert_and_pack(ordered, report)
        report.stage_seconds["invert_and_pack"] = self._perf() - started

        self.last_report = report
        return index

    def _sessionize(
        self, clicks: Iterable[Click], report: BuildReport
    ) -> dict[SessionId, tuple[Timestamp, list[ItemId]]]:
        events: dict[SessionId, list[tuple[Timestamp, ItemId]]] = {}
        count = 0
        for click in clicks:
            count += 1
            events.setdefault(click.session_id, []).append(
                (click.timestamp, click.item_id)
            )
        report.input_clicks = count
        sessions: dict[SessionId, tuple[Timestamp, list[ItemId]]] = {}
        for session_id, session_events in events.items():
            if len(session_events) < self.min_session_length:
                continue
            session_events.sort()
            sessions[session_id] = (
                session_events[-1][0],
                [item for _, item in session_events],
            )
        report.sessions = len(sessions)
        return sessions

    @staticmethod
    def _assign_ids(
        sessions: dict[SessionId, tuple[Timestamp, list[ItemId]]],
        report: BuildReport,
    ) -> list[tuple[Timestamp, tuple[ItemId, ...]]]:
        ordered = sorted(
            ((ts, sid, items) for sid, (ts, items) in sessions.items()),
            key=lambda row: (row[0], row[1]),
        )
        del report  # ids are positional; nothing to count here
        return [(ts, tuple(dict.fromkeys(items))) for ts, _, items in ordered]

    def _invert_and_pack(
        self,
        ordered: list[tuple[Timestamp, tuple[ItemId, ...]]],
        report: BuildReport,
    ) -> SessionIndex:
        item_to_sessions: dict[ItemId, list[SessionId]] = {}
        item_session_counts: dict[ItemId, int] = {}
        session_timestamps: list[Timestamp] = []
        session_items: list[tuple[ItemId, ...]] = []
        postings = 0
        for internal_id, (timestamp, items) in enumerate(ordered):
            session_timestamps.append(timestamp)
            session_items.append(items)
            for item in items:
                postings += 1
                item_to_sessions.setdefault(item, []).append(internal_id)
                item_session_counts[item] = item_session_counts.get(item, 0) + 1
        report.postings_before_truncation = postings

        m = self.max_sessions_per_item
        kept = 0
        for posting_list in item_to_sessions.values():
            posting_list.reverse()
            if len(posting_list) > m:
                del posting_list[m:]
            kept += len(posting_list)
        report.postings_after_truncation = kept
        report.distinct_items = len(item_to_sessions)

        return SessionIndex(
            item_to_sessions=item_to_sessions,
            session_timestamps=session_timestamps,
            session_items=session_items,
            item_session_counts=item_session_counts,
            max_sessions_per_item=m,
        )


def build_index(
    clicks: Iterable[Click],
    max_sessions_per_item: int = 5000,
    min_session_length: int = 1,
) -> SessionIndex:
    """One-call façade over :class:`IndexBuilder`."""
    return IndexBuilder(max_sessions_per_item, min_session_length).build(clicks)
