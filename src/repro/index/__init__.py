"""Offline index generation, persistence, compression and maintenance."""

from repro.index.builder import BuildReport, IndexBuilder, build_index
from repro.index.capacity import (
    CPYTHON,
    CapacityEstimate,
    CostSchedule,
    NATIVE,
    estimate_capacity,
    extrapolate,
    measure_index,
)
from repro.index.compression import (
    CompressedSessionIndex,
    compression_ratio,
    uncompressed_payload_bytes,
)
from repro.index.lifecycle import (
    CanaryQualityGate,
    ClickLogValidator,
    DailyIndexLifecycle,
    GatePolicy,
    IndexRegistry,
    IngestionPolicy,
    RolloutController,
    RolloutPolicy,
    ValidationReport,
)
from repro.index.maintenance import IncrementalIndexer, rebuild_equivalent
from repro.index.parallel import ParallelIndexBuilder, build_index_parallel
from repro.index.serialization import (
    deserialize_artifact,
    deserialize_columnar,
    deserialize_index,
    load_artifact,
    load_index,
    save_artifact,
    save_index,
    serialize_artifact,
    serialize_columnar,
    serialize_index,
)

__all__ = [
    "BuildReport",
    "CPYTHON",
    "CapacityEstimate",
    "CostSchedule",
    "NATIVE",
    "estimate_capacity",
    "extrapolate",
    "measure_index",
    "CanaryQualityGate",
    "ClickLogValidator",
    "CompressedSessionIndex",
    "DailyIndexLifecycle",
    "GatePolicy",
    "IncrementalIndexer",
    "IndexBuilder",
    "IndexRegistry",
    "IngestionPolicy",
    "RolloutController",
    "RolloutPolicy",
    "ValidationReport",
    "ParallelIndexBuilder",
    "build_index",
    "build_index_parallel",
    "compression_ratio",
    "deserialize_artifact",
    "deserialize_columnar",
    "deserialize_index",
    "load_artifact",
    "load_index",
    "rebuild_equivalent",
    "save_artifact",
    "save_index",
    "serialize_artifact",
    "serialize_columnar",
    "serialize_index",
    "uncompressed_payload_bytes",
]
