"""Embedded key-value store with TTL and WAL (RocksDB substitute)."""

from repro.kvstore.store import KVStore
from repro.kvstore.wal import OP_DELETE, OP_PUT, WalRecord, WriteAheadLog

__all__ = ["KVStore", "OP_DELETE", "OP_PUT", "WalRecord", "WriteAheadLog"]
