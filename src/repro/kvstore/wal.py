"""Write-ahead log for the embedded key-value store.

Binary, append-only record stream. Each record is::

    u32 crc32  (over everything after this field)
    u8  op     (1 = put, 2 = delete)
    u32 key length,   key bytes
    f64 expire_at     (0.0 = never expires; puts only)
    u32 value length, value bytes   (puts only)

Replay is tolerant of a torn final record (a crash mid-append), which is
truncated away — the standard WAL recovery contract.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import BinaryIO, Iterator

OP_PUT = 1
OP_DELETE = 2

_CRC = struct.Struct("<I")
_LEN = struct.Struct("<I")
_EXPIRY = struct.Struct("<d")


class WalRecord:
    """One decoded WAL entry."""

    __slots__ = ("op", "key", "value", "expire_at")

    def __init__(
        self, op: int, key: bytes, value: bytes = b"", expire_at: float = 0.0
    ) -> None:
        self.op = op
        self.key = key
        self.value = value
        self.expire_at = expire_at

    def encode(self) -> bytes:
        body = bytearray()
        body.append(self.op)
        body += _LEN.pack(len(self.key))
        body += self.key
        if self.op == OP_PUT:
            body += _EXPIRY.pack(self.expire_at)
            body += _LEN.pack(len(self.value))
            body += self.value
        return _CRC.pack(zlib.crc32(bytes(body)) & 0xFFFFFFFF) + bytes(body)


def iter_records(data: bytes) -> Iterator[WalRecord]:
    """Decode a record stream from a byte buffer.

    Stops silently at a torn or corrupt final record — the same recovery
    contract as :meth:`WriteAheadLog.replay`, shared with the replication
    tail-shipping path, whose shipped byte ranges are WAL-encoded records
    and must survive a truncated transfer the same way a crashed log does.
    """
    offset = 0
    total = len(data)
    while offset + _CRC.size <= total:
        (stored_crc,) = _CRC.unpack_from(data, offset)
        record, consumed = _try_decode(data, offset + _CRC.size)
        if record is None:
            return  # torn tail
        body = data[offset + _CRC.size : offset + _CRC.size + consumed]
        if zlib.crc32(body) & 0xFFFFFFFF != stored_crc:
            return  # corrupted tail
        yield record
        offset += _CRC.size + consumed


def _try_decode(data: bytes, offset: int) -> tuple[WalRecord | None, int]:
    start = offset
    total = len(data)
    if offset + 1 + _LEN.size > total:
        return None, 0
    op = data[offset]
    offset += 1
    (key_len,) = _LEN.unpack_from(data, offset)
    offset += _LEN.size
    if offset + key_len > total:
        return None, 0
    key = data[offset : offset + key_len]
    offset += key_len
    if op == OP_DELETE:
        return WalRecord(op, key), offset - start
    if op != OP_PUT:
        return None, 0
    if offset + _EXPIRY.size + _LEN.size > total:
        return None, 0
    (expire_at,) = _EXPIRY.unpack_from(data, offset)
    offset += _EXPIRY.size
    (value_len,) = _LEN.unpack_from(data, offset)
    offset += _LEN.size
    if offset + value_len > total:
        return None, 0
    value = data[offset : offset + value_len]
    offset += value_len
    return WalRecord(op, key, value, expire_at), offset - start


class WriteAheadLog:
    """Append-only durability log; one instance owns one file handle."""

    def __init__(self, path: str | Path, sync_every: int = 0) -> None:
        """Open (creating if needed) the log at ``path``.

        Args:
            path: log file location.
            sync_every: fsync after every N appends; 0 disables fsync
                (fastest, the configuration used by simulations).
        """
        self.path = Path(path)
        self.sync_every = sync_every
        self._appends_since_sync = 0
        # The WAL handle deliberately outlives any one scope: it is held
        # open for the store's lifetime and closed via close()/compact().
        self._handle: BinaryIO = open(self.path, "ab")  # noqa: SIM115

    def append(self, record: WalRecord) -> None:
        """Append one record, honouring the fsync policy.

        The record is always flushed to the OS before the append returns —
        that is the WAL contract that makes crash recovery work: a process
        crash (the failure mode chaos testing injects) never loses an
        acknowledged write. ``sync_every`` additionally fsyncs, extending
        the guarantee to power loss at a latency cost.
        """
        self._handle.write(record.encode())
        self._handle.flush()
        self._appends_since_sync += 1
        if self.sync_every and self._appends_since_sync >= self.sync_every:
            import os

            os.fsync(self._handle.fileno())
            self._appends_since_sync = 0

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def replay(path: str | Path) -> Iterator[WalRecord]:
        """Yield all intact records; stop silently at a torn tail."""
        path = Path(path)
        if not path.exists():
            return
        yield from iter_records(path.read_bytes())
