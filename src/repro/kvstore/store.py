"""Embedded key-value store with TTL — the RocksDB substitute (§4.2).

Serenade keeps the evolving user sessions in a RocksDB instance colocated
with the serving process, configured to drop a session's data after 30
minutes of inactivity, and reports single-digit-microsecond read latency.
This module provides the same contract as a small LSM-style store:

* an in-memory memtable (hash map) for µs-scale reads and writes;
* an optional write-ahead log for durability, replayed on open;
* per-entry TTL with lazy expiry on read plus an explicit ``sweep``;
* ``compact`` to rewrite the WAL down to the live entry set.

The store is thread-safe; the serving layer shares one instance per pod.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Callable, Iterator

from repro.core.locking import guarded_by, holds_lock
from repro.kvstore.wal import OP_DELETE, OP_PUT, WalRecord, WriteAheadLog

Clock = Callable[[], float]


@guarded_by("_lock", "_memtable", "_wal")
class KVStore:
    """Thread-safe in-process key-value store with TTL and optional WAL."""

    def __init__(
        self,
        wal_path: str | Path | None = None,
        default_ttl: float | None = None,
        clock: Clock = time.monotonic,
        sync_every: int = 0,
    ) -> None:
        """Create or reopen a store.

        Args:
            wal_path: durability log location; ``None`` = memory-only.
            default_ttl: seconds after which entries expire unless a put
                overrides it; ``None`` = entries never expire by default.
                Serenade uses 30 minutes (1800 s) for evolving sessions.
            clock: time source; inject a fake for simulations and tests.
            sync_every: fsync cadence for the WAL (0 = never fsync).
        """
        self._memtable: dict[bytes, tuple[bytes, float]] = {}
        self._lock = threading.Lock()
        self._clock = clock
        self.default_ttl = default_ttl
        self._wal: WriteAheadLog | None = None
        if wal_path is not None:
            self._replay(wal_path)
            self._wal = WriteAheadLog(wal_path, sync_every=sync_every)

    @holds_lock("_lock")
    def _replay(self, wal_path: str | Path) -> None:
        # Called from __init__ before the store is shared; annotated as a
        # lock-holder because it touches the memtable single-threaded.
        now = self._clock()
        for record in WriteAheadLog.replay(wal_path):
            if record.op == OP_PUT:
                if record.expire_at != 0.0 and record.expire_at <= now:
                    self._memtable.pop(record.key, None)
                else:
                    self._memtable[record.key] = (record.value, record.expire_at)
            elif record.op == OP_DELETE:
                self._memtable.pop(record.key, None)

    def _expire_at(self, ttl: float | None) -> float:
        if ttl is None:
            ttl = self.default_ttl
        if ttl is None:
            return 0.0
        return self._clock() + ttl

    def now(self) -> float:
        """The store's current clock reading (the injected time source)."""
        return self._clock()

    def put(self, key: bytes, value: bytes, ttl: float | None = None) -> float:
        """Insert or overwrite an entry; ``ttl`` overrides the default.

        Returns the absolute expiry the entry was stored with (0.0 =
        never), so callers mirroring writes into a replication stream can
        ship the exact expiry rather than recomputing it.
        """
        expire_at = self._expire_at(ttl)
        with self._lock:
            self._memtable[key] = (value, expire_at)
            if self._wal is not None:
                self._wal.append(WalRecord(OP_PUT, key, value, expire_at))
        return expire_at

    def get(self, key: bytes) -> bytes | None:
        """Read an entry; expired entries are removed and read as missing."""
        with self._lock:
            entry = self._memtable.get(key)
            if entry is None:
                return None
            value, expire_at = entry
            if expire_at != 0.0 and expire_at <= self._clock():
                del self._memtable[key]
                return None
            return value

    def delete(self, key: bytes) -> bool:
        """Remove an entry; returns whether a live entry was removed."""
        with self._lock:
            existed = self._remove_if_live(key)
            if self._wal is not None:
                self._wal.append(WalRecord(OP_DELETE, key))
            return existed

    @holds_lock("_lock")
    def _remove_if_live(self, key: bytes) -> bool:
        entry = self._memtable.pop(key, None)
        if entry is None:
            return False
        _, expire_at = entry
        return expire_at == 0.0 or expire_at > self._clock()

    def touch(self, key: bytes, ttl: float | None = None) -> bool:
        """Refresh an entry's TTL without rewriting its value.

        This is how the session store keeps *active* sessions alive while
        idle ones age out after 30 minutes.
        """
        with self._lock:
            entry = self._memtable.get(key)
            if entry is None:
                return False
            value, expire_at = entry
            if expire_at != 0.0 and expire_at <= self._clock():
                del self._memtable[key]
                return False
            new_expire = self._expire_at(ttl)
            self._memtable[key] = (value, new_expire)
            if self._wal is not None:
                self._wal.append(WalRecord(OP_PUT, key, value, new_expire))
            return True

    def sweep(self) -> int:
        """Drop all expired entries; returns how many were removed."""
        now = self._clock()
        with self._lock:
            dead = [
                key
                for key, (_, expire_at) in self._memtable.items()
                if expire_at != 0.0 and expire_at <= now
            ]
            for key in dead:
                del self._memtable[key]
            return len(dead)

    def compact(self) -> None:
        """Rewrite the WAL to contain exactly the live entries."""
        with self._lock:
            if self._wal is None:
                return
            path = self._wal.path
            self._wal.close()
            tmp = path.with_suffix(path.suffix + ".compact")
            with WriteAheadLog(tmp) as fresh:
                now = self._clock()
                for key, (value, expire_at) in self._memtable.items():
                    if expire_at == 0.0 or expire_at > now:
                        fresh.append(WalRecord(OP_PUT, key, value, expire_at))
            tmp.replace(path)
            self._wal = WriteAheadLog(path)

    def __len__(self) -> int:
        """Number of entries, including not-yet-swept expired ones."""
        with self._lock:
            return len(self._memtable)

    def items(self) -> dict[bytes, bytes]:
        """Snapshot of live entries as a plain dict.

        The canonical way to compare store state across a crash+replay
        cycle: ``store_after.items() == store_before.items()`` holds
        whenever every acknowledged write made it into the WAL.
        """
        now = self._clock()
        with self._lock:
            return {
                key: value
                for key, (value, expire_at) in self._memtable.items()
                if expire_at == 0.0 or expire_at > now
            }

    def keys(self) -> Iterator[bytes]:
        """Snapshot of live keys."""
        now = self._clock()
        with self._lock:
            return iter(
                [
                    key
                    for key, (_, expire_at) in self._memtable.items()
                    if expire_at == 0.0 or expire_at > now
                ]
            )

    def close(self) -> None:
        with self._lock:
            if self._wal is not None:
                self._wal.close()

    def __enter__(self) -> "KVStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
