"""Typed benchmark reports: structured rows in, text + JSON out.

The benchmark suite used to build reports as free-form strings and hand
them to ``write_report(name, text)`` — readable for humans, useless for
machines. :class:`BenchReport` replaces that: modules declare tables
(:class:`Column` specs plus value rows), shape checks, headline metrics
and free-text notes, and the report renders **both** artifacts from one
source of truth:

* ``benchmarks/results/<name>.txt`` — the legacy human-readable table,
  unchanged in spirit;
* ``benchmarks/results/<name>.json`` — a structured record (rows,
  checks, metrics, metadata) the regression gate and future tooling can
  consume without parsing prose.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

from repro.bench.schema import HIGHER, LOWER, Metric

#: Version of the report JSON layout (independent of BENCH_* records).
REPORT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Column:
    """One table column: header, width, alignment and value format."""

    header: str
    width: int = 10
    align: str = ">"
    fmt: str = ""

    def format_cell(self, value: object) -> str:
        if self.fmt and isinstance(value, (int, float)) and not isinstance(
            value, bool
        ):
            text = format(value, self.fmt)
        else:
            text = str(value)
        return format(text, f"{self.align}{self.width}")


class _Table:
    def __init__(self, columns: Sequence[Column]) -> None:
        self.columns = tuple(columns)
        self.rows: list[tuple[object, ...]] = []

    def add(self, values: Sequence[object]) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def render(self) -> list[str]:
        header = " ".join(
            format(c.header, f"{c.align}{c.width}") for c in self.columns
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                " ".join(
                    column.format_cell(value)
                    for column, value in zip(self.columns, row)
                )
            )
        return lines

    def to_dict(self) -> dict[str, object]:
        return {
            "columns": [c.header for c in self.columns],
            "rows": [list(row) for row in self.rows],
        }


class BenchReport:
    """One benchmark module's structured result artifact."""

    def __init__(
        self,
        name: str,
        title: str = "",
        metadata: Mapping[str, object] | None = None,
    ) -> None:
        self.name = name
        self.title = title
        self.metadata: dict[str, object] = dict(metadata or {})
        self._sections: list[object] = []  # _Table | str (rendered line)
        self._checks: list[tuple[str, bool]] = []
        self._metrics: dict[str, Metric] = {}

    # -- content -------------------------------------------------------

    def table(self, *columns: Column) -> None:
        """Start a new table; subsequent :meth:`row` calls append to it."""
        self._sections.append(_Table(columns))

    def row(self, *values: object) -> None:
        tables = [s for s in self._sections if isinstance(s, _Table)]
        if not tables:
            raise ValueError("call table(...) before row(...)")
        tables[-1].add(values)

    def note(self, text: str = "") -> None:
        """A free-text line (the escape hatch for prose findings)."""
        self._sections.append(text)

    def check(self, label: str, passed: bool) -> bool:
        """Record a paper shape check; returns ``passed`` so callers can
        keep asserting on the same expression they report."""
        self._checks.append((label, bool(passed)))
        self._sections.append(f"shape check: {label}: {bool(passed)}")
        return bool(passed)

    def metric(
        self,
        name: str,
        value: float,
        unit: str = "",
        direction: str = LOWER,
    ) -> float:
        """Record a headline scalar for the JSON record (not rendered in
        the text artifact unless also stated via :meth:`note`)."""
        self._metrics[name] = Metric(float(value), unit, direction)
        return float(value)

    # -- introspection -------------------------------------------------

    @property
    def checks(self) -> list[tuple[str, bool]]:
        return list(self._checks)

    @property
    def metrics(self) -> dict[str, Metric]:
        return dict(self._metrics)

    def all_checks_passed(self) -> bool:
        return all(passed for _, passed in self._checks)

    # -- rendering -----------------------------------------------------

    def render_text(self) -> str:
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
            lines.append("")
        for section in self._sections:
            if isinstance(section, _Table):
                lines.extend(section.render())
            else:
                lines.append(section)
        return "\n".join(lines)

    def to_record(self) -> dict[str, object]:
        return {
            "report_schema_version": REPORT_SCHEMA_VERSION,
            "report": self.name,
            "title": self.title,
            "metadata": dict(self.metadata),
            "tables": [
                s.to_dict() for s in self._sections if isinstance(s, _Table)
            ],
            "checks": [
                {"label": label, "passed": passed}
                for label, passed in self._checks
            ],
            "metrics": {
                name: metric.to_dict()
                for name, metric in self._metrics.items()
            },
        }

    def write(self, directory: str | Path) -> str:
        """Persist both artifacts; returns the rendered text."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        text = self.render_text()
        (directory / f"{self.name}.txt").write_text(text + "\n")
        (directory / f"{self.name}.json").write_text(
            json.dumps(self.to_record(), indent=2, sort_keys=True) + "\n"
        )
        return text


__all__ = ["BenchReport", "Column", "HIGHER", "LOWER", "REPORT_SCHEMA_VERSION"]
