"""The structured benchmark runner: arms in, ``BENCH_<arm>.json`` out.

``python -m repro bench run`` drives this module: it executes the
registered gate arms under a named profile, assembles each
:class:`~repro.bench.schema.BenchRecord` with full provenance (schema
version, seed, git sha, environment fingerprint, workload regime) and
publishes the records atomically. The comparator
(:mod:`repro.bench.comparator`) then turns two directories of records
into a gate verdict.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.bench.arms import ARMS, PROFILES, ArmSpec, BenchProfile
from repro.bench.probes import current_git_sha, fingerprint_env
from repro.bench.schema import (
    BenchRecord,
    load_record,
    record_path,
    save_record,
    validate_record,
)

#: The seed every committed baseline uses; ``bench run`` defaults to it.
DEFAULT_SEED = 2022


def arm_names() -> list[str]:
    return sorted(ARMS)


def resolve_arms(names: Iterable[str] | None) -> list[ArmSpec]:
    """Map arm names to specs; ``None`` or ``["all"]`` means every arm."""
    requested = list(names or [])
    if not requested or requested == ["all"]:
        return [ARMS[name] for name in arm_names()]
    specs = []
    for name in requested:
        if name not in ARMS:
            raise ValueError(
                f"unknown arm {name!r}; known: {', '.join(arm_names())}"
            )
        specs.append(ARMS[name])
    return specs


def resolve_profile(name: str) -> BenchProfile:
    if name not in PROFILES:
        raise ValueError(
            f"unknown profile {name!r}; known: {', '.join(sorted(PROFILES))}"
        )
    return PROFILES[name]


def run_arm(
    spec: ArmSpec,
    profile: BenchProfile,
    seed: int = DEFAULT_SEED,
    clock: Callable[[], float] = time.perf_counter,
    wall_clock: Callable[[], float] = time.time,
) -> BenchRecord:
    """Execute one arm and assemble its provenance-stamped record."""
    outcome = spec.run(profile, seed, clock)
    record = BenchRecord(
        arm=spec.name,
        profile=profile.name,
        seed=seed,
        git_sha=current_git_sha(),
        created_unix=wall_clock(),
        env=fingerprint_env(),
        workload=dict(outcome.workload),
        metrics=dict(outcome.metrics),
        notes=tuple(outcome.notes),
    )
    validate_record(record)
    return record


def run_arms(
    names: Sequence[str] | None,
    profile_name: str,
    out_dir: str | Path,
    seed: int = DEFAULT_SEED,
    clock: Callable[[], float] = time.perf_counter,
    wall_clock: Callable[[], float] = time.time,
) -> list[tuple[BenchRecord, Path]]:
    """Run the requested arms and publish one record per arm."""
    profile = resolve_profile(profile_name)
    published: list[tuple[BenchRecord, Path]] = []
    for spec in resolve_arms(names):
        record = run_arm(spec, profile, seed, clock, wall_clock)
        path = save_record(record, out_dir)
        published.append((record, path))
    return published


def summarize_record(record: BenchRecord) -> str:
    """One human line per arm, the shape the CLI prints after a run."""
    p90 = record.metric_value("latency_p90_ms")
    throughput = record.metric_value("throughput_rps")
    sla = record.metric_value("sla_attainment")
    memory_mib = record.metric_value("peak_memory_bytes") / (1024 * 1024)
    return (
        f"{record.arm:<10} p90 {p90:8.3f} ms   "
        f"throughput {throughput:10,.0f} rps   "
        f"SLA {sla:6.1%}   peak mem {memory_mib:8.1f} MiB"
    )


def baseline_status(directory: str | Path) -> list[str]:
    """``bench list`` lines: every arm with its baseline state."""
    lines = []
    for name in arm_names():
        spec = ARMS[name]
        path = record_path(directory, name)
        if path.exists():
            try:
                record = load_record(path)
            except Exception as error:  # surfaced, not swallowed
                state = f"UNREADABLE baseline ({error})"
            else:
                state = (
                    f"baseline @ {record.git_sha[:12]} "
                    f"(profile {record.profile}, seed {record.seed}): "
                    f"p90 {record.metric_value('latency_p90_ms'):.3f} ms"
                )
        else:
            state = "no baseline committed"
        lines.append(f"{name:<10} {state}")
        lines.append(f"{'':<10}   {spec.description}")
    return lines
