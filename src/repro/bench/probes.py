"""Measurement probes: latency samples, peak memory, provenance.

The probes are deliberately dumb and injectable. :class:`LatencyProbe`
takes its clock as a constructor argument (the project's clock-hygiene
rule), collects raw per-call samples and reduces them to the schema's
percentile/throughput/SLA metrics. :class:`MemoryProbe` wraps
:mod:`tracemalloc` — it is never active while latencies are being taken,
because tracing roughly doubles allocation cost and would poison the
timing samples.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
import time
import tracemalloc
from typing import Callable, Sequence


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over raw samples (no numpy needed here)."""
    if not samples:
        raise ValueError("no samples collected")
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


class LatencyProbe:
    """Collects per-call latencies and reduces them to gate metrics."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.samples: list[float] = []

    def sample(self, fn: Callable[[], object]) -> object:
        """Run ``fn`` once, recording its wall time in seconds."""
        started = self._clock()
        result = fn()
        self.samples.append(self._clock() - started)
        return result

    def record(self, seconds: float) -> None:
        """Record an externally measured duration."""
        self.samples.append(seconds)

    def merge_best(self, other: "LatencyProbe") -> None:
        """Keep the per-position minimum of two interleaved rounds.

        Benchmarks here follow the interleaved best-of-N discipline
        (CONTRIBUTING): the minimum of matched rounds strips scheduler
        noise while preserving the sample-to-sample shape.
        """
        if len(other.samples) != len(self.samples):
            raise ValueError(
                "can only merge rounds over the same call sequence "
                f"({len(self.samples)} vs {len(other.samples)} samples)"
            )
        self.samples = [
            min(mine, theirs)
            for mine, theirs in zip(self.samples, other.samples)
        ]

    def percentile_ms(self, q: float) -> float:
        return percentile(self.samples, q) * 1e3

    def total_seconds(self) -> float:
        return sum(self.samples)

    def throughput_rps(self) -> float:
        total = self.total_seconds()
        if total <= 0.0:
            raise ValueError("cannot derive throughput from zero elapsed time")
        return len(self.samples) / total

    def sla_attainment(self, budget_ms: float) -> float:
        """Fraction of calls inside the serving SLA budget."""
        if not self.samples:
            raise ValueError("no samples collected")
        budget = budget_ms / 1e3
        within = sum(1 for sample in self.samples if sample <= budget)
        return within / len(self.samples)


class MemoryProbe:
    """Peak-allocation probe over a ``with`` block, via tracemalloc.

    Nest-safe: if tracing is already on (e.g. under a coverage or test
    harness), the probe only resets and reads the peak counter instead
    of stopping someone else's trace.
    """

    def __init__(self) -> None:
        self.peak_bytes = 0
        self._owns_trace = False

    def __enter__(self) -> "MemoryProbe":
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_trace = True
        tracemalloc.reset_peak()
        return self

    def __exit__(self, *_exc_info: object) -> None:
        _, peak = tracemalloc.get_traced_memory()
        self.peak_bytes = int(peak)
        if self._owns_trace:
            tracemalloc.stop()
            self._owns_trace = False


def fingerprint_env() -> dict[str, object]:
    """The environment half of a record's provenance.

    Enough to explain cross-machine drift when two records disagree:
    interpreter, platform and core count — the knobs that move latency
    and tracemalloc peaks.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


def current_git_sha(root: str | None = None) -> str:
    """The commit the record was measured at, or ``"unknown"`` outside a
    repository — provenance must never fail a benchmark run."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"
