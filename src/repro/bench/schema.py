"""The on-disk contract of the perf trajectory: ``BENCH_<arm>.json``.

Every benchmark arm run by :mod:`repro.bench.runner` produces one
:class:`BenchRecord` — the machine-readable counterpart of the paper's
headline table: latency percentiles, throughput, SLA attainment and peak
memory, stamped with enough provenance (schema version, seed, git sha,
environment fingerprint, workload regime) that two records can be
compared honestly or rejected as incomparable.

The schema is versioned so the regression gate can refuse records
written by an older layout instead of silently misreading them;
:func:`record_from_dict` raises :class:`BenchSchemaError` on anything it
does not fully understand.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping

#: Bump on any incompatible change to the record layout. The comparator
#: refuses records whose version differs from the reader's.
SCHEMA_VERSION = 1

#: Every gate arm must report at least these metrics (the paper's
#: headline quantities); :func:`validate_record` enforces it.
CORE_METRICS = (
    "latency_p50_ms",
    "latency_p90_ms",
    "latency_p99_ms",
    "throughput_rps",
    "sla_attainment",
    "peak_memory_bytes",
)

#: Metric directions: which way is better.
LOWER = "lower"
HIGHER = "higher"


class BenchSchemaError(ValueError):
    """A BENCH_*.json record is malformed, incomplete or from another
    schema version — the gate must refuse it, not guess."""


@dataclass(frozen=True)
class Metric:
    """One measured quantity with its unit and improvement direction."""

    value: float
    unit: str
    direction: str = LOWER

    def __post_init__(self) -> None:
        if self.direction not in (LOWER, HIGHER):
            raise BenchSchemaError(
                f"metric direction must be {LOWER!r} or {HIGHER!r}, "
                f"got {self.direction!r}"
            )

    def to_dict(self) -> dict[str, object]:
        return {
            "value": self.value,
            "unit": self.unit,
            "direction": self.direction,
        }


@dataclass(frozen=True)
class BenchRecord:
    """One arm's structured result — the unit of the perf trajectory."""

    arm: str
    profile: str
    seed: int
    git_sha: str
    created_unix: float
    env: Mapping[str, object]
    workload: Mapping[str, object]
    metrics: Mapping[str, Metric]
    notes: tuple[str, ...] = ()
    schema_version: int = SCHEMA_VERSION

    def metric_value(self, name: str) -> float:
        return self.metrics[name].value

    def to_dict(self) -> dict[str, object]:
        return {
            "schema_version": self.schema_version,
            "arm": self.arm,
            "profile": self.profile,
            "seed": self.seed,
            "git_sha": self.git_sha,
            "created_unix": self.created_unix,
            "env": dict(self.env),
            "workload": dict(self.workload),
            "metrics": {
                name: metric.to_dict() for name, metric in self.metrics.items()
            },
            "notes": list(self.notes),
        }


def _require(payload: Mapping[str, object], key: str, kind: type) -> object:
    if key not in payload:
        raise BenchSchemaError(f"record is missing required field {key!r}")
    value = payload[key]
    if kind is float and isinstance(value, int):
        value = float(value)
    if not isinstance(value, kind):
        raise BenchSchemaError(
            f"field {key!r} must be {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value


def record_from_dict(payload: Mapping[str, object]) -> BenchRecord:
    """Parse and validate one record; raise :class:`BenchSchemaError`
    on anything malformed or from a different schema version."""
    if not isinstance(payload, Mapping):
        raise BenchSchemaError(
            f"record must be a JSON object, got {type(payload).__name__}"
        )
    version = _require(payload, "schema_version", int)
    if version != SCHEMA_VERSION:
        raise BenchSchemaError(
            f"record has schema version {version}, this reader understands "
            f"{SCHEMA_VERSION}; regenerate it with `repro bench run`"
        )
    raw_metrics = _require(payload, "metrics", Mapping)
    metrics: dict[str, Metric] = {}
    for name, entry in raw_metrics.items():
        if not isinstance(entry, Mapping):
            raise BenchSchemaError(f"metric {name!r} must be an object")
        metrics[name] = Metric(
            value=float(_require(entry, "value", float)),
            unit=str(_require(entry, "unit", str)),
            direction=str(entry.get("direction", LOWER)),
        )
    record = BenchRecord(
        arm=str(_require(payload, "arm", str)),
        profile=str(_require(payload, "profile", str)),
        seed=int(_require(payload, "seed", int)),
        git_sha=str(_require(payload, "git_sha", str)),
        created_unix=float(_require(payload, "created_unix", float)),
        env=dict(_require(payload, "env", Mapping)),
        workload=dict(_require(payload, "workload", Mapping)),
        metrics=metrics,
        notes=tuple(str(note) for note in payload.get("notes", ())),
        schema_version=version,
    )
    return record


def validate_record(record: BenchRecord) -> None:
    """Check the gate contract: all core metrics present."""
    missing = [name for name in CORE_METRICS if name not in record.metrics]
    if missing:
        raise BenchSchemaError(
            f"arm {record.arm!r} record is missing core metrics: "
            f"{', '.join(missing)}"
        )


def record_filename(arm: str) -> str:
    return f"BENCH_{arm}.json"


def record_path(directory: str | Path, arm: str) -> Path:
    return Path(directory) / record_filename(arm)


def load_record(path: str | Path) -> BenchRecord:
    """Load one ``BENCH_<arm>.json``; :class:`BenchSchemaError` covers
    unreadable JSON as well as schema violations."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise BenchSchemaError(f"cannot read record {path}: {error}") from error
    return record_from_dict(payload)


def save_record(record: BenchRecord, directory: str | Path) -> Path:
    """Atomically publish a record as ``BENCH_<arm>.json`` (tmp + rename,
    the same discipline as the index registry)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = record_path(directory, record.arm)
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


def iter_record_paths(directory: str | Path) -> Iterator[tuple[str, Path]]:
    """All ``(arm, path)`` pairs of BENCH_*.json files in a directory."""
    directory = Path(directory)
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("BENCH_*.json")):
        yield path.stem[len("BENCH_"):], path
