"""The regression gate: compare BENCH_* records under a noise envelope.

Timing numbers jitter; a gate that fires on every wiggle gets deleted
within a week. Each metric therefore carries a **noise envelope** — a
relative tolerance *and* an absolute floor, both of which must be
exceeded on the worse side before a change counts as a regression (or,
symmetrically, as a reportable improvement). Latency envelopes are wide
(shared CI runners), model-derived quantities like the extrapolated
index size are tight (they are deterministic), and SLA attainment is
gated on an absolute drop.

The baseline follows the same shrink-only ratchet discipline as the
serenade-lint baseline: :func:`tighten_baseline` moves a metric only in
the improving direction and only when the improvement clears the
envelope, so lucky runs cannot loosen the gate and real wins tighten it
permanently.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.bench.schema import (
    BenchRecord,
    BenchSchemaError,
    LOWER,
    Metric,
    load_record,
    record_path,
)

# -- envelopes ---------------------------------------------------------------


@dataclass(frozen=True)
class Envelope:
    """How much worse a metric may get before the gate fires.

    Both bounds must be exceeded: the change must be more than ``rel``
    of the baseline value *and* more than ``abs_floor`` in the metric's
    own units. The floor keeps tiny baselines (a 0.2 ms p50) from
    tripping on microscopic absolute wiggles; the relative bound keeps
    huge baselines honest.
    """

    rel: float
    abs_floor: float


#: Defaults per metric name. Latency/throughput envelopes absorb
#: cross-machine variance between the baseline host and CI runners;
#: deterministic model outputs are held tight.
DEFAULT_ENVELOPES: dict[str, Envelope] = {
    "latency_p50_ms": Envelope(rel=0.75, abs_floor=0.05),
    "latency_p90_ms": Envelope(rel=0.75, abs_floor=0.10),
    "latency_p99_ms": Envelope(rel=1.00, abs_floor=0.25),
    "throughput_rps": Envelope(rel=0.50, abs_floor=25.0),
    "sla_attainment": Envelope(rel=0.0, abs_floor=0.02),
    "peak_memory_bytes": Envelope(rel=0.50, abs_floor=2 * 1024 * 1024),
    "extrapolated_gib": Envelope(rel=0.15, abs_floor=0.5),
    "cache_hit_rate": Envelope(rel=0.0, abs_floor=0.05),
    "vsknn_speedup": Envelope(rel=0.60, abs_floor=0.25),
    "batched_speedup": Envelope(rel=0.60, abs_floor=0.25),
}

#: Applied to metrics with no named envelope.
FALLBACK_ENVELOPE = Envelope(rel=0.50, abs_floor=0.0)


class EnvelopePolicy:
    """Per-metric envelopes, overridable from a JSON policy file."""

    def __init__(
        self,
        envelopes: Mapping[str, Envelope] | None = None,
        fallback: Envelope = FALLBACK_ENVELOPE,
    ) -> None:
        self._envelopes = dict(DEFAULT_ENVELOPES)
        self._envelopes.update(envelopes or {})
        self._fallback = fallback

    def envelope_for(self, metric: str) -> Envelope:
        return self._envelopes.get(metric, self._fallback)

    @classmethod
    def from_json(cls, path: str | Path) -> "EnvelopePolicy":
        """Load overrides: ``{"metric": {"rel": .., "abs": ..}, ...}``;
        the key ``"default"`` replaces the fallback envelope."""
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise BenchSchemaError(
                f"cannot read envelope policy {path}: {error}"
            ) from error
        if not isinstance(payload, dict):
            raise BenchSchemaError("envelope policy must be a JSON object")
        overrides: dict[str, Envelope] = {}
        fallback = FALLBACK_ENVELOPE
        for name, entry in payload.items():
            if not isinstance(entry, dict) or not {"rel", "abs"} <= set(entry):
                raise BenchSchemaError(
                    f"envelope for {name!r} must be an object with "
                    "'rel' and 'abs'"
                )
            envelope = Envelope(
                rel=float(entry["rel"]), abs_floor=float(entry["abs"])
            )
            if name == "default":
                fallback = envelope
            else:
                overrides[name] = envelope
        return cls(overrides, fallback)


# -- verdicts ----------------------------------------------------------------

#: Metric-level statuses.
METRIC_OK = "ok"
METRIC_IMPROVED = "improved"
METRIC_REGRESSED = "regressed"
METRIC_NEW = "new"
METRIC_MISSING = "missing"

#: Arm-level statuses.
ARM_OK = "ok"
ARM_IMPROVED = "improved"
ARM_REGRESSION = "regression"
ARM_NEW = "new"          # no baseline yet: passes, prompts a commit
ARM_MISSING = "missing"  # baseline exists, candidate vanished: fails
ARM_ERROR = "error"      # schema/profile/seed mismatch: diagnostics


@dataclass(frozen=True)
class MetricVerdict:
    """One metric's comparison outcome."""

    metric: str
    status: str
    baseline: float | None
    candidate: float | None
    unit: str = ""
    detail: str = ""


@dataclass
class ArmComparison:
    """One arm's comparison outcome with per-metric verdicts."""

    arm: str
    status: str
    verdicts: list[MetricVerdict] = field(default_factory=list)
    message: str = ""

    @property
    def regressions(self) -> list[MetricVerdict]:
        return [
            v
            for v in self.verdicts
            if v.status in (METRIC_REGRESSED, METRIC_MISSING)
        ]


def _classify(
    name: str, baseline: Metric, candidate: Metric, envelope: Envelope
) -> MetricVerdict:
    sign = 1.0 if baseline.direction == LOWER else -1.0
    # Positive delta = worse, regardless of direction.
    delta = sign * (candidate.value - baseline.value)
    threshold_rel = abs(baseline.value) * envelope.rel
    outside = abs(delta) > threshold_rel and abs(delta) > envelope.abs_floor
    if outside and delta > 0:
        status = METRIC_REGRESSED
        detail = (
            f"worse by {abs(delta):.4g} {baseline.unit} "
            f"(> rel {envelope.rel:.0%} and > abs {envelope.abs_floor:g})"
        )
    elif outside:
        status = METRIC_IMPROVED
        detail = f"better by {abs(delta):.4g} {baseline.unit}"
    else:
        status = METRIC_OK
        detail = "within envelope"
    return MetricVerdict(
        metric=name,
        status=status,
        baseline=baseline.value,
        candidate=candidate.value,
        unit=baseline.unit,
        detail=detail,
    )


def compare_records(
    baseline: BenchRecord,
    candidate: BenchRecord,
    policy: EnvelopePolicy | None = None,
) -> ArmComparison:
    """Compare one arm's candidate record against its baseline."""
    policy = policy or EnvelopePolicy()
    if baseline.profile != candidate.profile:
        return ArmComparison(
            arm=baseline.arm,
            status=ARM_ERROR,
            message=(
                f"profile mismatch: baseline {baseline.profile!r} vs "
                f"candidate {candidate.profile!r} — records are not comparable"
            ),
        )
    if baseline.seed != candidate.seed:
        return ArmComparison(
            arm=baseline.arm,
            status=ARM_ERROR,
            message=(
                f"seed mismatch: baseline {baseline.seed} vs candidate "
                f"{candidate.seed} — different workloads are not comparable"
            ),
        )
    verdicts: list[MetricVerdict] = []
    for name, base_metric in baseline.metrics.items():
        cand_metric = candidate.metrics.get(name)
        if cand_metric is None:
            verdicts.append(
                MetricVerdict(
                    metric=name,
                    status=METRIC_MISSING,
                    baseline=base_metric.value,
                    candidate=None,
                    unit=base_metric.unit,
                    detail="metric vanished from the candidate",
                )
            )
            continue
        if cand_metric.direction != base_metric.direction:
            return ArmComparison(
                arm=baseline.arm,
                status=ARM_ERROR,
                message=(
                    f"metric {name!r} changed direction "
                    f"({base_metric.direction} -> {cand_metric.direction})"
                ),
            )
        verdicts.append(
            _classify(name, base_metric, cand_metric, policy.envelope_for(name))
        )
    for name, cand_metric in candidate.metrics.items():
        if name not in baseline.metrics:
            verdicts.append(
                MetricVerdict(
                    metric=name,
                    status=METRIC_NEW,
                    baseline=None,
                    candidate=cand_metric.value,
                    unit=cand_metric.unit,
                    detail="no baseline yet",
                )
            )
    if any(v.status in (METRIC_REGRESSED, METRIC_MISSING) for v in verdicts):
        status = ARM_REGRESSION
    elif any(v.status == METRIC_IMPROVED for v in verdicts):
        status = ARM_IMPROVED
    else:
        status = ARM_OK
    return ArmComparison(arm=baseline.arm, status=status, verdicts=verdicts)


@dataclass
class ComparisonReport:
    """The whole gate run: one :class:`ArmComparison` per arm."""

    arms: list[ArmComparison]

    @property
    def exit_code(self) -> int:
        """0 = pass, 1 = regression (or vanished arm), 2 = diagnostics."""
        if any(arm.status == ARM_ERROR for arm in self.arms):
            return 2
        if any(
            arm.status in (ARM_REGRESSION, ARM_MISSING) for arm in self.arms
        ):
            return 1
        return 0

    def render(self) -> str:
        lines: list[str] = []
        for arm in self.arms:
            lines.append(f"[{arm.arm}] {arm.status.upper()}")
            if arm.message:
                lines.append(f"  {arm.message}")
            for verdict in arm.verdicts:
                if verdict.status == METRIC_OK:
                    continue
                base = (
                    "-" if verdict.baseline is None else f"{verdict.baseline:.4g}"
                )
                cand = (
                    "-"
                    if verdict.candidate is None
                    else f"{verdict.candidate:.4g}"
                )
                lines.append(
                    f"  {verdict.metric:<20} {verdict.status:<10} "
                    f"{base} -> {cand} {verdict.unit}  ({verdict.detail})"
                )
        verdict_word = {0: "PASS", 1: "REGRESSION", 2: "ERROR"}[self.exit_code]
        lines.append(f"gate verdict: {verdict_word}")
        return "\n".join(lines)


def compare_dirs(
    baseline_dir: str | Path,
    candidate_dir: str | Path,
    arms: Iterable[str] | None = None,
    policy: EnvelopePolicy | None = None,
) -> ComparisonReport:
    """Compare ``BENCH_<arm>.json`` files between two directories.

    With ``arms=None`` the union of arms present in either directory is
    compared, so a vanished arm cannot pass silently.
    """
    baseline_dir, candidate_dir = Path(baseline_dir), Path(candidate_dir)
    if arms is None:
        names = sorted(
            {p.stem[len("BENCH_"):] for p in baseline_dir.glob("BENCH_*.json")}
            | {p.stem[len("BENCH_"):] for p in candidate_dir.glob("BENCH_*.json")}
        )
    else:
        names = sorted(set(arms))
    comparisons: list[ArmComparison] = []
    for name in names:
        base_path = record_path(baseline_dir, name)
        cand_path = record_path(candidate_dir, name)
        try:
            if not base_path.exists():
                if not cand_path.exists():
                    comparisons.append(
                        ArmComparison(
                            arm=name,
                            status=ARM_ERROR,
                            message=(
                                f"no record for arm {name!r} in either "
                                "directory"
                            ),
                        )
                    )
                    continue
                load_record(cand_path)  # still validate the candidate
                comparisons.append(
                    ArmComparison(
                        arm=name,
                        status=ARM_NEW,
                        message=(
                            "no committed baseline — commit "
                            f"{base_path.name} to start the trajectory"
                        ),
                    )
                )
                continue
            if not cand_path.exists():
                comparisons.append(
                    ArmComparison(
                        arm=name,
                        status=ARM_MISSING,
                        message=(
                            f"baseline exists but candidate run produced no "
                            f"{cand_path.name}"
                        ),
                    )
                )
                continue
            comparisons.append(
                compare_records(
                    load_record(base_path), load_record(cand_path), policy
                )
            )
        except BenchSchemaError as error:
            comparisons.append(
                ArmComparison(arm=name, status=ARM_ERROR, message=str(error))
            )
    return ComparisonReport(comparisons)


def tighten_baseline(
    baseline: BenchRecord,
    candidate: BenchRecord,
    policy: EnvelopePolicy | None = None,
) -> BenchRecord | None:
    """The shrink-only ratchet: move metrics toward the candidate only
    where it improved beyond the envelope.

    Returns the tightened record, or ``None`` when nothing cleared the
    envelope. Raises :class:`BenchSchemaError` if the candidate regresses
    anywhere — a regression must never refresh the baseline.
    """
    comparison = compare_records(baseline, candidate, policy)
    if comparison.status == ARM_ERROR:
        raise BenchSchemaError(comparison.message)
    if comparison.status == ARM_REGRESSION:
        raise BenchSchemaError(
            f"arm {baseline.arm!r} regressed; refusing to touch the baseline"
        )
    improved = {
        v.metric for v in comparison.verdicts if v.status == METRIC_IMPROVED
    }
    new_metrics = {
        v.metric for v in comparison.verdicts if v.status == METRIC_NEW
    }
    if not improved and not new_metrics:
        return None
    metrics: dict[str, Metric] = {}
    for name, base_metric in baseline.metrics.items():
        if name in improved:
            metrics[name] = candidate.metrics[name]
        else:
            metrics[name] = base_metric
    for name in new_metrics:
        metrics[name] = candidate.metrics[name]
    tightened = sorted(improved | new_metrics)
    return BenchRecord(
        arm=candidate.arm,
        profile=candidate.profile,
        seed=candidate.seed,
        git_sha=candidate.git_sha,
        created_unix=candidate.created_unix,
        env=candidate.env,
        workload=candidate.workload,
        metrics=metrics,
        notes=candidate.notes
        + (f"baseline ratcheted on: {', '.join(tightened)}",),
    )
