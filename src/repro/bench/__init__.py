"""Structured perf trajectory: runner, schema, regression gate.

This package is the measurement spine every perf PR reports through
(ROADMAP item 3). It turns the benchmark arms into machine-readable,
schema-versioned ``BENCH_<arm>.json`` records — p50/p90/p99 latency,
throughput, SLA attainment, peak memory, with full provenance — and
gates regressions against a committed baseline under per-metric noise
envelopes with a shrink-only ratchet:

.. code-block:: bash

    python -m repro bench run --profile quick --out /tmp/bench
    python -m repro bench compare --candidate /tmp/bench
    python -m repro bench list
"""

from repro.bench.arms import ARMS, PROFILES, ArmResult, ArmSpec, BenchProfile
from repro.bench.comparator import (
    ArmComparison,
    ComparisonReport,
    Envelope,
    EnvelopePolicy,
    MetricVerdict,
    compare_dirs,
    compare_records,
    tighten_baseline,
)
from repro.bench.probes import (
    LatencyProbe,
    MemoryProbe,
    current_git_sha,
    fingerprint_env,
)
from repro.bench.report import BenchReport, Column
from repro.bench.runner import (
    DEFAULT_SEED,
    arm_names,
    baseline_status,
    run_arm,
    run_arms,
    summarize_record,
)
from repro.bench.schema import (
    CORE_METRICS,
    SCHEMA_VERSION,
    BenchRecord,
    BenchSchemaError,
    Metric,
    load_record,
    record_path,
    save_record,
    validate_record,
)

__all__ = [
    "ARMS",
    "ArmComparison",
    "ArmResult",
    "ArmSpec",
    "BenchProfile",
    "BenchRecord",
    "BenchReport",
    "BenchSchemaError",
    "CORE_METRICS",
    "Column",
    "ComparisonReport",
    "DEFAULT_SEED",
    "Envelope",
    "EnvelopePolicy",
    "LatencyProbe",
    "MemoryProbe",
    "Metric",
    "MetricVerdict",
    "PROFILES",
    "SCHEMA_VERSION",
    "arm_names",
    "baseline_status",
    "compare_dirs",
    "compare_records",
    "current_git_sha",
    "fingerprint_env",
    "load_record",
    "record_path",
    "run_arm",
    "run_arms",
    "save_record",
    "summarize_record",
    "tighten_baseline",
    "validate_record",
]
