"""The gate arms: fig3a / fig3b / capacity as plain callables.

Each arm wraps one of the paper-reproduction benchmark regimes (the same
workload shapes the pytest suite under ``benchmarks/`` measures) in a
function the structured runner can execute outside pytest:

* **fig3a** — the Figure 3(a) microbenchmark regime: heavy posting
  lists, VMIS-kNN ``find_neighbors`` latency, plus the VS-kNN speedup
  ratio the paper headlines;
* **fig3b** — the Figure 3(b) serving regime: serenade-hist request
  replay, per-request latency and SLA attainment, batched-engine
  throughput with the LRU result cache;
* **capacity** — the §4.2 memory regime: index build peak memory and
  the capacity model's extrapolation to production scale;
* **streaming** — the §7-future-work ingestion regime: clicks published
  through the partitioned event log in chunks, each chunk's
  commit-to-visible latency (publish ack → index catch-up) measured
  end to end, plus the event-time staleness the sealing policy leaves
  behind;
* **ring** — the tail-at-scale regime: a replicated shard ring serving
  a flash-sale trace with one straggler pod, replayed twice (hedging
  on / off) on a virtual clock to price deadline-derived hedged reads.

Arms follow the repo's timing discipline (CONTRIBUTING): interleaved
rounds with per-call best-of merging, warm-up before measurement, and
memory probes never active while latencies are being taken. Every knob
that grows the workload lives in :class:`BenchProfile`, so the quick CI
profile, the full profile and the smoke profile used by tests are data,
not code paths.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Callable, Mapping

from repro.bench.probes import LatencyProbe, MemoryProbe
from repro.bench.schema import HIGHER, LOWER, Metric
from repro.cluster.chaos import ChaosReport, ChaosSchedule, PodSlowdown
from repro.cluster.loadgen import TimedRequest
from repro.core.batch import BatchPredictionEngine
from repro.core.colindex import ColumnarSessionIndex, VMISKNNColumnar
from repro.core.index import SessionIndex
from repro.core.vmis import VMISKNN
from repro.core.vsknn import VSKNN
from repro.data.split import TrainTestSplit, temporal_split
from repro.data.synthetic import generate_clickstream
from repro.index.capacity import NATIVE, extrapolate, measure_index
from repro.index.maintenance import IncrementalIndexer
from repro.serving.ring import ReplicationPolicy
from repro.serving.server import RecommendationRequest
from repro.serving.variants import ServingVariant, session_view
from repro.streaming import (
    ClickProducer,
    PartitionedLog,
    StreamingIndexer,
    StreamingPolicy,
)
from repro.testing.clock import VirtualClock
from repro.testing.generators import WorkloadGenerator
from repro.testing.simulation import SimulatedCluster

Clock = Callable[[], float]

#: The serving SLA every arm reports attainment against (PR 2's budget).
SLA_BUDGET_MS = 50.0

#: The paper's production scale (§4.2), targets of the capacity arm.
PAPER_SESSIONS = 111_000_000
PAPER_ITEMS = 6_500_000


@dataclass(frozen=True)
class BenchProfile:
    """Workload sizes of one run regime (quick CI / full / test smoke)."""

    name: str
    rounds: int
    fig3a_sessions: int
    fig3a_items: int
    fig3a_queries: int
    fig3b_sessions: int
    fig3b_items: int
    fig3b_steps: int
    fig3b_epochs: int
    capacity_sessions: int
    capacity_items: int
    capacity_queries: int
    streaming_sessions: int
    streaming_items: int
    #: clicks published per chunk; one commit-to-visible sample per chunk.
    streaming_chunk: int
    # -- ring arm (appended with defaults: older profiles stay valid) --
    ring_sessions: int = 4_000
    ring_items: int = 800
    ring_pods: int = 10
    #: simulated seconds of flash-sale traffic and its off-spike rate.
    ring_duration: float = 60.0
    ring_rate: float = 30.0
    #: every pod stalls this much (baseline jitter floor)...
    ring_base_stall_ms: float = 5.0
    #: ...except one straggler pod, which stalls this much (the GC-pause
    #: regime hedging exists for: 1 of ring_pods ≈ 10% of requests).
    ring_straggler_ms: float = 200.0


PROFILES: dict[str, BenchProfile] = {
    # The CI gate regime: small enough to finish in seconds, large
    # enough that percentiles are not dominated by a handful of calls.
    "quick": BenchProfile(
        name="quick",
        rounds=3,
        fig3a_sessions=8_000,
        fig3a_items=800,
        fig3a_queries=120,
        fig3b_sessions=6_000,
        fig3b_items=1_200,
        fig3b_steps=2_000,
        fig3b_epochs=3,
        capacity_sessions=20_000,
        capacity_items=9_000,
        capacity_queries=80,
        streaming_sessions=4_000,
        streaming_items=800,
        streaming_chunk=512,
        ring_sessions=4_000,
        ring_items=800,
        ring_duration=60.0,
        ring_rate=30.0,
    ),
    # Mirrors the pytest benchmark arms' workload sizes.
    "full": BenchProfile(
        name="full",
        rounds=3,
        fig3a_sessions=50_000,
        fig3a_items=1_200,
        fig3a_queries=150,
        fig3b_sessions=25_000,
        fig3b_items=3_000,
        fig3b_steps=4_000,
        fig3b_epochs=3,
        capacity_sessions=60_000,
        capacity_items=35_000,
        capacity_queries=100,
        streaming_sessions=20_000,
        streaming_items=2_500,
        streaming_chunk=1_024,
        ring_sessions=12_000,
        ring_items=1_500,
        ring_duration=120.0,
        ring_rate=50.0,
    ),
    # Sub-second sizes for the test suite; never use for real baselines.
    "smoke": BenchProfile(
        name="smoke",
        rounds=2,
        fig3a_sessions=1_200,
        fig3a_items=300,
        fig3a_queries=40,
        fig3b_sessions=1_000,
        fig3b_items=400,
        fig3b_steps=300,
        fig3b_epochs=2,
        capacity_sessions=4_000,
        capacity_items=2_000,
        capacity_queries=30,
        streaming_sessions=600,
        streaming_items=200,
        streaming_chunk=256,
        ring_sessions=800,
        ring_items=200,
        ring_duration=20.0,
        ring_rate=12.0,
    ),
}


@dataclass(frozen=True)
class ArmResult:
    """What one arm hands back to the runner for record assembly."""

    metrics: Mapping[str, Metric]
    workload: Mapping[str, object]
    notes: tuple[str, ...] = ()


def _prediction_prefixes(split: TrainTestSplit, limit: int) -> list[list[int]]:
    """Growing-session prediction inputs from the held-out day."""
    prefixes: list[list[int]] = []
    for sequence in split.test_sequences().values():
        for cut in range(1, len(sequence)):
            prefixes.append(sequence[:cut])
    return prefixes[:limit]


def _interleaved_best(
    models: Mapping[str, object],
    prefixes: list[list[int]],
    rounds: int,
    clock: Clock,
) -> dict[str, LatencyProbe]:
    """Per-call best-of-N latencies, every round timing every model."""
    for model in models.values():
        for prefix in prefixes[: min(20, len(prefixes))]:
            model.find_neighbors(prefix)  # type: ignore[attr-defined]
    best: dict[str, LatencyProbe] = {}
    for _ in range(rounds):
        for name, model in models.items():
            probe = LatencyProbe(clock)
            for prefix in prefixes:
                probe.sample(lambda p=prefix: model.find_neighbors(p))  # type: ignore[attr-defined]
            if name in best:
                best[name].merge_best(probe)
            else:
                best[name] = probe
    return best


def _latency_metrics(probe: LatencyProbe) -> dict[str, Metric]:
    return {
        "latency_p50_ms": Metric(probe.percentile_ms(50), "ms", LOWER),
        "latency_p90_ms": Metric(probe.percentile_ms(90), "ms", LOWER),
        "latency_p99_ms": Metric(probe.percentile_ms(99), "ms", LOWER),
        "sla_attainment": Metric(
            probe.sla_attainment(SLA_BUDGET_MS), "fraction", HIGHER
        ),
    }


def run_fig3a(
    profile: BenchProfile, seed: int, clock: Clock = time.perf_counter
) -> ArmResult:
    """Figure 3(a) regime: neighbour-search latency, VMIS vs VS-kNN."""
    log = generate_clickstream(
        num_sessions=profile.fig3a_sessions,
        num_items=profile.fig3a_items,
        num_categories=40,
        mean_session_length=8.0,
        length_tail=0.2,
        days=14,
        seed=seed,
    )
    split = temporal_split(log, test_days=1)
    with MemoryProbe() as memory:
        index = SessionIndex.from_clicks(
            split.train, max_sessions_per_item=2**62
        )
        models = {
            "vmis": VMISKNN(index, m=500, k=100),
            "vsknn": VSKNN(index, m=500, k=100),
        }
    prefixes = _prediction_prefixes(split, profile.fig3a_queries)
    probes = _interleaved_best(models, prefixes, profile.rounds, clock)
    vmis = probes["vmis"]
    speedup = probes["vsknn"].total_seconds() / vmis.total_seconds()
    metrics = dict(_latency_metrics(vmis))
    metrics["throughput_rps"] = Metric(vmis.throughput_rps(), "rps", HIGHER)
    metrics["peak_memory_bytes"] = Metric(
        float(memory.peak_bytes), "bytes", LOWER
    )
    metrics["vsknn_speedup"] = Metric(speedup, "x", HIGHER)
    return ArmResult(
        metrics=metrics,
        workload={
            "regime": "fig3a-microbenchmark",
            "sessions": profile.fig3a_sessions,
            "items": profile.fig3a_items,
            "queries": len(prefixes),
            "rounds": profile.rounds,
            "m": 500,
            "k": 100,
        },
        notes=(
            f"VMIS-kNN find_neighbors over {len(prefixes)} growing-session "
            f"prefixes, best of {profile.rounds} interleaved rounds",
            f"VS-kNN/VMIS-kNN aggregate speedup {speedup:.2f}x",
        ),
    )


def run_fig3a_vec(
    profile: BenchProfile, seed: int, clock: Clock = time.perf_counter
) -> ArmResult:
    """Figure 3(a) vectorized sub-arm: columnar scorer vs the heap path.

    Identical workload, index contents and hyperparameters to ``fig3a``;
    the only variable is the scoring implementation —
    :class:`VMISKNNColumnar` over struct-of-arrays numpy buffers against
    the interpreted d-ary-heap ``VMISKNN``. The two are bit-identical
    (the differential oracle enforces it; this arm spot-checks every
    prefix once before timing), so the speedup is pure implementation.
    """
    log = generate_clickstream(
        num_sessions=profile.fig3a_sessions,
        num_items=profile.fig3a_items,
        num_categories=40,
        mean_session_length=8.0,
        length_tail=0.2,
        days=14,
        seed=seed,
    )
    split = temporal_split(log, test_days=1)
    with MemoryProbe() as memory:
        index = SessionIndex.from_clicks(
            split.train, max_sessions_per_item=2**62
        )
        columnar = ColumnarSessionIndex.from_session_index(index)
    models = {
        "vmis-columnar": VMISKNNColumnar(columnar, m=500, k=100),
        "vmis": VMISKNN(index, m=500, k=100),
    }
    prefixes = _prediction_prefixes(split, profile.fig3a_queries)
    heap_model = models["vmis"]
    vector_model = models["vmis-columnar"]
    mismatches = sum(
        1
        for prefix in prefixes
        if vector_model.find_neighbors(prefix)
        != heap_model.find_neighbors(prefix)
    )
    if mismatches:
        raise AssertionError(
            f"columnar scorer diverged from the heap path on "
            f"{mismatches}/{len(prefixes)} prefixes"
        )
    probes = _interleaved_best(models, prefixes, profile.rounds, clock)
    vector = probes["vmis-columnar"]
    heap = probes["vmis"]
    p50_speedup = heap.percentile_ms(50) / vector.percentile_ms(50)
    total_speedup = heap.total_seconds() / vector.total_seconds()
    metrics = dict(_latency_metrics(vector))
    metrics["throughput_rps"] = Metric(vector.throughput_rps(), "rps", HIGHER)
    metrics["peak_memory_bytes"] = Metric(
        float(memory.peak_bytes), "bytes", LOWER
    )
    metrics["vectorized_p50_speedup"] = Metric(p50_speedup, "x", HIGHER)
    metrics["vectorized_speedup"] = Metric(total_speedup, "x", HIGHER)
    return ArmResult(
        metrics=metrics,
        workload={
            "regime": "fig3a-vectorized",
            "sessions": profile.fig3a_sessions,
            "items": profile.fig3a_items,
            "queries": len(prefixes),
            "rounds": profile.rounds,
            "m": 500,
            "k": 100,
        },
        notes=(
            f"columnar find_neighbors over {len(prefixes)} prefixes, "
            f"best of {profile.rounds} interleaved rounds; bit-equal to "
            f"the heap path on all {len(prefixes)} prefixes",
            f"heap-path/columnar p50 speedup {p50_speedup:.1f}x "
            f"(aggregate {total_speedup:.1f}x)",
        ),
    )


def run_fig3b(
    profile: BenchProfile, seed: int, clock: Clock = time.perf_counter
) -> ArmResult:
    """Figure 3(b) regime: serenade-hist replay, cache-backed throughput."""
    log = generate_clickstream(
        num_sessions=profile.fig3b_sessions,
        num_items=profile.fig3b_items,
        num_categories=120,
        days=14,
        seed=seed,
    )
    split = temporal_split(log, test_days=1)
    with MemoryProbe() as memory:
        index = SessionIndex.from_clicks(split.train, max_sessions_per_item=500)
        model = VMISKNN(index, m=500, k=100, exclude_current_items=True)
    views: list[list[int]] = []
    for sequence in split.test_sequences().values():
        for cut in range(1, len(sequence)):
            views.append(session_view(sequence[:cut], ServingVariant.HIST))
    views = views[: profile.fig3b_steps] * profile.fig3b_epochs

    # Per-request latency, serially: this is what the SLA sees.
    for view in views[: min(50, len(views))]:
        model.recommend(view, how_many=21)
    serial: LatencyProbe | None = None
    for _ in range(profile.rounds):
        probe = LatencyProbe(clock)
        for view in views:
            probe.sample(lambda v=view: model.recommend(v, how_many=21))
        if serial is None:
            serial = probe
        else:
            serial.merge_best(probe)
    assert serial is not None

    # Sustained throughput through the cached, threaded engine.
    batch_size = 256
    with BatchPredictionEngine(model, num_workers=2, cache_size=8192) as engine:
        started = clock()
        for start in range(0, len(views), batch_size):
            engine.recommend_batch(views[start : start + batch_size], how_many=21)
        batched_seconds = clock() - started
        cache = engine.cache_info()
    batched_rps = len(views) / batched_seconds
    serial_rps = len(views) / serial.total_seconds()

    metrics = dict(_latency_metrics(serial))
    metrics["throughput_rps"] = Metric(batched_rps, "rps", HIGHER)
    metrics["peak_memory_bytes"] = Metric(float(memory.peak_bytes), "bytes", LOWER)
    metrics["cache_hit_rate"] = Metric(cache["hit_rate"], "fraction", HIGHER)
    metrics["batched_speedup"] = Metric(batched_rps / serial_rps, "x", HIGHER)
    return ArmResult(
        metrics=metrics,
        workload={
            "regime": "fig3b-serenade-hist-replay",
            "sessions": profile.fig3b_sessions,
            "items": profile.fig3b_items,
            "requests": len(views),
            "steps": min(profile.fig3b_steps, len(views)),
            "epochs": profile.fig3b_epochs,
            "rounds": profile.rounds,
            "batch_size": batch_size,
            "m": 500,
            "k": 100,
        },
        notes=(
            f"{len(views)} serenade-hist requests, serial latency best of "
            f"{profile.rounds} rounds; throughput via BatchPredictionEngine "
            f"(2 workers, cache 8192, hit rate {cache['hit_rate']:.1%})",
        ),
    )


def run_capacity(
    profile: BenchProfile, seed: int, clock: Clock = time.perf_counter
) -> ArmResult:
    """§4.2 regime: build-time peak memory + production extrapolation."""
    log = generate_clickstream(
        num_sessions=profile.capacity_sessions,
        num_items=profile.capacity_items,
        num_categories=1_200,
        mean_session_length=6.6,
        length_tail=0.16,
        days=30,
        seed=seed,
    )
    split = temporal_split(log, test_days=1)
    with MemoryProbe() as memory:
        index = SessionIndex.from_clicks(split.train, max_sessions_per_item=500)
    sample_estimate = measure_index(index, NATIVE)
    production = extrapolate(
        index,
        target_sessions=PAPER_SESSIONS,
        target_items=PAPER_ITEMS,
        schedule=NATIVE,
    )
    model = VMISKNN(index, m=500, k=100)
    prefixes = _prediction_prefixes(split, profile.capacity_queries)
    probes = _interleaved_best({"vmis": model}, prefixes, profile.rounds, clock)
    vmis = probes["vmis"]
    metrics = dict(_latency_metrics(vmis))
    metrics["throughput_rps"] = Metric(vmis.throughput_rps(), "rps", HIGHER)
    metrics["peak_memory_bytes"] = Metric(float(memory.peak_bytes), "bytes", LOWER)
    metrics["extrapolated_gib"] = Metric(
        production.total_gigabytes, "GiB", LOWER
    )
    return ArmResult(
        metrics=metrics,
        workload={
            "regime": "capacity-planning",
            "sessions": profile.capacity_sessions,
            "items": profile.capacity_items,
            "queries": len(prefixes),
            "rounds": profile.rounds,
            "m": 500,
            "target_sessions": PAPER_SESSIONS,
            "target_items": PAPER_ITEMS,
        },
        notes=(
            f"sample index {sample_estimate.total_gigabytes:.3f} GiB "
            f"(native schedule); extrapolated to production "
            f"{production.total_gigabytes:.1f} GiB (paper: ~13 GB)",
        ),
    )


def run_streaming(
    profile: BenchProfile, seed: int, clock: Clock = time.perf_counter
) -> ArmResult:
    """Streaming-ingest regime: commit-to-visible latency and staleness.

    Clicks are published to the in-process partitioned log in fixed-size
    chunks; after each chunk the consumer catches up completely, so one
    latency sample covers the full acked-click → visible-in-index path
    (publish, poll, watermark sealing, incremental apply, offset
    commit). Event-time staleness — how far the indexed head trails the
    log head because sessions are still open — is sampled at every chunk
    boundary; it depends only on the data, so it is identical across
    rounds and machines for a fixed seed.
    """
    log = generate_clickstream(
        num_sessions=profile.streaming_sessions,
        num_items=profile.streaming_items,
        num_categories=60,
        mean_session_length=8.0,
        length_tail=0.2,
        days=7,
        seed=seed,
    )
    clicks = log.clicks
    size = profile.streaming_chunk
    chunks = [clicks[start : start + size] for start in range(0, len(clicks), size)]
    policy = StreamingPolicy()

    def one_pass(probe: LatencyProbe | None, staleness: list[float] | None) -> int:
        stream = PartitionedLog(num_partitions=4)
        try:
            producer = ClickProducer(stream, "bench")
            pipeline = StreamingIndexer(
                stream, IncrementalIndexer(max_sessions_per_item=500), policy=policy
            )
            for chunk in chunks:
                def publish_and_catch_up(chunk: list = chunk) -> None:
                    producer.publish_all(chunk)
                    pipeline.run_until_caught_up()

                if probe is None:
                    publish_and_catch_up()
                else:
                    probe.sample(publish_and_catch_up)
                if staleness is not None:
                    staleness.append(pipeline.staleness_seconds())
            pipeline.flush()
            return pipeline.sessions_applied
        finally:
            stream.close()

    # Memory pass first, untimed: the probe must not overlap latencies.
    staleness_trajectory: list[float] = []
    with MemoryProbe() as memory:
        sessions_applied = one_pass(None, staleness_trajectory)
    best: LatencyProbe | None = None
    for _ in range(profile.rounds):
        probe = LatencyProbe(clock)
        one_pass(probe, None)
        if best is None:
            best = probe
        else:
            best.merge_best(probe)
    assert best is not None
    max_staleness = max(staleness_trajectory, default=0.0)

    metrics = dict(_latency_metrics(best))
    metrics["throughput_rps"] = Metric(
        len(clicks) / best.total_seconds(), "rps", HIGHER
    )
    metrics["peak_memory_bytes"] = Metric(float(memory.peak_bytes), "bytes", LOWER)
    metrics["max_staleness_seconds"] = Metric(max_staleness, "s", LOWER)
    return ArmResult(
        metrics=metrics,
        workload={
            "regime": "streaming-ingest",
            "sessions": profile.streaming_sessions,
            "items": profile.streaming_items,
            "events": len(clicks),
            "chunk": size,
            "chunks": len(chunks),
            "partitions": 4,
            "rounds": profile.rounds,
            "session_gap_seconds": policy.session_gap_seconds,
            "allowed_lateness_seconds": policy.allowed_lateness_seconds,
        },
        notes=(
            f"{len(clicks)} clicks through 4 log partitions in "
            f"{len(chunks)} chunks of {size}; per-chunk commit-to-visible "
            f"latency best of {profile.rounds} rounds",
            f"{sessions_applied} sessions sealed and applied; peak "
            f"event-time staleness {max_staleness:.0f} s "
            f"(gap {policy.session_gap_seconds:.0f} s)",
        ),
    )


def _flash_sale_trace(
    profile: BenchProfile, seed: int, split: TrainTestSplit
) -> list[TimedRequest]:
    """Deterministic flash-sale request trace over held-out sessions.

    Arrival instants come from the workload generator's flash-sale
    process; a fixed pool of concurrent "clients" (client ``i`` takes
    every ``pool_size``-th arrival) walks held-out sessions back to
    back, so the whole trace is a pure function of ``(profile, seed)``.
    """
    generator = WorkloadGenerator(seed=seed)
    arrivals = generator.flash_sale_arrival_times(
        profile.ring_duration, profile.ring_rate
    )
    sequences = [
        items for items in split.test_sequences().values() if len(items) >= 2
    ]
    if not sequences:
        raise ValueError("held-out day has no usable sessions")
    pool_size = 2 * profile.ring_pods
    walkers: dict[int, tuple[str, list[int], int]] = {}
    session_counter = 0
    next_sequence = 0
    trace: list[TimedRequest] = []
    for index, arrival in enumerate(arrivals):
        client = index % pool_size
        if client not in walkers:
            sequence = sequences[next_sequence % len(sequences)]
            next_sequence += 1
            walkers[client] = (f"s{session_counter}", sequence, 0)
            session_counter += 1
        session_key, sequence, position = walkers[client]
        trace.append(
            TimedRequest(
                arrival,
                RecommendationRequest(
                    session_key=session_key, item_id=sequence[position]
                ),
            )
        )
        position += 1
        if position >= len(sequence):
            del walkers[client]
        else:
            walkers[client] = (session_key, sequence, position)
    return trace


def run_ring(
    profile: BenchProfile, seed: int, clock: Clock = time.perf_counter
) -> ArmResult:
    """Replicated-ring regime: hedged vs unhedged tail under a straggler.

    One identical flash-sale trace is replayed twice through a replicated
    ring (R=2) where every pod carries a small base stall and exactly one
    pod is a hard straggler — once with deadline-derived hedged reads,
    once without. Latencies are virtual-clock arithmetic (injected stall
    plus the hedge race), so the record is bit-stable across machines;
    the wall ``clock`` is deliberately unused.
    """
    del clock  # virtual-clock arm: wall time would break determinism
    log = generate_clickstream(
        num_sessions=profile.ring_sessions,
        num_items=profile.ring_items,
        num_categories=60,
        days=14,
        seed=seed,
    )
    split = temporal_split(log, test_days=1)
    with MemoryProbe() as memory:
        index = SessionIndex.from_clicks(split.train, max_sessions_per_item=500)
    trace = _flash_sale_trace(profile, seed, split)
    straggler = "pod-0"
    schedule = ChaosSchedule(
        slowdowns=[
            PodSlowdown(
                at_time=0.0,
                pod_id=f"pod-{pod}",
                delay_seconds=profile.ring_base_stall_ms / 1e3,
            )
            for pod in range(1, profile.ring_pods)
        ]
        + [
            PodSlowdown(
                at_time=0.0,
                pod_id=straggler,
                delay_seconds=profile.ring_straggler_ms / 1e3,
            )
        ],
    )

    def replay(hedge_enabled: bool) -> ChaosReport:
        policy = ReplicationPolicy(
            replication_factor=2,
            hedge_enabled=hedge_enabled,
            budget_ms=SLA_BUDGET_MS,
        )
        simulated = SimulatedCluster.with_index(
            index,
            clock=VirtualClock(),
            num_pods=profile.ring_pods,
            replication=policy,
        )
        return simulated.run(trace, schedule)

    hedged = replay(True)
    unhedged = replay(False)
    recorder = hedged.latency
    p99_ms = recorder.percentile(99) * 1e3
    p99_unhedged_ms = unhedged.latency.percentile(99) * 1e3
    metrics = {
        "latency_p50_ms": Metric(recorder.percentile(50) * 1e3, "ms", LOWER),
        "latency_p90_ms": Metric(recorder.percentile(90) * 1e3, "ms", LOWER),
        "latency_p99_ms": Metric(p99_ms, "ms", LOWER),
        "sla_attainment": Metric(
            recorder.fraction_within(SLA_BUDGET_MS / 1e3), "fraction", HIGHER
        ),
        "throughput_rps": Metric(
            len(recorder.samples) / sum(recorder.samples), "rps", HIGHER
        ),
        "peak_memory_bytes": Metric(float(memory.peak_bytes), "bytes", LOWER),
        "latency_p99_unhedged_ms": Metric(p99_unhedged_ms, "ms", LOWER),
        "hedge_improvement": Metric(p99_unhedged_ms / p99_ms, "x", HIGHER),
    }
    ring = hedged.ring
    return ArmResult(
        metrics=metrics,
        workload={
            "regime": "ring-flash-sale-straggler",
            "sessions": profile.ring_sessions,
            "items": profile.ring_items,
            "pods": profile.ring_pods,
            "requests": len(trace),
            "duration_seconds": profile.ring_duration,
            "base_rate_rps": profile.ring_rate,
            "base_stall_ms": profile.ring_base_stall_ms,
            "straggler": straggler,
            "straggler_ms": profile.ring_straggler_ms,
            "replication_factor": 2,
            "hedge_fraction": ring.get("hedge_fraction"),
            "hedges_fired": ring.get("hedges_fired"),
            "hedge_wins": ring.get("hedge_wins"),
        },
        notes=(
            f"{len(trace)} flash-sale requests over {profile.ring_pods} pods "
            f"(1 straggler at {profile.ring_straggler_ms:.0f} ms), R=2",
            f"hedged p99 {p99_ms:.1f} ms vs unhedged {p99_unhedged_ms:.1f} ms "
            f"({p99_unhedged_ms / p99_ms:.1f}x); "
            f"{ring.get('hedges_fired')} hedges fired, "
            f"{ring.get('hedge_wins')} won",
        ),
    )


@dataclass(frozen=True)
class ArmSpec:
    """One registered arm: name, one-line role, and its runner."""

    name: str
    description: str
    run: Callable[[BenchProfile, int, Clock], ArmResult]


ARMS: dict[str, ArmSpec] = {
    "fig3a": ArmSpec(
        "fig3a",
        "Figure 3(a) microbenchmark: VMIS-kNN neighbour-search latency "
        "and the VS-kNN speedup",
        run_fig3a,
    ),
    "fig3a_vec": ArmSpec(
        "fig3a_vec",
        "Figure 3(a) vectorized sub-arm: columnar numpy scorer vs the "
        "interpreted heap path, bit-equal by construction",
        run_fig3a_vec,
    ),
    "fig3b": ArmSpec(
        "fig3b",
        "Figure 3(b) serving regime: serenade-hist replay latency/SLA "
        "and cached batched throughput",
        run_fig3b,
    ),
    "capacity": ArmSpec(
        "capacity",
        "§4.2 capacity planning: index build peak memory and the "
        "production-scale extrapolation",
        run_capacity,
    ),
    "streaming": ArmSpec(
        "streaming",
        "streaming ingestion: per-chunk commit-to-visible latency "
        "through the partitioned log and event-time staleness",
        run_streaming,
    ),
    "ring": ArmSpec(
        "ring",
        "replicated shard ring: flash-sale trace with one straggler pod, "
        "hedged vs unhedged tail latency on the virtual clock",
        run_ring,
    ),
}


def profile_to_dict(profile: BenchProfile) -> dict[str, object]:
    return asdict(profile)
