"""Consumer groups: committed offsets, positions, partition rebalancing.

The delivery contract is Kafka's: **at-least-once**. A consumer's
*position* (next offset to read) advances as it polls; its *committed*
offset only moves when it explicitly commits. On crash/restart or on a
rebalance that moves a partition to another member, consumption resumes
from the committed offset — records between the commit and the old
position are redelivered, never lost. Downstream idempotence (the
hardened :class:`~repro.index.maintenance.IncrementalIndexer`) turns
that into effectively-once indexing.

Rebalancing is deterministic: partitions are range-assigned over the
sorted member ids, so the same join/leave order always yields the same
assignment — a requirement for seeded replay.

Committed offsets can be file-backed (JSON, written atomically via
tmp + ``os.replace``) so a restarted CLI consumer resumes where the
previous process left off.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.streaming.log import PartitionedLog, StreamRecord

__all__ = ["CommittedOffsets", "ConsumerGroup"]


class CommittedOffsets:
    """Durable per-partition committed offsets (optionally file-backed)."""

    def __init__(self, path: str | Path | None = None) -> None:
        self._path = Path(path) if path is not None else None
        self._offsets: dict[int, int] = {}
        if self._path is not None and self._path.exists():
            raw = json.loads(self._path.read_text(encoding="utf-8"))
            self._offsets = {int(k): int(v) for k, v in raw.items()}

    def get(self, partition: int) -> int:
        """The committed offset (first offset *not yet* processed)."""
        return self._offsets.get(partition, 0)

    def commit(self, partition: int, offset: int) -> None:
        """Advance the committed offset; commits never move backwards."""
        if offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        if offset <= self._offsets.get(partition, 0):
            return
        self._offsets[partition] = offset
        if self._path is not None:
            self._save()

    def as_dict(self) -> dict[int, int]:
        return dict(self._offsets)

    def _save(self) -> None:
        assert self._path is not None
        self._path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._path.with_suffix(self._path.suffix + ".tmp")
        tmp.write_text(
            json.dumps({str(k): v for k, v in sorted(self._offsets.items())}),
            encoding="utf-8",
        )
        os.replace(tmp, self._path)


class ConsumerGroup:
    """Coordinates members over a log's partitions, Kafka-group style."""

    def __init__(
        self,
        log: PartitionedLog,
        group_id: str = "default",
        offsets: CommittedOffsets | None = None,
    ) -> None:
        self.log = log
        self.group_id = group_id
        self.offsets = offsets if offsets is not None else CommittedOffsets()
        self._members: set[str] = set()
        self._assignment: dict[str, list[int]] = {}
        self._positions: dict[int, int] = {}
        self.generation = 0
        self.rebalance_count = 0

    # -- membership ----------------------------------------------------------

    def join(self, member_id: str) -> list[int]:
        """Add a member and rebalance; returns its new assignment."""
        if member_id in self._members:
            raise ValueError(f"member {member_id!r} already joined")
        self._members.add(member_id)
        self._rebalance()
        return self.assignment(member_id)

    def leave(self, member_id: str) -> None:
        """Remove a member (crash or clean shutdown) and rebalance."""
        if member_id not in self._members:
            raise ValueError(f"member {member_id!r} not in group")
        self._members.discard(member_id)
        self._rebalance()

    def members(self) -> list[str]:
        return sorted(self._members)

    def assignment(self, member_id: str) -> list[int]:
        self._check_member(member_id)
        return list(self._assignment.get(member_id, []))

    def _rebalance(self) -> None:
        """Range-assign partitions over sorted members, deterministically.

        Partitions whose owner changed reset their position to the
        committed offset: the new owner replays the uncommitted suffix
        (at-least-once), exactly like a Kafka generation bump.
        """
        old_owner: dict[int, str] = {}
        for member, partitions in self._assignment.items():
            for partition in partitions:
                old_owner[partition] = member
        members = sorted(self._members)
        self._assignment = {member: [] for member in members}
        if members:
            for partition in range(self.log.num_partitions):
                owner = members[partition % len(members)]
                self._assignment[owner].append(partition)
                if old_owner.get(partition) != owner:
                    self._positions[partition] = self.offsets.get(partition)
        self.generation += 1
        self.rebalance_count += 1

    # -- consuming -----------------------------------------------------------

    def poll(self, member_id: str, max_records: int = 512) -> list[StreamRecord]:
        """Read up to ``max_records`` across the member's partitions.

        The budget is spread round-robin over assigned partitions so one
        hot partition cannot starve the others.
        """
        self._check_member(member_id)
        assigned = self._assignment.get(member_id, [])
        if not assigned or max_records < 1:
            return []
        out: list[StreamRecord] = []
        remaining = max_records
        for index, partition in enumerate(assigned):
            if remaining <= 0:
                break
            # Ceil-divide the remaining budget over the remaining
            # partitions: fair shares that still fill the whole budget.
            left = len(assigned) - index
            share = max(1, -(-remaining // left))
            position = self._positions.setdefault(
                partition, self.offsets.get(partition)
            )
            records = self.log.read(partition, position, min(share, remaining))
            if records:
                self._positions[partition] = records[-1].offset + 1
                out.extend(records)
                remaining -= len(records)
        return out

    def position(self, partition: int) -> int:
        """Next offset this group will read from ``partition``."""
        return self._positions.get(partition, self.offsets.get(partition))

    def commit_to(self, member_id: str, partition: int, offset: int) -> None:
        """Commit ``partition`` up to ``offset`` (exclusive), owner-checked."""
        self._check_member(member_id)
        if partition not in self._assignment.get(member_id, []):
            raise ValueError(
                f"member {member_id!r} does not own partition {partition}"
            )
        self.offsets.commit(partition, offset)

    def commit_positions(self, member_id: str) -> None:
        """Commit every owned partition at its current position."""
        self._check_member(member_id)
        for partition in self._assignment.get(member_id, []):
            self.offsets.commit(partition, self.position(partition))

    # -- introspection -------------------------------------------------------

    def lag(self) -> int:
        """Acknowledged records not yet read by the group's positions."""
        return sum(
            max(0, self.log.end_offset(p) - self.position(p))
            for p in range(self.log.num_partitions)
        )

    def committed_lag(self) -> int:
        """Acknowledged records past the committed offsets (replay size)."""
        return sum(
            max(0, self.log.end_offset(p) - self.offsets.get(p))
            for p in range(self.log.num_partitions)
        )

    def info(self) -> dict[str, object]:
        return {
            "group_id": self.group_id,
            "generation": self.generation,
            "members": self.members(),
            "assignment": {m: list(ps) for m, ps in self._assignment.items()},
            "committed": self.offsets.as_dict(),
            "lag": self.lag(),
            "committed_lag": self.committed_lag(),
        }

    def _check_member(self, member_id: str) -> None:
        if member_id not in self._members:
            raise ValueError(f"member {member_id!r} not in group")
