"""The partitioned append-only click log (the in-process "broker").

Clicks are partitioned **by session id**, so every record of one session
lands in one partition and a single consumer observes that session's
clicks in publish order. Offsets are dense per partition (0, 1, 2, …)
and a record, once acknowledged, is never mutated or dropped — replay
from any committed offset yields exactly the acknowledged suffix.

Idempotent publish is enforced broker-side, as in Kafka's idempotent
producer: each producer stamps records with a monotonically increasing
per-partition ``sequence``, and the log remembers the highest sequence
(and its offset) per ``(partition, producer_id)``. A retry of an already
appended record — the "ack was lost" case — is recognised by its stale
sequence and acknowledged again *without* a second append, so producer
retry storms cannot duplicate data.

With a ``directory`` the log is file-backed: one JSONL file per
partition, flushed on every append (the ack means "durable"), replayed
on open so a restarted process resumes with identical offsets and dedup
state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import IO

from repro.core.types import Click, SessionId

__all__ = ["AppendResult", "PartitionedLog", "StreamRecord"]


@dataclass(frozen=True, slots=True)
class StreamRecord:
    """One acknowledged click with its position and producer provenance."""

    partition: int
    offset: int
    producer_id: str
    sequence: int
    click: Click


@dataclass(frozen=True, slots=True)
class AppendResult:
    """The broker's ack: where the record lives, and whether it was new."""

    partition: int
    offset: int
    #: True when the append was recognised as a retry of an already
    #: acknowledged sequence and therefore did not create a new record.
    deduplicated: bool = False


class PartitionedLog:
    """An append-only, partition-sharded record log with producer dedup."""

    def __init__(
        self, num_partitions: int = 4, directory: str | Path | None = None
    ) -> None:
        if num_partitions < 1:
            raise ValueError(
                f"num_partitions must be >= 1, got {num_partitions}"
            )
        self.num_partitions = num_partitions
        self._partitions: list[list[StreamRecord]] = [
            [] for _ in range(num_partitions)
        ]
        # (partition, producer_id) -> (highest acked sequence, its offset).
        self._producer_high: dict[tuple[int, str], tuple[int, int]] = {}
        self._max_event_time: int | None = None
        self._directory = Path(directory) if directory is not None else None
        self._files: list[IO[str]] | None = None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
            meta_path = self._directory / "log-meta.json"
            if meta_path.exists():
                stored = int(
                    json.loads(meta_path.read_text(encoding="utf-8"))[
                        "num_partitions"
                    ]
                )
                if stored != num_partitions:
                    raise ValueError(
                        f"log at {self._directory} has {stored} partitions, "
                        f"requested {num_partitions}; partition count is "
                        "fixed at log creation"
                    )
            else:
                meta_path.write_text(
                    json.dumps({"num_partitions": num_partitions}),
                    encoding="utf-8",
                )
            self._replay_directory()
            self._files = [
                open(self._segment_path(p), "a", encoding="utf-8")
                for p in range(num_partitions)
            ]

    @classmethod
    def open(cls, directory: str | Path) -> "PartitionedLog":
        """Open an existing file-backed log, partition count from its meta."""
        meta_path = Path(directory) / "log-meta.json"
        if not meta_path.exists():
            raise FileNotFoundError(f"no partitioned log at {directory}")
        stored = int(
            json.loads(meta_path.read_text(encoding="utf-8"))["num_partitions"]
        )
        return cls(stored, directory=directory)

    # -- partitioning --------------------------------------------------------

    def partition_for(self, session_id: SessionId) -> int:
        """Stable session→partition routing (``hash()`` is salted; ``%`` is not)."""
        return session_id % self.num_partitions

    # -- producing -----------------------------------------------------------

    def append(
        self, partition: int, click: Click, producer_id: str, sequence: int
    ) -> AppendResult:
        """Append one record, deduplicating retried sequences.

        A ``sequence`` at or below the highest already acknowledged for
        ``(partition, producer_id)`` is treated as a redelivery: the log
        re-acks the original offset instead of appending again.
        """
        self._check_partition(partition)
        if sequence < 0:
            raise ValueError(f"sequence must be >= 0, got {sequence}")
        key = (partition, producer_id)
        high = self._producer_high.get(key)
        if high is not None and sequence <= high[0]:
            return AppendResult(partition, high[1], deduplicated=True)
        offset = len(self._partitions[partition])
        record = StreamRecord(partition, offset, producer_id, sequence, click)
        self._partitions[partition].append(record)
        self._producer_high[key] = (sequence, offset)
        if self._max_event_time is None or click.timestamp > self._max_event_time:
            self._max_event_time = click.timestamp
        if self._files is not None:
            self._persist(record)
        return AppendResult(partition, offset, deduplicated=False)

    # -- consuming -----------------------------------------------------------

    def read(
        self, partition: int, offset: int, max_records: int = 512
    ) -> list[StreamRecord]:
        """Records of ``partition`` starting at ``offset`` (at most ``max_records``)."""
        self._check_partition(partition)
        if offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        if max_records < 1:
            return []
        return self._partitions[partition][offset : offset + max_records]

    def end_offset(self, partition: int) -> int:
        """One past the last acknowledged offset (0 for an empty partition)."""
        self._check_partition(partition)
        return len(self._partitions[partition])

    def end_offsets(self) -> dict[int, int]:
        return {p: len(records) for p, records in enumerate(self._partitions)}

    def total_records(self) -> int:
        return sum(len(records) for records in self._partitions)

    def max_event_time(self) -> int | None:
        """Largest click timestamp ever acknowledged (``None`` when empty)."""
        return self._max_event_time

    # -- durability ----------------------------------------------------------

    def close(self) -> None:
        if self._files is not None:
            for handle in self._files:
                handle.close()
            self._files = None

    def _segment_path(self, partition: int) -> Path:
        assert self._directory is not None
        return self._directory / f"partition-{partition:04d}.jsonl"

    def _persist(self, record: StreamRecord) -> None:
        assert self._files is not None
        handle = self._files[record.partition]
        click = record.click
        handle.write(
            json.dumps(
                [
                    record.producer_id,
                    record.sequence,
                    click.session_id,
                    click.item_id,
                    click.timestamp,
                ]
            )
            + "\n"
        )
        # The ack promises durability: flush before the append returns.
        handle.flush()

    def _replay_directory(self) -> None:
        for partition in range(self.num_partitions):
            path = self._segment_path(partition)
            if not path.exists():
                continue
            with open(path, encoding="utf-8") as handle:
                for offset, line in enumerate(handle):
                    if not line.strip():
                        continue
                    producer_id, sequence, session_id, item_id, timestamp = (
                        json.loads(line)
                    )
                    click = Click(
                        session_id=int(session_id),
                        item_id=int(item_id),
                        timestamp=int(timestamp),
                    )
                    record = StreamRecord(
                        partition, offset, str(producer_id), int(sequence), click
                    )
                    self._partitions[partition].append(record)
                    self._producer_high[(partition, str(producer_id))] = (
                        int(sequence),
                        offset,
                    )
                    if (
                        self._max_event_time is None
                        or click.timestamp > self._max_event_time
                    ):
                        self._max_event_time = click.timestamp

    def _check_partition(self, partition: int) -> None:
        if not 0 <= partition < self.num_partitions:
            raise ValueError(
                f"partition {partition} out of range "
                f"[0, {self.num_partitions})"
            )
