"""Event-time watermarks with bounded allowed lateness.

The stream carries *event* timestamps (when the click happened), and the
log delivers records in *publish* order — the two disagree whenever
producers race or retry. The watermark is the pipeline's claim about
event-time completeness: ``watermark = max observed event time −
allowed_lateness``. Records at or above the watermark are on time;
records below it arrived later than the configured bound and are
counted (never silently dropped — the counter is part of the
bounded-staleness contract's accounting).
"""

from __future__ import annotations

__all__ = ["WatermarkTracker"]


class WatermarkTracker:
    """Tracks the event-time high water and flags beyond-lateness events."""

    def __init__(self, allowed_lateness: float = 0.0) -> None:
        if allowed_lateness < 0:
            raise ValueError(
                f"allowed_lateness must be >= 0, got {allowed_lateness}"
            )
        self.allowed_lateness = allowed_lateness
        self._max_event_time: float | None = None
        self.events_observed = 0
        self.late_events = 0

    @property
    def max_event_time(self) -> float | None:
        return self._max_event_time

    @property
    def watermark(self) -> float | None:
        """Current watermark, or ``None`` before any event."""
        if self._max_event_time is None:
            return None
        return self._max_event_time - self.allowed_lateness

    def observe(self, event_time: float) -> bool:
        """Ingest one event time; returns ``True`` when it is on time.

        "On time" means at or above the watermark *before* this event is
        folded in — an event can never make itself late.
        """
        self.events_observed += 1
        watermark = self.watermark
        on_time = watermark is None or event_time >= watermark
        if not on_time:
            self.late_events += 1
        if self._max_event_time is None or event_time > self._max_event_time:
            self._max_event_time = event_time
        return on_time

    def info(self) -> dict[str, float]:
        return {
            "watermark": self.watermark if self.watermark is not None else 0.0,
            "max_event_time": (
                self._max_event_time if self._max_event_time is not None else 0.0
            ),
            "allowed_lateness": self.allowed_lateness,
            "events_observed": float(self.events_observed),
            "late_events": float(self.late_events),
        }
