"""Fault-tolerant streaming click ingestion (ROADMAP item: event bus).

An in-process, Kafka-shaped event bus that carries clicks from producers
into the incremental index maintainer within "seconds" of event time
instead of the daily batch cadence:

* :mod:`repro.streaming.log` — the partitioned append-only record log
  with broker-side idempotent-producer dedup;
* :mod:`repro.streaming.producer` — retrying publishers whose sequence
  numbers make redelivery after a lost ack harmless;
* :mod:`repro.streaming.consumer` — consumer groups, committed offsets
  and deterministic partition rebalancing;
* :mod:`repro.streaming.watermark` — event-time watermarks with bounded
  allowed lateness;
* :mod:`repro.streaming.pipeline` — the streaming indexer that turns
  polled records into sealed sessions for
  :class:`~repro.index.maintenance.IncrementalIndexer`, commits offsets
  at the replay-safe low watermark and feeds consumer lag back into
  admission control;
* :mod:`repro.streaming.faults` — seeded fault injection (transient
  rejects, lost acks, duplicated/reordered delivery) for the chaos and
  differential suites.

Everything here is clock-hygienic (SRN001): time and randomness enter
only through injected seams, so the same seed replays the same lag
trajectory bit-for-bit on :class:`~repro.testing.clock.VirtualClock`.
"""

from repro.streaming.consumer import CommittedOffsets, ConsumerGroup
from repro.streaming.faults import (
    DeliveryFaultPlan,
    DeliveryFaults,
    FlakyTransport,
    TransportFaultPlan,
)
from repro.streaming.log import AppendResult, PartitionedLog, StreamRecord
from repro.streaming.pipeline import (
    BackpressurePolicy,
    StepReport,
    StreamingIndexer,
    StreamingPolicy,
)
from repro.streaming.producer import (
    AckLost,
    ClickProducer,
    PublishFailed,
    PublishReceipt,
    RetryPolicy,
    TransientPublishError,
)
from repro.streaming.watermark import WatermarkTracker

__all__ = [
    "AckLost",
    "AppendResult",
    "BackpressurePolicy",
    "ClickProducer",
    "CommittedOffsets",
    "ConsumerGroup",
    "DeliveryFaultPlan",
    "DeliveryFaults",
    "FlakyTransport",
    "PartitionedLog",
    "PublishFailed",
    "PublishReceipt",
    "RetryPolicy",
    "StepReport",
    "StreamRecord",
    "StreamingIndexer",
    "StreamingPolicy",
    "TransientPublishError",
    "TransportFaultPlan",
    "WatermarkTracker",
]
