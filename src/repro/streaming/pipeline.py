"""The streaming indexer: polled records → sealed sessions → fresh index.

This is the glue between the event bus and
:class:`~repro.index.maintenance.IncrementalIndexer`, and the place
where the **bounded-staleness contract** is enforced:

* polled clicks are buffered per session until the watermark passes the
  session's last event plus the inactivity gap — only then is the
  session *sealed* and applied to the index (matching the batch
  lifecycle's "finished sessions only" rule);
* offsets are committed at the **low watermark**: the smallest offset
  still needed by a buffered (unsealed) session. A crash between poll
  and apply therefore replays every unsealed click — acknowledged
  clicks are never lost, and the indexer's idempotent re-apply makes the
  replay harmless;
* every acknowledged click is accounted for: applied, replayed
  (redelivery of indexed data), or counted too-late/stale — nothing is
  silently dropped;
* consumer lag feeds back into :class:`~repro.serving.resilience
  .AdmissionController` via :meth:`AdmissionController.resize`, shedding
  request load *before* the index falls behind the configured bound.

All time is event time or injected virtual time; the pipeline itself
never reads a wall clock (SRN001), so a seeded run replays the same lag
trajectory exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.core.types import Click, SessionId
from repro.index.maintenance import IncrementalIndexer
from repro.streaming.consumer import ConsumerGroup
from repro.streaming.log import PartitionedLog, StreamRecord
from repro.streaming.watermark import WatermarkTracker

if TYPE_CHECKING:
    from repro.serving.resilience import AdmissionController
    from repro.testing.clock import VirtualClock

__all__ = [
    "BackpressurePolicy",
    "StepReport",
    "StreamingIndexer",
    "StreamingPolicy",
]


@dataclass(frozen=True)
class BackpressurePolicy:
    """Maps consumer lag to an admission-control capacity.

    Up to ``target_lag_events`` the serving path runs at full capacity;
    beyond it capacity shrinks linearly, reaching ``min_capacity`` at
    ``max_lag_events``. Shedding earlier keeps the indexer's share of
    the machine and stops the staleness bound from being breached under
    sustained overload.
    """

    target_lag_events: int = 256
    max_lag_events: int = 4096
    min_capacity: int = 8

    def __post_init__(self) -> None:
        if self.max_lag_events <= self.target_lag_events:
            raise ValueError("max_lag_events must exceed target_lag_events")
        if self.min_capacity < 1:
            raise ValueError("min_capacity must be >= 1")

    def capacity_for(self, lag_events: int, full_capacity: int) -> int:
        if lag_events <= self.target_lag_events:
            return full_capacity
        if lag_events >= self.max_lag_events:
            return min(self.min_capacity, full_capacity)
        span = self.max_lag_events - self.target_lag_events
        fraction = (lag_events - self.target_lag_events) / span
        scaled = round(full_capacity - fraction * (full_capacity - self.min_capacity))
        return max(min(self.min_capacity, full_capacity), int(scaled))


@dataclass(frozen=True)
class StreamingPolicy:
    """Knobs of the streaming ingestion path."""

    #: a session is sealed once the watermark passes its last event by
    #: this much (the paper's 30-minute session inactivity convention).
    session_gap_seconds: float = 1800.0
    #: watermark slack for out-of-order arrival (event time units).
    allowed_lateness_seconds: float = 300.0
    #: poll budget per step across all assigned partitions.
    poll_max_records: int = 512
    #: the bounded-staleness contract: the pipeline is "within bound"
    #: while acked-but-unindexed events stay at or below this.
    staleness_bound_events: int = 4096
    backpressure: BackpressurePolicy = field(default_factory=BackpressurePolicy)

    def __post_init__(self) -> None:
        if self.session_gap_seconds <= 0:
            raise ValueError("session_gap_seconds must be > 0")
        if self.allowed_lateness_seconds < 0:
            raise ValueError("allowed_lateness_seconds must be >= 0")
        if self.allowed_lateness_seconds > self.session_gap_seconds:
            # An on-time click (ts >= watermark) must always be able to
            # join the index: sealed sessions sit at or below
            # ``watermark - gap``, so lateness beyond the gap could admit
            # a click older than the newest sealed session — which the
            # append-only indexer would have to drop as stale.
            raise ValueError(
                "allowed_lateness_seconds must not exceed session_gap_seconds"
            )
        if self.poll_max_records < 1:
            raise ValueError("poll_max_records must be >= 1")
        if self.staleness_bound_events < 1:
            raise ValueError("staleness_bound_events must be >= 1")


@dataclass(frozen=True, slots=True)
class StepReport:
    """What one :meth:`StreamingIndexer.step` actually did."""

    polled: int
    sessions_applied: int
    sessions_duplicate: int
    sessions_stale: int
    replayed_records: int
    too_late_events: int
    lag_events: int
    committed: dict[int, int]


@dataclass
class _PendingSession:
    """Clicks of one not-yet-sealed session, keyed by log offset.

    Offset keying makes duplicate delivery of the same record an
    idempotent overwrite, and the minimum key is the session's
    contribution to the commit low watermark.
    """

    partition: int
    clicks: dict[int, Click] = field(default_factory=dict)

    @property
    def last_event(self) -> int:
        return max(click.timestamp for click in self.clicks.values())

    @property
    def min_offset(self) -> int:
        return min(self.clicks)


class StreamingIndexer:
    """Consumes a :class:`PartitionedLog` into an incremental index."""

    def __init__(
        self,
        log: PartitionedLog,
        indexer: IncrementalIndexer,
        group: ConsumerGroup | None = None,
        member_id: str = "indexer-0",
        policy: StreamingPolicy | None = None,
        admission: "AdmissionController | None" = None,
        poll_transform: Callable[[list[StreamRecord]], list[StreamRecord]] | None = None,
        commit_each_step: bool = True,
    ) -> None:
        self.log = log
        self.indexer = indexer
        self.policy = policy if policy is not None else StreamingPolicy()
        self.group = group if group is not None else ConsumerGroup(log, "indexer")
        self.member_id = member_id
        self.group.join(member_id)
        self.admission = admission
        self._full_capacity = admission.capacity if admission is not None else 0
        self._poll_transform = poll_transform
        # When False, step()/flush() never commit offsets; the owner
        # calls commit() explicitly after persisting downstream state
        # (the CLI consumer commits only after the index artifact is on
        # disk, so a crash in between replays instead of losing data).
        self.commit_each_step = commit_each_step
        # One event-time tracker per partition actually consumed from:
        # the *global* watermark is held back by backlogged partitions
        # (min over them), so cross-partition read skew can never make
        # an unread click retroactively "late".
        self._trackers: dict[int, WatermarkTracker] = {}
        self._pending: dict[SessionId, _PendingSession] = {}
        self._crashed = False
        # Lifetime counters (survive restarts; they describe the pipeline,
        # not one consumer incarnation).
        self.steps = 0
        self.events_consumed = 0
        self.replayed_records = 0
        self.too_late_events = 0
        self.sessions_applied = 0
        self.sessions_duplicate = 0
        self.sessions_stale = 0
        self.crash_count = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def crashed(self) -> bool:
        return self._crashed

    def crash(self) -> None:
        """Kill the consumer: all un-applied in-memory state is lost."""
        if self._crashed:
            return
        self._crashed = True
        self.crash_count += 1
        self.group.leave(self.member_id)

    def restart(self) -> None:
        """Bring the consumer back; it replays from the committed offsets.

        The index itself is pod state and survives; only the consumer's
        buffers and watermark are rebuilt from the replayed records. The
        indexer's idempotent re-apply absorbs any sealed sessions the
        replay delivers again.
        """
        if not self._crashed:
            return
        self._pending.clear()
        self._trackers.clear()
        self._crashed = False
        self.group.join(self.member_id)

    # -- the consume loop ----------------------------------------------------

    def step(self) -> StepReport:
        """Poll once, seal what the watermark allows, apply, commit."""
        if self._crashed:
            raise RuntimeError("streaming indexer is crashed; restart() first")
        self.steps += 1
        records = self.group.poll(self.member_id, self.policy.poll_max_records)
        if self._poll_transform is not None:
            records = self._poll_transform(records)
        replayed = 0
        too_late = 0
        for record in records:
            self.events_consumed += 1
            tracker = self._trackers.get(record.partition)
            if tracker is None:
                tracker = WatermarkTracker(self.policy.allowed_lateness_seconds)
                self._trackers[record.partition] = tracker
            tracker.observe(record.click.timestamp)
            disposition = self._ingest(record)
            if disposition == "replayed":
                replayed += 1
            elif disposition == "too_late":
                too_late += 1
        self.replayed_records += replayed
        self.too_late_events += too_late

        applied, duplicates, stale = self._seal_and_apply(self._sealable())
        committed = self._commit_low_watermark() if self.commit_each_step else {}
        lag = self.lag_events()
        self._apply_backpressure(lag)
        return StepReport(
            polled=len(records),
            sessions_applied=applied,
            sessions_duplicate=duplicates,
            sessions_stale=stale,
            replayed_records=replayed,
            too_late_events=too_late,
            lag_events=lag,
            committed=committed,
        )

    def flush(self) -> int:
        """Seal *every* buffered session (end-of-stream) and commit fully.

        Returns the number of sessions applied. After a drained log is
        flushed the streamed index is exactly the batch rebuild of the
        acknowledged clicks (the convergence half of the contract).
        """
        if self._crashed:
            raise RuntimeError("streaming indexer is crashed; restart() first")
        applied, _, _ = self._seal_and_apply(sorted(self._pending))
        if self.commit_each_step:
            self.group.commit_positions(self.member_id)
        self._apply_backpressure(self.lag_events())
        return applied

    def commit(self) -> dict[int, int]:
        """Commit offsets at the replay-safe low watermark, explicitly.

        For ``commit_each_step=False`` owners: call after downstream
        state (e.g. the index artifact) is durably persisted.
        """
        return self._commit_low_watermark()

    def run_until_caught_up(self, max_steps: int = 10_000) -> int:
        """Step until the group has read every acknowledged record."""
        taken = 0
        while self.group.lag() > 0:
            if taken >= max_steps:
                raise RuntimeError(f"not caught up after {max_steps} steps")
            self.step()
            taken += 1
        return taken

    def _ingest(self, record: StreamRecord) -> str:
        click = record.click
        session_id = click.session_id
        pending = self._pending.get(session_id)
        if pending is not None:
            pending.clicks[record.offset] = click
            return "buffered"
        fingerprint = self.indexer.applied_fingerprint(session_id)
        if fingerprint is not None:
            sealed_ts, sealed_items = fingerprint
            if click.timestamp <= sealed_ts and click.item_id in sealed_items:
                # Redelivery of a record that is already inside the
                # applied session — the at-least-once replay case.
                return "replayed"
            # A genuinely new click for an already sealed session: it
            # arrived beyond the lateness bound. Counted, never applied.
            return "too_late"
        self._pending[session_id] = _PendingSession(
            partition=record.partition, clicks={record.offset: click}
        )
        return "buffered"

    def current_watermark(self) -> float | None:
        """The group-wide event-time watermark.

        Per-partition trackers advance with consumption; the global
        watermark is the *minimum* over partitions that still have
        unread backlog (they may yet deliver clicks at their tracked
        event times), or the maximum over all consumed partitions once
        every backlog is drained. Fully deterministic: it depends only
        on log contents and the poll sequence.
        """
        if not self._trackers:
            return None
        backlogged = [
            watermark
            for partition, tracker in self._trackers.items()
            if (watermark := tracker.watermark) is not None
            and self.group.position(partition) < self.log.end_offset(partition)
        ]
        if backlogged:
            return min(backlogged)
        return max(
            tracker.watermark
            for tracker in self._trackers.values()
            if tracker.watermark is not None
        )

    def _sealable(self) -> list[SessionId]:
        watermark = self.current_watermark()
        if watermark is None:
            return []
        threshold = watermark - self.policy.session_gap_seconds
        return sorted(
            session_id
            for session_id, pending in self._pending.items()
            if pending.last_event <= threshold
        )

    def _seal_and_apply(self, session_ids: list[SessionId]) -> tuple[int, int, int]:
        if not session_ids:
            return (0, 0, 0)
        clicks: list[Click] = []
        for session_id in session_ids:
            pending = self._pending.pop(session_id)
            clicks.extend(pending.clicks[offset] for offset in sorted(pending.clicks))
        applied = self.indexer.apply_batch(clicks, on_stale="skip")
        report = self.indexer.last_report
        self.sessions_applied += report.sessions_applied
        self.sessions_duplicate += report.sessions_skipped_duplicate
        self.sessions_stale += report.sessions_skipped_stale
        assert applied == report.sessions_applied
        return (
            report.sessions_applied,
            report.sessions_skipped_duplicate,
            report.sessions_skipped_stale,
        )

    def _commit_low_watermark(self) -> dict[int, int]:
        """Commit each owned partition up to its replay-safe offset."""
        floors: dict[int, int] = {}
        for pending in self._pending.values():
            offset = pending.min_offset
            floor = floors.get(pending.partition)
            if floor is None or offset < floor:
                floors[pending.partition] = offset
        committed: dict[int, int] = {}
        for partition in self.group.assignment(self.member_id):
            target = floors.get(partition, self.group.position(partition))
            self.group.commit_to(self.member_id, partition, target)
            committed[partition] = self.group.offsets.get(partition)
        return committed

    # -- observability + backpressure ----------------------------------------

    def lag_events(self) -> int:
        """Acked clicks not yet visible in the index (unread + buffered)."""
        buffered = sum(len(p.clicks) for p in self._pending.values())
        return self.group.lag() + buffered

    def staleness_seconds(self) -> float:
        """Event-time gap between the log head and the indexed head."""
        head = self.log.max_event_time()
        if head is None:
            return 0.0
        indexed = self.indexer.newest_timestamp
        if indexed is None:
            return float(head)
        return float(max(0, head - indexed))

    def watermark_seconds(self) -> float:
        watermark = self.current_watermark()
        return float(watermark) if watermark is not None else 0.0

    @property
    def late_events(self) -> int:
        """Clicks that arrived behind their partition's watermark."""
        return sum(tracker.late_events for tracker in self._trackers.values())

    def within_staleness_bound(self) -> bool:
        return self.lag_events() <= self.policy.staleness_bound_events

    def _apply_backpressure(self, lag_events: int) -> None:
        if self.admission is None:
            return
        capacity = self.policy.backpressure.capacity_for(
            lag_events, self._full_capacity
        )
        if capacity != self.admission.capacity:
            self.admission.resize(capacity)

    def health(self) -> dict[str, object]:
        """The ``/healthz`` streaming section."""
        return {
            "crashed": self._crashed,
            "group": self.group.info(),
            "lag_events": self.lag_events(),
            "staleness_seconds": self.staleness_seconds(),
            "watermark_seconds": self.watermark_seconds(),
            "within_staleness_bound": self.within_staleness_bound(),
            "pending_sessions": len(self._pending),
            "sessions_applied": self.sessions_applied,
            "sessions_duplicate": self.sessions_duplicate,
            "sessions_stale": self.sessions_stale,
            "replayed_records": self.replayed_records,
            "too_late_events": self.too_late_events,
            "late_events": self.late_events,
            "crash_count": self.crash_count,
        }

    # -- virtual-time driving ------------------------------------------------

    def schedule_on(
        self, clock: "VirtualClock", interval: float, until: float
    ) -> None:
        """Register a recurring ``step`` on a virtual clock until ``until``.

        Crashed ticks are skipped (the consumer is down); once
        :meth:`restart` runs, the next tick resumes stepping — matching
        how a supervised consumer process behaves.
        """
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")

        def tick() -> None:
            if not self._crashed:
                self.step()
            next_at = clock.now + interval
            if next_at <= until:
                clock.schedule(next_at, tick)

        clock.schedule(clock.now + interval, tick)
