"""Seeded fault injection for the streaming path.

Two seams, matching where real systems fail:

* :class:`FlakyTransport` sits between producer and log — transient
  broker rejects (nothing appended) and lost acks (appended, but the
  producer doesn't know). Lost acks are the interesting case: the
  producer retries with the same sequence and broker dedup must hold.
* :class:`DeliveryFaults` sits between consumer poll and the pipeline —
  duplicated and reordered delivery of already acknowledged records.
  It is a pure, seeded transform over each polled batch, so injection
  composes with :class:`~repro.testing.clock.VirtualClock` replay.

All randomness comes from :class:`random.Random` instances owned by the
injector (SRN001): the same seed produces the same fault pattern.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.types import Click
from repro.streaming.log import AppendResult, PartitionedLog, StreamRecord
from repro.streaming.producer import AckLost, TransientPublishError

__all__ = [
    "DeliveryFaultPlan",
    "DeliveryFaults",
    "FlakyTransport",
    "TransportFaultPlan",
]


@dataclass(frozen=True)
class TransportFaultPlan:
    """Producer-side fault rates (both in ``[0, 1]``)."""

    #: probability a publish attempt is rejected before any append.
    reject_rate: float = 0.0
    #: probability the append succeeds but the ack is dropped.
    ack_loss_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("reject_rate", "ack_loss_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


class FlakyTransport:
    """A producer→log wire that drops requests and acks at seeded rates."""

    def __init__(
        self,
        log: PartitionedLog,
        plan: TransportFaultPlan,
        rng: random.Random,
    ) -> None:
        self.log = log
        self.plan = plan
        self._rng = rng
        self.rejects = 0
        self.lost_acks = 0

    def __call__(
        self, partition: int, click: Click, producer_id: str, sequence: int
    ) -> AppendResult:
        if self._rng.random() < self.plan.reject_rate:
            self.rejects += 1
            raise TransientPublishError("injected broker reject")
        result = self.log.append(partition, click, producer_id, sequence)
        # The append happened; losing the ack *after* it is what forces
        # the producer into the dangerous resend-same-record path.
        if self._rng.random() < self.plan.ack_loss_rate:
            self.lost_acks += 1
            raise AckLost("injected ack loss")
        return result


@dataclass(frozen=True)
class DeliveryFaultPlan:
    """Consumer-side fault rates (both in ``[0, 1]``)."""

    #: probability each polled record is delivered twice.
    duplicate_rate: float = 0.0
    #: probability a polled batch is shuffled before the pipeline sees it.
    shuffle_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("duplicate_rate", "shuffle_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


class DeliveryFaults:
    """A seeded poll transform injecting duplicated/reordered delivery.

    Plug into :class:`~repro.streaming.pipeline.StreamingIndexer` as its
    ``poll_transform``.
    """

    def __init__(self, plan: DeliveryFaultPlan, rng: random.Random) -> None:
        self.plan = plan
        self._rng = rng
        self.duplicated = 0
        self.shuffled_batches = 0

    def __call__(self, records: list[StreamRecord]) -> list[StreamRecord]:
        if not records:
            return records
        out: list[StreamRecord] = []
        for record in records:
            out.append(record)
            if self._rng.random() < self.plan.duplicate_rate:
                out.append(record)
                self.duplicated += 1
        if self._rng.random() < self.plan.shuffle_rate:
            self._rng.shuffle(out)
            self.shuffled_batches += 1
        return out
