"""Retrying, idempotent click producers.

The producer assigns each click a per-partition sequence number *before*
the first publish attempt and reuses it across retries. Together with
the broker-side high-water dedup in :class:`~repro.streaming.log
.PartitionedLog` this gives the Kafka idempotent-producer guarantee:
transient rejects and lost acks are retried with jittered exponential
backoff, and a retry of a record the broker already holds is re-acked
instead of re-appended — at-least-once attempts, exactly-once log
contents.

Clock hygiene (SRN001): backoff sleeps go through the injected ``sleep``
seam (``time.sleep`` only as the default argument) and jitter comes from
a seeded :class:`random.Random` instance, so retry storms replay
deterministically under :class:`~repro.testing.clock.VirtualClock`.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Protocol

from repro.core.types import Click
from repro.streaming.log import AppendResult, PartitionedLog

__all__ = [
    "AckLost",
    "ClickProducer",
    "PublishFailed",
    "PublishReceipt",
    "RetryPolicy",
    "Transport",
    "TransientPublishError",
]


class TransientPublishError(RuntimeError):
    """The broker transiently rejected the publish; nothing was appended."""


class AckLost(RuntimeError):
    """The append may have happened but the acknowledgement was lost.

    The producer cannot distinguish this from a reject — it must retry
    with the *same* sequence and rely on broker dedup.
    """


class PublishFailed(RuntimeError):
    """Retries exhausted without an acknowledgement."""

    def __init__(self, message: str, attempts: int) -> None:
        super().__init__(message)
        self.attempts = attempts


class Transport(Protocol):
    """The wire between producer and log; fault injection wraps this."""

    def __call__(
        self, partition: int, click: Click, producer_id: str, sequence: int
    ) -> AppendResult: ...


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff for publish retries."""

    max_attempts: int = 8
    base_backoff_seconds: float = 0.01
    multiplier: float = 2.0
    max_backoff_seconds: float = 1.0
    #: uniform jitter fraction added on top of the exponential delay.
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        base = min(
            self.base_backoff_seconds * self.multiplier ** (attempt - 1),
            self.max_backoff_seconds,
        )
        return base * (1.0 + self.jitter * rng.random())


@dataclass(frozen=True, slots=True)
class PublishReceipt:
    """The producer-side view of one acknowledged click."""

    partition: int
    offset: int
    sequence: int
    attempts: int
    #: the ack came from broker dedup (an earlier attempt had landed).
    deduplicated: bool


class ClickProducer:
    """Publishes clicks through a (possibly faulty) transport, idempotently."""

    def __init__(
        self,
        log: PartitionedLog,
        producer_id: str,
        transport: Transport | None = None,
        retry: RetryPolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: random.Random | None = None,
    ) -> None:
        self.log = log
        self.producer_id = producer_id
        self._transport: Transport = transport if transport is not None else log.append
        self.retry = retry if retry is not None else RetryPolicy()
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random(0)
        # Next sequence per partition; assigned once per click, reused
        # across retries (that reuse is what makes retries idempotent).
        self._sequences: dict[int, int] = {}
        self.acked_count = 0
        self.retry_count = 0
        self.deduplicated_acks = 0

    def publish(self, click: Click) -> PublishReceipt:
        """Publish one click, retrying until acked or attempts exhausted."""
        partition = self.log.partition_for(click.session_id)
        sequence = self._sequences.get(partition, 0)
        attempts = 0
        last_error: Exception | None = None
        while attempts < self.retry.max_attempts:
            attempts += 1
            try:
                result = self._transport(
                    partition, click, self.producer_id, sequence
                )
            except (TransientPublishError, AckLost) as error:
                last_error = error
                self.retry_count += 1
                if attempts < self.retry.max_attempts:
                    self._sleep(self.retry.delay(attempts, self._rng))
                continue
            self._sequences[partition] = sequence + 1
            self.acked_count += 1
            if result.deduplicated:
                self.deduplicated_acks += 1
            return PublishReceipt(
                partition=result.partition,
                offset=result.offset,
                sequence=sequence,
                attempts=attempts,
                deduplicated=result.deduplicated,
            )
        # The record may have been appended with its ack lost, so this
        # sequence is burned: reusing it for a *different* click would be
        # wrongly deduplicated by the broker. The caller may re-publish
        # this click (fresh sequence); broker-level duplication from that
        # is absorbed by the indexer's session-level idempotence.
        self._sequences[partition] = sequence + 1
        raise PublishFailed(
            f"publish of session {click.session_id} item {click.item_id} "
            f"failed after {attempts} attempts: {last_error}",
            attempts=attempts,
        )

    def publish_all(self, clicks: Iterable[Click]) -> list[PublishReceipt]:
        return [self.publish(click) for click in clicks]

    def info(self) -> dict[str, int]:
        return {
            "acked": self.acked_count,
            "retries": self.retry_count,
            "deduplicated_acks": self.deduplicated_acks,
        }
