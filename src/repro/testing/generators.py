"""Seeded workload generators shared by tests and benchmarks.

Everything here is a pure function of a :class:`WorkloadConfig` — same
config, same workload, on every machine and every run. The generators
deliberately produce the *adversarial* shapes real e-commerce traffic
has and uniform random data does not:

* **power-law item popularity** (``popularity_exponent``) — a few head
  items appear in most sessions, so posting lists are long and the
  early-stopping path of Algorithm 2 actually triggers;
* **coarse timestamps** (``timestamp_granularity``) — many sessions
  share a timestamp, exercising every tie-breaking branch of the
  ``m``-most-recent sample and the top-k heap (the divergence class the
  differential oracle originally caught);
* **bursty sessions** (``bursty_fraction``) — a cluster of sessions
  lands inside one narrow time window, the flash-crowd shape;
* **bot bursts** (``bot_fraction``) — long sessions hammering a tiny
  item pool, inflating head-item posting lists further.

Only the stdlib :mod:`random` is used (no numpy), and every public
method derives its own :class:`random.Random` from the config seed, so
calling methods in any order — or skipping some — never changes what the
others produce.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any, Iterator, Sequence

from repro.core.types import Click, ItemId

__all__ = ["WorkloadConfig", "WorkloadGenerator", "workload_corpus"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of one generated workload (hashable, replayable by value)."""

    seed: int = 0
    num_sessions: int = 30
    num_items: int = 25
    min_session_length: int = 1
    max_session_length: int = 5
    #: Zipf-like skew of item popularity; 0.0 = uniform.
    popularity_exponent: float = 1.1
    #: timestamps are quantised down to multiples of this (0 = distinct),
    #: directly controlling how many sessions tie on a timestamp.
    timestamp_granularity: float = 100.0
    start_time: float = 1_000.0
    time_span: float = 5_000.0
    #: fraction of sessions compressed into one narrow burst window.
    bursty_fraction: float = 0.0
    #: fraction of sessions that are bots (long, tiny item pool).
    bot_fraction: float = 0.0
    bot_session_length: int = 20
    bot_item_pool: int = 3

    def __post_init__(self) -> None:
        if self.num_sessions < 1 or self.num_items < 1:
            raise ValueError("need at least one session and one item")
        if not 1 <= self.min_session_length <= self.max_session_length:
            raise ValueError("session length bounds are inconsistent")
        for name in ("popularity_exponent", "timestamp_granularity"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        for name in ("bursty_fraction", "bot_fraction"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")


class WorkloadGenerator:
    """Deterministic click-log / query / schedule generator."""

    def __init__(
        self, config: WorkloadConfig | None = None, **overrides: Any
    ) -> None:
        self.config = replace(config or WorkloadConfig(), **overrides)
        cfg = self.config
        # Unnormalised power-law popularity weights over item ids; used
        # with random.choices (which normalises internally).
        self._item_weights = [
            1.0 / (rank + 1) ** cfg.popularity_exponent
            for rank in range(cfg.num_items)
        ]

    def _rng(self, stream: int) -> random.Random:
        """An independent RNG per generator method (order-insensitive)."""
        return random.Random(self.config.seed * 1_000_003 + stream)

    def _draw_items(self, rng: random.Random, length: int, pool: int | None = None) -> list[ItemId]:
        if pool is None:
            return rng.choices(
                range(self.config.num_items),
                weights=self._item_weights,
                k=length,
            )
        pool = min(pool, self.config.num_items)
        return [rng.randrange(pool) for _ in range(length)]

    def _session_timestamp(self, rng: random.Random, bursty: bool) -> float:
        cfg = self.config
        if bursty:
            # The burst window is one granule wide at mid-span.
            width = cfg.timestamp_granularity or cfg.time_span / 100.0
            raw = cfg.start_time + cfg.time_span / 2.0 + rng.uniform(0.0, width)
        else:
            raw = cfg.start_time + rng.uniform(0.0, cfg.time_span)
        if cfg.timestamp_granularity > 0:
            raw = (raw // cfg.timestamp_granularity) * cfg.timestamp_granularity
        return raw

    def clicks(self) -> list[Click]:
        """The historical click log: one list of :class:`Click` events.

        All clicks of a session share its timestamp (the index keys
        recency on the session, not on individual clicks), so timestamp
        ties across sessions survive index construction intact.
        """
        cfg = self.config
        rng = self._rng(1)
        num_bots = round(cfg.num_sessions * cfg.bot_fraction)
        num_bursty = round(cfg.num_sessions * cfg.bursty_fraction)
        out: list[Click] = []
        for session_id in range(cfg.num_sessions):
            is_bot = session_id < num_bots
            bursty = session_id < num_bots + num_bursty and not is_bot
            timestamp = self._session_timestamp(rng, bursty)
            if is_bot:
                items = self._draw_items(
                    rng, cfg.bot_session_length, pool=cfg.bot_item_pool
                )
            else:
                length = rng.randint(
                    cfg.min_session_length, cfg.max_session_length
                )
                items = self._draw_items(rng, length)
            out.extend(Click(session_id, item, timestamp) for item in items)
        return out

    def query_sessions(self, count: int) -> list[list[ItemId]]:
        """Evolving sessions to predict for (popularity-skewed draws)."""
        cfg = self.config
        rng = self._rng(2)
        return [
            self._draw_items(
                rng,
                rng.randint(cfg.min_session_length, cfg.max_session_length),
            )
            for _ in range(count)
        ]

    def arrival_times(self, duration: float, rate: float) -> Iterator[float]:
        """Poisson arrival instants over ``[0, duration)`` seconds."""
        rng = self._rng(3)
        now = 0.0
        while True:
            now += rng.expovariate(rate)
            if now >= duration:
                return
            yield now

    def flash_sale_arrival_times(
        self,
        duration: float,
        base_rate: float,
        spike_start_fraction: float = 0.4,
        spike_duration_fraction: float = 0.2,
        spike_multiplier: float = 8.0,
    ) -> Iterator[float]:
        """Poisson arrivals with a flash-sale spike in the middle.

        The instantaneous rate is ``base_rate`` outside the spike window
        and ``base_rate × spike_multiplier`` inside it — the
        doors-open-at-noon shape that stresses hedging and autoscaling at
        once: the spike multiplies the number of requests that land on a
        straggler pod exactly when there is the least headroom.
        """
        if not 0.0 <= spike_start_fraction <= 1.0:
            raise ValueError("spike_start_fraction must be in [0, 1]")
        if spike_duration_fraction < 0.0:
            raise ValueError("spike_duration_fraction must be >= 0")
        if spike_multiplier < 1.0:
            raise ValueError("spike_multiplier must be >= 1")
        rng = self._rng(5)
        spike_start = duration * spike_start_fraction
        spike_end = min(
            duration, spike_start + duration * spike_duration_fraction
        )
        now = 0.0
        while True:
            rate = (
                base_rate * spike_multiplier
                if spike_start <= now < spike_end
                else base_rate
            )
            now += rng.expovariate(rate)
            if now >= duration:
                return
            yield now

    def chaos_kill_times(
        self, pod_ids: Sequence[str], duration: float, restart_after: float | None = None
    ) -> list[tuple[float, str, float | None]]:
        """Seeded ``(at_time, pod_id, restart_at)`` kill plans.

        Returned as plain tuples so callers build a
        :class:`~repro.cluster.chaos.PodKill` schedule without this
        module importing the serving stack (generators stay core-only).
        """
        rng = self._rng(4)
        plans = []
        for pod_id in pod_ids:
            at = rng.uniform(duration * 0.2, duration * 0.7)
            restart = at + restart_after if restart_after is not None else None
            plans.append((at, pod_id, restart))
        return sorted(plans)


def workload_corpus(count: int, base_seed: int = 0) -> list[WorkloadConfig]:
    """``count`` diverse workload configs for differential sweeps.

    Rotates through the adversarial regimes — uniform, skewed, all-tied
    timestamps, bursty, bot-heavy, single-item — so a corpus of 200
    covers each regime dozens of times with different seeds.
    """
    regimes = [
        dict(popularity_exponent=0.0, timestamp_granularity=0.0),
        dict(popularity_exponent=1.3, timestamp_granularity=100.0),
        dict(timestamp_granularity=10_000.0),  # every timestamp ties
        dict(bursty_fraction=0.5, timestamp_granularity=500.0),
        dict(bot_fraction=0.2, bot_item_pool=2),
        dict(num_items=3, max_session_length=4),  # dense collisions
        dict(num_sessions=4, num_items=5),  # tiny: m truncation edge
        dict(num_sessions=60, max_session_length=8),
    ]
    corpus = []
    for i in range(count):
        regime = regimes[i % len(regimes)]
        corpus.append(WorkloadConfig(seed=base_seed + i, **regime))
    return corpus
