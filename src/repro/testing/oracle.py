"""The differential oracle: replay one workload through every implementation.

The paper's central correctness claim is that VMIS-kNN (Algorithm 2) is
an *exact* reformulation of VS-kNN (Algorithm 1). The oracle makes that
claim executable: build every implementation from the same click log,
ask each the same queries under the same ``(m, k, π, λ)`` hyperparameters
and compare outputs.

Two comparison strengths, matched to what each implementation promises:

* **bit-exact** (scores and ranks) — ``VSKNN`` (untruncated index,
  ``scoring_style="vmis"``) vs ``VMISKNN`` vs ``VMISKNN.no_opt`` vs
  :class:`~repro.core.colindex.VMISKNNColumnar` (the vectorized scorer)
  vs :class:`~repro.core.batch.BatchPredictionEngine` with both shard
  strategies. These are documented as exactly equivalent, including
  floating-point summation order and all tie-breaking.
* **rank-exact** — the :mod:`repro.engines` study backends (hashmap /
  dataflow / sqlengine), which guarantee the same top-k *items* only
  inside their documented envelope (``m >=`` the session count, linear
  decay, paper match weight); their internal summation orders differ, so
  scores may differ in the last ulp. Queries whose k-th neighbour cut
  falls inside that float noise are skipped (see
  :func:`_neighbor_cut_stable`): when two sessions are mathematically
  tied at the cut, which one wins depends on summation order, and the
  candidate pools legitimately differ.

When implementations disagree, :meth:`DifferentialRunner.shrink` runs a
ddmin-style minimiser over the click log (then the query) to produce the
smallest failing case, and :func:`write_regression` freezes it as JSON
under ``tests/regressions/`` so the bug stays fixed forever.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from itertools import product
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.core.batch import BatchPredictionEngine
from repro.core.colindex import ColumnarSessionIndex, VMISKNNColumnar
from repro.core.floatcmp import scores_differ
from repro.core.index import SessionIndex
from repro.core.types import Click, ItemId
from repro.core.vmis import VMISKNN
from repro.core.vsknn import VSKNN
from repro.testing.generators import WorkloadConfig, WorkloadGenerator

__all__ = [
    "HyperParams",
    "DivergenceCase",
    "OracleReport",
    "DifferentialRunner",
    "default_grid",
    "write_regression",
    "load_regression",
]

REFERENCE = "vsknn"


@dataclass(frozen=True)
class HyperParams:
    """One point of the (m, k, π, λ) hyperparameter grid."""

    m: int = 500
    k: int = 100
    decay: str = "linear"
    match_weight: str = "paper"


def default_grid() -> list[HyperParams]:
    """The full cross-product the oracle sweeps by default.

    ``m`` values straddle the truncation boundary of small workloads
    (m=1 prunes aggressively; m=64 usually exceeds the session count),
    and every π/λ named function is covered.
    """
    return [
        HyperParams(m, k, decay, match_weight)
        for m, k, decay, match_weight in product(
            (1, 2, 5, 64),
            (1, 3, 20),
            ("linear", "quadratic", "log"),
            ("paper", "uniform"),
        )
    ]


@dataclass
class DivergenceCase:
    """A workload on which two implementations disagreed."""

    clicks: list[Click]
    query: list[ItemId]
    params: HyperParams
    impl_a: str
    impl_b: str
    output_a: list[tuple[ItemId, float]]
    output_b: list[tuple[ItemId, float]]

    def describe(self) -> str:
        return (
            f"{self.impl_a} vs {self.impl_b} diverged under {self.params} "
            f"on a {len(self.clicks)}-click log, query {self.query}: "
            f"{self.output_a} != {self.output_b}"
        )


@dataclass
class OracleReport:
    """Outcome of a corpus sweep."""

    workloads: int = 0
    comparisons: int = 0
    divergences: list[DivergenceCase] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.divergences


ImplFactory = Callable[[list[Click], HyperParams], object]


def _core_implementations() -> dict[str, ImplFactory]:
    """The bit-exact family, all built from the same click log."""

    def vsknn(clicks: list[Click], p: HyperParams) -> VSKNN:
        # The reference: untruncated index, Algorithm 1 candidate
        # materialisation, Algorithm 2 scoring for comparability.
        index = SessionIndex.from_clicks(clicks, max_sessions_per_item=2**62)
        return VSKNN(
            index,
            m=p.m,
            k=p.k,
            decay=p.decay,
            match_weight=p.match_weight,
            scoring_style="vmis",
        )

    def vmis(clicks: list[Click], p: HyperParams) -> VMISKNN:
        index = SessionIndex.from_clicks(clicks, max_sessions_per_item=p.m)
        return VMISKNN(
            index, m=p.m, k=p.k, decay=p.decay, match_weight=p.match_weight
        )

    def vmis_no_opt(clicks: list[Click], p: HyperParams) -> VMISKNN:
        index = SessionIndex.from_clicks(clicks, max_sessions_per_item=p.m)
        return VMISKNN.no_opt(
            index, m=p.m, k=p.k, decay=p.decay, match_weight=p.match_weight
        )

    def vmis_columnar(clicks: list[Click], p: HyperParams) -> VMISKNNColumnar:
        # The vectorized scorer is held to *bit*-equality with the heap
        # path, not rank-equality: same index contents, columnar layout.
        index = SessionIndex.from_clicks(clicks, max_sessions_per_item=p.m)
        return VMISKNNColumnar(
            ColumnarSessionIndex.from_session_index(index),
            m=p.m,
            k=p.k,
            decay=p.decay,
            match_weight=p.match_weight,
        )

    def batch_sessions(
        clicks: list[Click], p: HyperParams
    ) -> BatchPredictionEngine:
        return BatchPredictionEngine(
            vmis(clicks, p), num_workers=0, cache_size=0
        )

    def batch_index(clicks: list[Click], p: HyperParams) -> BatchPredictionEngine:
        return BatchPredictionEngine(
            vmis(clicks, p),
            num_workers=2,
            shard_strategy="index",
            cache_size=0,
        )

    return {
        REFERENCE: vsknn,
        "vmis": vmis,
        "vmis-no-opt": vmis_no_opt,
        "vmis-columnar": vmis_columnar,
        "batch-sessions": batch_sessions,
        "batch-index": batch_index,
    }


def _engine_implementations() -> dict[str, ImplFactory]:
    """The study backends: rank-exact inside their envelope only."""
    from repro.engines.dataflow import DataflowVMIS
    from repro.engines.hashmap import HashmapVMIS
    from repro.engines.sqlengine import SQLVMIS

    def build(cls: type) -> ImplFactory:
        def factory(clicks: list[Click], p: HyperParams) -> object:
            index = SessionIndex.from_clicks(clicks, max_sessions_per_item=p.m)
            return cls(index, m=p.m, k=p.k)

        return factory

    return {
        "engine-hashmap": build(HashmapVMIS),
        "engine-dataflow": build(DataflowVMIS),
        "engine-sql": build(SQLVMIS),
    }


def _in_engine_envelope(clicks: Sequence[Click], p: HyperParams) -> bool:
    num_sessions = len({c.session_id for c in clicks})
    return (
        p.m >= num_sessions
        and p.decay == "linear"
        and p.match_weight == "paper"
    )


def _neighbor_cut_stable(
    clicks: Sequence[Click], query: Sequence[ItemId], p: HyperParams
) -> bool:
    """Whether the k-th neighbour cut survives summation-order noise.

    The study backends accumulate similarity in different orders than the
    core implementations, so mathematically tied neighbours can land one
    ulp apart and a different session wins the cut — after which the
    candidate item pools (and so the rankings) legitimately differ. Rank
    equality is only a meaningful claim when the gap at the cut exceeds
    float noise; queries where it does not are skipped.
    """
    index = SessionIndex.from_clicks(clicks, max_sessions_per_item=p.m)
    knn = VMISKNN(index, m=p.m, k=p.k, decay=p.decay, match_weight=p.match_weight)
    similarities = sorted(
        knn._matching_similarities(knn._capped(list(query))).values(),
        reverse=True,
    )
    if len(similarities) <= p.k:
        return True  # every candidate is selected; there is no cut
    return scores_differ(similarities[p.k - 1], similarities[p.k])


class DifferentialRunner:
    """Replays workloads through every implementation and diffs outputs.

    Args:
        how_many: recommendation list length asked of every
            implementation (the paper's frontend asks for 21; the
            acceptance bar here is exact top-20 equivalence).
        include_engines: also run the :mod:`repro.engines` backends
            (rank-level comparison, envelope grid points only).
        extra_implementations: name → factory of additional
            implementations to hold to bit-exactness against the
            reference — the hook the bug-injection demo uses.
    """

    def __init__(
        self,
        how_many: int = 20,
        include_engines: bool = False,
        extra_implementations: dict[str, ImplFactory] | None = None,
    ) -> None:
        self.how_many = how_many
        self.include_engines = include_engines
        self.implementations = _core_implementations()
        if extra_implementations:
            self.implementations.update(extra_implementations)
        self.engine_implementations = (
            _engine_implementations() if include_engines else {}
        )

    # -- single-case comparison ---------------------------------------------

    def _query(
        self, impl: Any, query: Sequence[ItemId]
    ) -> list[tuple[ItemId, float]]:
        scored = impl.recommend(list(query), how_many=self.how_many)
        return [(s.item_id, s.score) for s in scored]

    @staticmethod
    def _close(impl: Any) -> None:
        close = getattr(impl, "close", None)
        if callable(close):
            close()

    def _output(
        self, impl: Any, query: Sequence[ItemId]
    ) -> list[tuple[ItemId, float]]:
        try:
            return self._query(impl, query)
        finally:
            self._close(impl)

    def compare(
        self,
        clicks: Sequence[Click],
        query: Sequence[ItemId],
        params: HyperParams,
    ) -> list[DivergenceCase]:
        """All divergences from the reference on one (log, query, params)."""
        return self.compare_many(clicks, [query], params)

    def compare_many(
        self,
        clicks: Sequence[Click],
        queries: Sequence[Sequence[ItemId]],
        params: HyperParams,
    ) -> list[DivergenceCase]:
        """Divergences across several queries, building each impl once."""
        clicks = list(clicks)
        divergences: list[DivergenceCase] = []
        reference_impl = self.implementations[REFERENCE](clicks, params)
        references = [
            self._query(reference_impl, query) for query in queries
        ]
        self._close(reference_impl)

        contenders: list[tuple[str, ImplFactory, bool]] = [
            (name, factory, False)
            for name, factory in self.implementations.items()
            if name != REFERENCE
        ]
        stable: list[bool] = [True] * len(queries)
        if self.engine_implementations and _in_engine_envelope(clicks, params):
            stable = [
                _neighbor_cut_stable(clicks, query, params)
                for query in queries
            ]
            contenders.extend(
                (name, factory, True)
                for name, factory in self.engine_implementations.items()
            )
        for name, factory, rank_only in contenders:
            impl = factory(clicks, params)
            for query, reference, cut_stable in zip(
                queries, references, stable
            ):
                if rank_only and not cut_stable:
                    continue
                output = self._query(impl, query)
                if rank_only:
                    diverged = [i for i, _ in output] != [
                        i for i, _ in reference
                    ]
                else:
                    diverged = output != reference
                if diverged:
                    divergences.append(
                        DivergenceCase(
                            clicks=clicks,
                            query=list(query),
                            params=params,
                            impl_a=REFERENCE,
                            impl_b=name,
                            output_a=reference,
                            output_b=output,
                        )
                    )
            self._close(impl)
        return divergences

    def _still_diverges(
        self,
        case: DivergenceCase,
        clicks: Sequence[Click],
        query: Sequence[ItemId],
    ) -> bool:
        if not clicks or not query:
            return False
        build = self.implementations.get(case.impl_b) or (
            self.engine_implementations.get(case.impl_b)
        )
        if build is None:
            raise KeyError(f"unknown implementation {case.impl_b!r}")
        reference = self._output(
            self.implementations[REFERENCE](list(clicks), case.params), query
        )
        output = self._output(build(list(clicks), case.params), query)
        if case.impl_b in self.engine_implementations:
            if not _in_engine_envelope(clicks, case.params):
                return False
            if not _neighbor_cut_stable(clicks, query, case.params):
                return False
            return [i for i, _ in output] != [i for i, _ in reference]
        return output != reference

    # -- corpus sweep --------------------------------------------------------

    def run_corpus(
        self,
        configs: Iterable[WorkloadConfig],
        grid: Sequence[HyperParams] | None = None,
        queries_per_workload: int = 2,
        stop_on_first: bool = False,
    ) -> OracleReport:
        """Sweep a corpus of workload configs against a hyperparameter grid."""
        grid = list(grid) if grid is not None else default_grid()
        report = OracleReport()
        for config in configs:
            generator = WorkloadGenerator(config)
            clicks = generator.clicks()
            queries = generator.query_sessions(queries_per_workload)
            report.workloads += 1
            for params in grid:
                report.comparisons += len(queries)
                found = self.compare_many(clicks, queries, params)
                report.divergences.extend(found)
                if found and stop_on_first:
                    return report
        return report

    # -- failing-case minimisation ------------------------------------------

    def shrink(self, case: DivergenceCase) -> DivergenceCase:
        """ddmin-style minimisation: smallest click log, then query.

        Greedily removes chunks of clicks (halving chunk sizes down to
        single clicks) while the divergence persists, then prunes query
        items the same way. The result is typically a handful of clicks —
        small enough to read the bug straight off the repro.
        """
        clicks = self._ddmin(
            case.clicks, lambda c: self._still_diverges(case, c, case.query)
        )
        query = self._ddmin(
            case.query, lambda q: self._still_diverges(case, clicks, q)
        )
        fresh = self.compare(clicks, query, case.params)
        for candidate in fresh:
            if candidate.impl_b == case.impl_b:
                return candidate
        # The divergence mutated during shrinking (possible when several
        # implementations disagree at once): fall back to any survivor,
        # else the original.
        return fresh[0] if fresh else case

    @staticmethod
    def _ddmin(items: list, still_fails: Callable[[list], bool]) -> list:
        current = list(items)
        chunk = max(1, len(current) // 2)
        while chunk >= 1:
            shrunk = True
            while shrunk and len(current) > 1:
                shrunk = False
                start = 0
                while start < len(current):
                    candidate = current[:start] + current[start + chunk :]
                    if candidate and still_fails(candidate):
                        current = candidate
                        shrunk = True
                    else:
                        start += chunk
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)
        return current


# -- regression corpus -------------------------------------------------------


def write_regression(case: DivergenceCase, directory: str | Path) -> Path:
    """Freeze a (shrunk) divergence as a JSON fixture; returns the path.

    File names are content-derived, so re-finding the same minimal case
    is idempotent.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "impl_a": case.impl_a,
        "impl_b": case.impl_b,
        "params": {
            "m": case.params.m,
            "k": case.params.k,
            "decay": case.params.decay,
            "match_weight": case.params.match_weight,
        },
        "clicks": [[c.session_id, c.item_id, c.timestamp] for c in case.clicks],
        "query": list(case.query),
        "output_a": [[item, score] for item, score in case.output_a],
        "output_b": [[item, score] for item, score in case.output_b],
    }
    blob = json.dumps(
        [payload["impl_b"], payload["params"], payload["clicks"], payload["query"]],
        sort_keys=True,
    )
    digest = hashlib.sha1(blob.encode()).hexdigest()[:8]
    path = directory / f"divergence-{case.impl_b}-{digest}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_regression(path: str | Path) -> DivergenceCase:
    """Load a frozen divergence fixture back into a replayable case."""
    payload = json.loads(Path(path).read_text())
    return DivergenceCase(
        clicks=[Click(s, i, t) for s, i, t in payload["clicks"]],
        query=list(payload["query"]),
        params=HyperParams(**payload["params"]),
        impl_a=payload["impl_a"],
        impl_b=payload["impl_b"],
        output_a=[(item, score) for item, score in payload["output_a"]],
        output_b=[(item, score) for item, score in payload["output_b"]],
    )
