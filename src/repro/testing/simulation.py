"""Deterministic simulation of the serving cluster on a virtual clock.

:class:`SimulatedCluster` is the glue between the time-free state
machines of the serving stack and the :class:`~repro.testing.clock.VirtualClock`:

* the wrapped :class:`~repro.serving.app.ServingCluster` gets the clock
  as *both* its session-TTL clock and its ``perf_clock``, so deadlines,
  circuit breakers, admission control and service-time measurement all
  read virtual time;
* the resilience policy is forced to ``inline_stages=True`` — stages run
  synchronously on the driving thread, and a "slow" recommender models
  its stall by advancing the clock, which the deadline then observes;
* :meth:`run` replays a :class:`~repro.cluster.loadgen.TimedRequest`
  stream through the :class:`~repro.cluster.chaos.ChaosInjector`,
  advancing the clock to each arrival instant first, so TTL expiry,
  breaker cool-downs and kill/restart schedules interleave exactly as
  the arrival timeline dictates;
* :meth:`run_rollout` drives a canary-gated
  :class:`~repro.index.lifecycle.rollout.RolloutController` whose
  backoff sleeps advance the same clock and whose jitter comes from a
  seeded RNG.

Same seed, same schedule → byte-identical
:class:`~repro.cluster.chaos.ChaosReport`, on every run and machine.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Any, Iterable, Iterator, Sequence

from repro.cluster.chaos import ChaosInjector, ChaosReport, ChaosSchedule, PodKill
from repro.cluster.loadgen import TimedRequest
from repro.core.index import SessionIndex
from repro.index.lifecycle.rollout import (
    RolloutController,
    RolloutPolicy,
    RolloutReport,
)
from repro.serving.app import RecommenderFactory, ServingCluster
from repro.serving.resilience import ResiliencePolicy
from repro.testing.clock import VirtualClock

__all__ = ["SimulatedCluster"]


class SimulatedCluster:
    """A serving cluster whose every time read is the virtual clock's."""

    def __init__(self, cluster: ServingCluster, clock: VirtualClock) -> None:
        self.cluster = cluster
        self.clock = clock

    @classmethod
    def with_index(
        cls,
        index: SessionIndex,
        clock: VirtualClock | None = None,
        resilience: ResiliencePolicy | None = None,
        **kwargs: Any,
    ) -> "SimulatedCluster":
        """Build a fully virtualised cluster around a prebuilt index.

        Accepts the same keyword arguments as
        :meth:`ServingCluster.with_index`; any resilience policy is
        switched to inline stage execution (worker-pool timeouts block
        on real time, which a simulation must never do).
        """
        clock = clock or VirtualClock()
        if resilience is not None and not resilience.inline_stages:
            resilience = replace(resilience, inline_stages=True)
        cluster = ServingCluster.with_index(
            index,
            clock=clock,
            perf_clock=clock,
            resilience=resilience,
            **kwargs,
        )
        return cls(cluster, clock)

    # -- chaos replay --------------------------------------------------------

    def _paced(
        self, arrivals: Iterable[TimedRequest]
    ) -> Iterator[TimedRequest]:
        """Advance the clock to each arrival instant before serving it."""
        for timed in arrivals:
            self.clock.advance_to(timed.arrival_time)
            yield timed

    def run(
        self,
        arrivals: Iterable[TimedRequest],
        kills: ChaosSchedule | Iterable[PodKill] = (),
    ) -> ChaosReport:
        """Replay a traffic trace (with optional pod kills) to completion.

        The injector applies kills/restarts by comparing schedule times
        against arrival times; pacing the clock alongside keeps every
        other time consumer (TTLs, breakers, deadlines) in step with the
        same timeline.
        """
        injector = ChaosInjector(self.cluster, kills)
        return injector.run(self._paced(arrivals))

    # -- rollout replay ------------------------------------------------------

    def run_rollout(
        self,
        factory: RecommenderFactory,
        version: str | None = None,
        policy: RolloutPolicy | None = None,
        seed: int = 0,
    ) -> RolloutReport:
        """Drive a canary-gated rollout entirely on virtual time.

        Retry backoffs (and their jitter) advance the virtual clock via
        the controller's injected ``sleep``; the jitter RNG is seeded,
        so the whole rollout — including failure/retry interleavings —
        replays identically for a given seed.
        """
        controller = RolloutController(
            self.cluster,
            policy=policy,
            rng=random.Random(seed),
            sleep=self.clock.sleep,
        )
        return controller.run(factory, version=version)
