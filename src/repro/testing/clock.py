"""A virtual monotonic clock for deterministic time-dependent tests.

Every time-dependent component of the serving stack takes an injectable
``Clock`` (a zero-argument callable returning seconds):
:class:`~repro.core.deadline.Deadline`,
:class:`~repro.serving.resilience.CircuitBreaker`,
:class:`~repro.serving.resilience.AdmissionController`, the session-store
TTLs, the per-pod service-time measurement (``perf_clock``) and the
rollout controller's ``sleep``. Injecting one shared
:class:`VirtualClock` makes all of them advance only when the test says
so: a "200 ms stall" is ``clock.advance(0.2)`` inside a fake recommender,
a breaker cool-down elapses with ``clock.advance(policy.probe_seconds)``,
and the whole scenario replays bit-identically on every run and machine.

The clock is intentionally *not* an event loop — components never block
on it. ``sleep`` simply advances time (matching how
:class:`~repro.index.lifecycle.rollout.RolloutController` uses its
injected ``sleep``), and scheduled callbacks fire synchronously during
``advance`` in timestamp order, which is enough to model "the pod dies
40 s into the run" style events.
"""

from __future__ import annotations

import itertools
import threading
from typing import Callable

from repro.core.locking import guarded_by

__all__ = ["VirtualClock"]


@guarded_by("_lock", "_now", "_scheduled")
class VirtualClock:
    """A controllable monotonic clock; callable like ``time.monotonic``.

    Reads are thread-safe (guardrail components may read from worker
    threads), but advancing the clock is meant to happen from the test
    thread only — deterministic simulation is single-threaded by design.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()
        # (fire_at, seq, callback): seq keeps firing order stable for
        # callbacks scheduled at the same instant.
        self._scheduled: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()

    def __call__(self) -> float:
        with self._lock:
            return self._now

    @property
    def now(self) -> float:
        return self()

    def advance(self, seconds: float) -> float:
        """Move time forward, firing due scheduled callbacks in order."""
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds}; time is monotonic")
        return self.advance_to(self() + seconds)

    def advance_to(self, timestamp: float) -> float:
        """Advance to an absolute time (no-op if already past it)."""
        while True:
            with self._lock:
                if timestamp <= self._now:
                    return self._now
                due = [
                    entry
                    for entry in self._scheduled
                    if entry[0] <= timestamp
                ]
                if not due:
                    self._now = timestamp
                    return self._now
                entry = min(due)
                self._scheduled.remove(entry)
                # Time lands exactly on the event before it fires, so the
                # callback observes the instant it was scheduled for.
                self._now = max(self._now, entry[0])
            entry[2]()

    def sleep(self, seconds: float) -> None:
        """Drop-in for ``time.sleep``: advancing is the whole effect."""
        self.advance(seconds)

    def schedule(self, at: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` when the clock reaches ``at`` (absolute time).

        Callbacks scheduled in the past fire on the next ``advance``.
        They run synchronously on the advancing thread and may read the
        clock; scheduling further callbacks from inside one is allowed.
        """
        with self._lock:
            self._scheduled.append((float(at), next(self._seq), callback))

    def pending(self) -> int:
        """Number of scheduled callbacks that have not fired yet."""
        with self._lock:
            return len(self._scheduled)
