"""Hypothesis strategies and pinned profiles for the correctness suites.

Strategies mirror the adversarial shapes of
:mod:`repro.testing.generators` (few items, coarse timestamps, heavy
collisions) so Hypothesis explores the tie-breaking and truncation edges
rather than blandly-unique data.

Profiles pin Hypothesis behaviour per environment:

* ``dev`` — the local default: normal randomised exploration.
* ``ci`` — derandomised (fixed seed), no per-example deadline (shared CI
  runners have noisy clocks) and a bounded example count, so CI failures
  replay bit-identically with ``HYPOTHESIS_PROFILE=ci``.
* ``differential`` — the heavyweight profile for ``pytest -m
  differential``: derandomised, deadline-free, more examples.

``install_profiles`` registers all three and activates the one named by
the ``HYPOTHESIS_PROFILE`` environment variable; tests/conftest.py calls
it at import time.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.core.types import Click
from repro.testing.oracle import HyperParams

__all__ = [
    "click_logs",
    "evolving_sessions",
    "hyperparams",
    "install_profiles",
]


def install_profiles(default: str = "dev") -> str:
    """Register the pinned profiles; activate ``$HYPOTHESIS_PROFILE``.

    Returns the name of the activated profile.
    """
    settings.register_profile("dev", max_examples=50, deadline=None)
    settings.register_profile(
        "ci",
        max_examples=50,
        derandomize=True,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
        print_blob=True,
    )
    settings.register_profile(
        "differential",
        max_examples=200,
        derandomize=True,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
        print_blob=True,
    )
    profile = os.environ.get("HYPOTHESIS_PROFILE", default)
    settings.load_profile(profile)
    return profile


@st.composite
def click_logs(
    draw: st.DrawFn,
    max_sessions: int = 10,
    max_items: int = 6,
    max_session_length: int = 4,
    timestamp_buckets: int = 4,
) -> list[Click]:
    """A small historical click log with aggressive collisions.

    Item ids and timestamps are drawn from tiny pools, so shared items
    and tied timestamps — the inputs that distinguish implementations —
    occur in almost every example.
    """
    num_sessions = draw(st.integers(min_value=1, max_value=max_sessions))
    clicks: list[Click] = []
    for session_id in range(num_sessions):
        timestamp = (
            draw(st.integers(min_value=0, max_value=timestamp_buckets - 1))
            * 100.0
        )
        length = draw(st.integers(min_value=1, max_value=max_session_length))
        items = draw(
            st.lists(
                st.integers(min_value=0, max_value=max_items - 1),
                min_size=length,
                max_size=length,
            )
        )
        clicks.extend(Click(session_id, item, timestamp) for item in items)
    return clicks


@st.composite
def evolving_sessions(
    draw: st.DrawFn, max_items: int = 6, max_length: int = 5
) -> list[int]:
    """An evolving session over the same tiny item pool."""
    return draw(
        st.lists(
            st.integers(min_value=0, max_value=max_items - 1),
            min_size=1,
            max_size=max_length,
        )
    )


def hyperparams(max_m: int = 8, max_k: int = 8) -> st.SearchStrategy[HyperParams]:
    """(m, k, π, λ) combinations, biased to small m/k (sampling pressure)."""
    return st.builds(
        HyperParams,
        m=st.integers(min_value=1, max_value=max_m),
        k=st.integers(min_value=1, max_value=max_k),
        decay=st.sampled_from(
            ["linear", "quadratic", "log", "harmonic", "uniform"]
        ),
        match_weight=st.sampled_from(["paper", "uniform", "reciprocal"]),
    )
