"""Correctness tooling: workload generators, differential oracle, simulation.

Three pillars, one per module:

* :mod:`repro.testing.generators` — seeded, reproducible workload
  generators (click logs, queries, arrival/chaos schedules) with the
  skew knobs real traffic has: power-law popularity, timestamp ties,
  bursts, bots. :mod:`repro.testing.strategies` exposes the same shapes
  as Hypothesis strategies plus pinned CI profiles.
* :mod:`repro.testing.oracle` — the differential oracle: replay one
  workload through VS-kNN, VMIS-kNN (both variants), the batch engine
  (both shard strategies) and the study backends, diff the outputs, and
  ddmin-shrink any divergence to a minimal JSON repro under
  ``tests/regressions/``.
* :mod:`repro.testing.clock` / :mod:`repro.testing.simulation` — a
  virtual monotonic clock plus a fully virtualised serving cluster, so
  chaos, resilience and rollout scenarios are exact, seed-replayable
  unit tests with zero real sleeps.

See ``docs/testing.md`` for the guided tour.
"""

from repro.testing.clock import VirtualClock
from repro.testing.generators import (
    WorkloadConfig,
    WorkloadGenerator,
    workload_corpus,
)
from repro.testing.oracle import (
    DifferentialRunner,
    DivergenceCase,
    HyperParams,
    OracleReport,
    default_grid,
    load_regression,
    write_regression,
)
from repro.testing.simulation import SimulatedCluster

__all__ = [
    "VirtualClock",
    "WorkloadConfig",
    "WorkloadGenerator",
    "workload_corpus",
    "DifferentialRunner",
    "DivergenceCase",
    "HyperParams",
    "OracleReport",
    "default_grid",
    "load_regression",
    "write_regression",
    "SimulatedCluster",
]
