"""Experiment execution: config in, comparison table out.

``run_experiment`` loads the dataset, performs the temporal split, fits
every candidate model, evaluates them under the shared protocol and
returns a :class:`ExperimentReport` with quality metrics, fit times and
per-prediction latency percentiles — the table a practitioner compares
candidates with before an online test.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.data.split import temporal_split
from repro.eval.evaluator import EvaluationResult, evaluate_next_item
from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import RecommenderConfig, build_recommender


@dataclass
class ModelOutcome:
    """One model's results under the experiment protocol."""

    label: str
    fit_seconds: float
    result: EvaluationResult

    def latency_p90_ms(self) -> float:
        return self.result.latency_percentile(90) * 1e3

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "fit_seconds": self.fit_seconds,
            "predictions": self.result.predictions,
            "metrics": self.result.summary(),
            "latency_p90_ms": self.latency_p90_ms(),
        }


@dataclass
class ExperimentReport:
    """All model outcomes for one experiment run."""

    config: ExperimentConfig
    train_clicks: int
    test_sessions: int
    outcomes: list[ModelOutcome] = field(default_factory=list)

    def best(self, metric: str = "mrr") -> ModelOutcome:
        return max(
            self.outcomes, key=lambda outcome: getattr(outcome.result, metric)
        )

    def render(self) -> str:
        cutoff = self.config.protocol.cutoff
        header = (
            f"{'model':<16} {'fit s':>7} {'MRR@'+str(cutoff):>8} "
            f"{'HR@'+str(cutoff):>8} {'Prec@'+str(cutoff):>9} "
            f"{'MAP@'+str(cutoff):>8} {'p90 ms':>8}"
        )
        lines = [
            f"experiment: {self.config.name} "
            f"({self.train_clicks:,} train clicks, "
            f"{self.test_sessions:,} test sessions)",
            header,
            "-" * len(header),
        ]
        for outcome in sorted(
            self.outcomes, key=lambda o: -o.result.mrr
        ):
            result = outcome.result
            lines.append(
                f"{outcome.label:<16} {outcome.fit_seconds:>7.1f} "
                f"{result.mrr:>8.4f} {result.hit_rate:>8.4f} "
                f"{result.precision:>9.4f} {result.map:>8.4f} "
                f"{outcome.latency_p90_ms():>8.2f}"
            )
        return "\n".join(lines)

    def save_json(self, path: str | Path) -> None:
        payload = {
            "experiment": self.config.name,
            "train_clicks": self.train_clicks,
            "test_sessions": self.test_sessions,
            "outcomes": [outcome.as_dict() for outcome in self.outcomes],
        }
        Path(path).write_text(json.dumps(payload, indent=2))


def run_experiment(config: ExperimentConfig) -> ExperimentReport:
    """Execute one experiment configuration end to end."""
    config.validate()
    log = config.dataset.load()
    split = temporal_split(log, test_days=config.protocol.test_days)
    train = list(split.train)
    sequences = split.test_sequences()
    if not sequences:
        raise ValueError(
            "the split produced no usable test sessions; widen the dataset "
            "or shrink test_days"
        )

    report = ExperimentReport(
        config=config,
        train_clicks=len(train),
        test_sessions=len(sequences),
    )
    for spec in config.models:
        started = time.perf_counter()
        model = build_recommender(
            spec.name,
            RecommenderConfig.from_params(spec.params),
            clicks=train,
        )
        fit_seconds = time.perf_counter() - started
        result = evaluate_next_item(
            model,
            sequences,
            cutoff=config.protocol.cutoff,
            measure_latency=True,
            max_predictions=config.protocol.max_predictions,
        )
        report.outcomes.append(
            ModelOutcome(
                label=spec.display_name,
                fit_seconds=fit_seconds,
                result=result,
            )
        )
    return report
