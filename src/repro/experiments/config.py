"""Declarative experiment configuration.

The paper's companion repository drives its comparisons from experiment
configuration files (the session-rec style). This module provides the
equivalent: a JSON-serialisable description of *what to run* — dataset,
candidate models with hyperparameters, and the evaluation protocol — that
the runner executes reproducibly.

Example (JSON)::

    {
      "name": "quality-shootout",
      "dataset": {"profile": "ecom-1m-sim", "scale": 0.02, "seed": 7},
      "protocol": {"test_days": 1, "cutoff": 20, "max_predictions": 500},
      "models": [
        {"name": "vmis", "params": {"m": 500, "k": 100}},
        {"name": "itemknn", "params": {}}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.data.clicklog import ClickLog
from repro.data.datasets import dataset_names, load_dataset
from repro.data.synthetic import generate_clickstream


@dataclass(frozen=True)
class DatasetSpec:
    """Which clickstream to evaluate on.

    Either a Table 1 ``profile`` (with ``scale``), or generic generator
    parameters (``sessions``/``items``/``days``), or a ``path`` to a TSV.
    Exactly one source must be set.
    """

    profile: str | None = None
    scale: float = 0.01
    path: str | None = None
    sessions: int | None = None
    items: int = 1_000
    days: int = 10
    seed: int = 42
    generator_params: dict = field(default_factory=dict)

    def validate(self) -> None:
        sources = [
            self.profile is not None,
            self.path is not None,
            self.sessions is not None,
        ]
        if sum(sources) != 1:
            raise ValueError(
                "exactly one of profile / path / sessions must be set"
            )
        if self.profile is not None and self.profile not in dataset_names():
            raise ValueError(
                f"unknown profile {self.profile!r}; known: {dataset_names()}"
            )
        if self.generator_params and self.sessions is None:
            raise ValueError(
                "generator_params only apply to the synthetic-generator "
                "source (set sessions)"
            )

    def load(self) -> ClickLog:
        self.validate()
        if self.profile is not None:
            return load_dataset(self.profile, scale=self.scale, seed=self.seed)
        if self.path is not None:
            return ClickLog.from_tsv(self.path)
        return generate_clickstream(
            num_sessions=self.sessions,
            num_items=self.items,
            days=self.days,
            seed=self.seed,
            **self.generator_params,
        )


@dataclass(frozen=True)
class ProtocolSpec:
    """The evaluation protocol (§5.1: last day held out, top-20 lists)."""

    test_days: float = 1.0
    cutoff: int = 20
    max_predictions: int | None = None

    def validate(self) -> None:
        if self.test_days <= 0:
            raise ValueError("test_days must be positive")
        if self.cutoff < 1:
            raise ValueError("cutoff must be >= 1")


@dataclass(frozen=True)
class ModelSpec:
    """One candidate: a registered model name plus hyperparameters."""

    name: str
    params: dict = field(default_factory=dict)
    label: str | None = None

    @property
    def display_name(self) -> str:
        return self.label or self.name


@dataclass(frozen=True)
class ExperimentConfig:
    """A full experiment: dataset x models under one protocol."""

    name: str
    dataset: DatasetSpec
    models: tuple[ModelSpec, ...]
    protocol: ProtocolSpec = ProtocolSpec()

    def validate(self) -> None:
        if not self.name:
            raise ValueError("experiment needs a name")
        if not self.models:
            raise ValueError("experiment needs at least one model")
        self.dataset.validate()
        self.protocol.validate()
        labels = [model.display_name for model in self.models]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate model labels: {labels}")

    # -- (de)serialization --------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def from_dict(cls, raw: dict) -> "ExperimentConfig":
        try:
            dataset = DatasetSpec(**raw["dataset"])
            models = tuple(ModelSpec(**model) for model in raw["models"])
            protocol = ProtocolSpec(**raw.get("protocol", {}))
            config = cls(
                name=raw["name"],
                dataset=dataset,
                models=models,
                protocol=protocol,
            )
        except (KeyError, TypeError) as error:
            raise ValueError(f"malformed experiment config: {error}") from error
        config.validate()
        return config

    @classmethod
    def load(cls, path: str | Path) -> "ExperimentConfig":
        return cls.from_dict(json.loads(Path(path).read_text()))
