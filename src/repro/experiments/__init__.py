"""Declarative experiments: config, model registry, runner."""

from repro.experiments.config import (
    DatasetSpec,
    ExperimentConfig,
    ModelSpec,
    ProtocolSpec,
)
from repro.experiments.registry import (
    build_model,
    register_model,
    registered_models,
)
from repro.experiments.runner import (
    ExperimentReport,
    ModelOutcome,
    run_experiment,
)

__all__ = [
    "DatasetSpec",
    "ExperimentConfig",
    "ExperimentReport",
    "ModelOutcome",
    "ModelSpec",
    "ProtocolSpec",
    "build_model",
    "register_model",
    "registered_models",
    "run_experiment",
]
