"""Declarative experiments: config, model registry, runner."""

from repro.experiments.config import (
    DatasetSpec,
    ExperimentConfig,
    ModelSpec,
    ProtocolSpec,
)
from repro.experiments.registry import (
    RecommenderConfig,
    build_recommender,
    register_model,
    register_recommender,
    registered_models,
)
from repro.experiments.runner import (
    ExperimentReport,
    ModelOutcome,
    run_experiment,
)

__all__ = [
    "DatasetSpec",
    "ExperimentConfig",
    "ExperimentReport",
    "ModelOutcome",
    "ModelSpec",
    "ProtocolSpec",
    "RecommenderConfig",
    "build_recommender",
    "register_model",
    "register_recommender",
    "registered_models",
    "run_experiment",
]
