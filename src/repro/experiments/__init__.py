"""Declarative experiments: config, model registry, runner."""

from repro.experiments.config import (
    DatasetSpec,
    ExperimentConfig,
    ModelSpec,
    ProtocolSpec,
)
from repro.experiments.registry import (
    DEFAULT_MODEL,
    RecommenderConfig,
    build_recommender,
    register_model,
    register_recommender,
    registered_models,
)
from repro.experiments.runner import (
    ExperimentReport,
    ModelOutcome,
    run_experiment,
)

__all__ = [
    "DEFAULT_MODEL",
    "DatasetSpec",
    "ExperimentConfig",
    "ExperimentReport",
    "ModelOutcome",
    "ModelSpec",
    "ProtocolSpec",
    "RecommenderConfig",
    "build_recommender",
    "register_model",
    "register_recommender",
    "registered_models",
    "run_experiment",
]
