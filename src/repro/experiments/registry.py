"""Model registry: experiment-config names to recommender builders.

Every builder takes the training clicks and the spec's hyperparameters
and returns a fitted object satisfying
:class:`~repro.core.predictor.SessionRecommender`. Third-party models can
be registered at runtime with :func:`register_model`.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.baselines.itemknn import ItemKNNRecommender
from repro.baselines.markov import MarkovRecommender
from repro.baselines.neural import GRU4Rec, NARM, STAMP
from repro.baselines.popularity import PopularityRecommender
from repro.baselines.sknn import SKNNRecommender
from repro.baselines.stan import STANRecommender
from repro.core.predictor import SessionRecommender
from repro.core.types import Click
from repro.core.vmis import VMISKNN
from repro.core.vsknn import VSKNN

ModelBuilder = Callable[[Sequence[Click], dict], SessionRecommender]

_REGISTRY: dict[str, ModelBuilder] = {}


def register_model(name: str, builder: ModelBuilder) -> None:
    """Register (or replace) a model builder under a config name."""
    if not name:
        raise ValueError("model name must be non-empty")
    _REGISTRY[name] = builder


def build_model(name: str, train_clicks: Sequence[Click], params: dict) -> SessionRecommender:
    """Instantiate and fit a registered model."""
    builder = _REGISTRY.get(name)
    if builder is None:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown model {name!r}; known: {known}")
    return builder(train_clicks, dict(params))


def registered_models() -> list[str]:
    return sorted(_REGISTRY)


# -- built-in builders -------------------------------------------------------


def _build_vmis(train_clicks, params):
    return VMISKNN.from_clicks(train_clicks, **params)


def _build_vsknn(train_clicks, params):
    return VSKNN.from_clicks(train_clicks, **params)


def _build_sknn(train_clicks, params):
    return SKNNRecommender.from_clicks(train_clicks, **params)


def _build_stan(train_clicks, params):
    return STANRecommender.from_clicks(train_clicks, **params)


def _build_itemknn(train_clicks, params):
    return ItemKNNRecommender(**params).fit(train_clicks)


def _build_markov(train_clicks, params):
    return MarkovRecommender(**params).fit(train_clicks)


def _build_popularity(train_clicks, params):
    return PopularityRecommender(**params).fit(train_clicks)


def _build_gru4rec(train_clicks, params):
    return GRU4Rec(**params).fit(train_clicks)


def _build_narm(train_clicks, params):
    return NARM(**params).fit(train_clicks)


def _build_stamp(train_clicks, params):
    return STAMP(**params).fit(train_clicks)


for _name, _builder in {
    "vmis": _build_vmis,
    "vsknn": _build_vsknn,
    "sknn": _build_sknn,
    "stan": _build_stan,
    "itemknn": _build_itemknn,
    "markov": _build_markov,
    "popularity": _build_popularity,
    "gru4rec": _build_gru4rec,
    "narm": _build_narm,
    "stamp": _build_stamp,
}.items():
    register_model(_name, _builder)
