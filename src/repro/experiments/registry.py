"""Model registry: one construction surface for every recommender.

Every recommender in the library is registered here under its config
name, and :func:`build_recommender` is the single factory the evaluator,
the serving layer and the CLI go through instead of hand-rolling
constructor kwargs:

    model = build_recommender("vmis", RecommenderConfig(m=500, k=100),
                              clicks=train)

Construction is uniform because every trainable recommender supports both
spellings with identical semantics::

    model = VMISKNN(m=500, k=100).fit(clicks)
    model = VMISKNN.from_clicks(clicks, m=500, k=100)

Third-party models can be registered at runtime: classes (anything whose
``cls(**params)`` is fittable) via :func:`register_recommender`, or
legacy callable builders via :func:`register_model`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.baselines.itemknn import ItemKNNRecommender
from repro.baselines.markov import MarkovRecommender
from repro.baselines.neural import GRU4Rec, NARM, STAMP
from repro.baselines.popularity import PopularityRecommender
from repro.baselines.sknn import SKNNRecommender
from repro.baselines.stan import STANRecommender
from repro.core.colindex import VMISKNNColumnar
from repro.core.predictor import SessionRecommender
from repro.core.types import Click
from repro.core.vmis import VMISKNN
from repro.core.vsknn import VSKNN

ModelBuilder = Callable[[Sequence[Click], dict], SessionRecommender]

#: the scorer the CLI and serving layer pick when none is named. The
#: vectorized columnar engine is the production default; the per-item-heap
#: ``"vmis"`` path stays registered as the differential oracle it is
#: bit-identical to (``repro.testing.oracle`` exercises the equivalence).
DEFAULT_MODEL = "vmis-columnar"

_REGISTRY: dict[str, ModelBuilder] = {}
_CLASSES: dict[str, type] = {}


@dataclass(frozen=True)
class RecommenderConfig:
    """Constructor hyperparameters, uniform across algorithms.

    The common knobs of the kNN family are first-class fields; anything
    model-specific rides in ``extra`` (e.g. ``{"epochs": 5}`` for the
    neural baselines, ``{"window": 3}`` for markov). ``None`` fields are
    omitted, so one config type covers models that do not take ``m``/``k``.
    """

    m: int | None = None
    k: int | None = None
    exclude_current_items: bool | None = None
    extra: Mapping[str, object] = field(default_factory=dict)

    @classmethod
    def from_params(cls, params: Mapping[str, object]) -> "RecommenderConfig":
        """Lift a flat kwargs dict (the experiment-spec style) to a config."""
        params = dict(params)
        return cls(
            m=params.pop("m", None),
            k=params.pop("k", None),
            exclude_current_items=params.pop("exclude_current_items", None),
            extra=params,
        )

    def kwargs(self) -> dict[str, object]:
        """The constructor kwargs this config denotes."""
        out: dict[str, object] = {}
        if self.m is not None:
            out["m"] = self.m
        if self.k is not None:
            out["k"] = self.k
        if self.exclude_current_items is not None:
            out["exclude_current_items"] = self.exclude_current_items
        out.update(self.extra)
        return out


def register_recommender(name: str, recommender_class: type) -> None:
    """Register (or replace) a recommender class under a config name."""
    if not name:
        raise ValueError("model name must be non-empty")
    _CLASSES[name] = recommender_class


def register_model(name: str, builder: ModelBuilder) -> None:
    """Register (or replace) a legacy callable builder under a name.

    Prefer :func:`register_recommender` with a class; callable builders
    remain supported for models whose construction cannot be expressed as
    ``cls(**kwargs).fit(clicks)``.
    """
    if not name:
        raise ValueError("model name must be non-empty")
    _REGISTRY[name] = builder


def build_recommender(
    name: str,
    config: RecommenderConfig | None = None,
    clicks: Sequence[Click] | None = None,
) -> SessionRecommender:
    """Instantiate a registered recommender, optionally fitting it.

    Args:
        name: registry name (``registered_models()`` lists them).
        config: hyperparameters; defaults apply when omitted.
        clicks: training click log. When given, the model is fitted
            before being returned; class-registered models may also be
            returned unfitted (``clicks=None``) and fitted later.
    """
    config = config or RecommenderConfig()
    recommender_class = _CLASSES.get(name)
    if recommender_class is not None:
        model = recommender_class(**config.kwargs())
        if clicks is not None:
            model = model.fit(list(clicks))
        return model
    builder = _REGISTRY.get(name)
    if builder is None:
        known = ", ".join(sorted(set(_CLASSES) | set(_REGISTRY)))
        raise ValueError(f"unknown model {name!r}; known: {known}")
    if clicks is None:
        raise ValueError(
            f"model {name!r} is registered as a legacy builder and needs "
            "training clicks"
        )
    return builder(list(clicks), config.kwargs())


def registered_models() -> list[str]:
    return sorted(set(_CLASSES) | set(_REGISTRY))


def recommender_class(name: str) -> type | None:
    """The class registered under ``name``, or None for legacy builders."""
    return _CLASSES.get(name)


# -- built-in recommenders ---------------------------------------------------

for _name, _class in {
    "vmis": VMISKNN,
    "vmis-columnar": VMISKNNColumnar,
    "vsknn": VSKNN,
    "sknn": SKNNRecommender,
    "stan": STANRecommender,
    "itemknn": ItemKNNRecommender,
    "markov": MarkovRecommender,
    "popularity": PopularityRecommender,
    "gru4rec": GRU4Rec,
    "narm": NARM,
    "stamp": STAMP,
}.items():
    register_recommender(_name, _class)
