"""Hyperparameter grid search over (k, m) — the machinery behind Figure 2.

The paper runs an exhaustive grid over 55 combinations of ``k`` (number of
neighbours) and ``m`` (recent sessions per item) and plots MRR@20 and
Prec@20 heatmaps. ``grid_search`` builds the index *once* at the largest
``m`` (posting lists for smaller ``m`` are prefixes, so a query-time ``m``
below the build-time cap is exact) and sweeps the query parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.index import SessionIndex
from repro.core.types import Click, ItemId, SessionId
from repro.core.vmis import VMISKNN
from repro.eval.evaluator import EvaluationResult, evaluate_next_item


@dataclass(frozen=True)
class GridPoint:
    """One evaluated (k, m) combination."""

    k: int
    m: int
    result: EvaluationResult

    def metric(self, name: str) -> float:
        value = getattr(self.result, name, None)
        if value is None:
            raise ValueError(f"unknown metric {name!r}")
        return value


@dataclass
class GridSearchResult:
    """All evaluated grid points with lookup and rendering helpers."""

    ks: list[int]
    ms: list[int]
    points: list[GridPoint]

    def best(self, metric: str = "mrr") -> GridPoint:
        """The grid point maximising the metric."""
        return max(self.points, key=lambda point: point.metric(metric))

    def matrix(self, metric: str = "mrr") -> list[list[float]]:
        """Row-major [k][m] matrix of metric values (Figure 2 layout)."""
        by_key = {(p.k, p.m): p.metric(metric) for p in self.points}
        return [[by_key[(k, m)] for m in self.ms] for k in self.ks]

    def heatmap(self, metric: str = "mrr") -> str:
        """Text heatmap, lighter shades = better (Figure 2 rendering)."""
        shades = " .:-=+*#%@"
        matrix = self.matrix(metric)
        flat = [value for row in matrix for value in row]
        low, high = min(flat), max(flat)
        span = (high - low) or 1.0
        lines = ["m:    " + "  ".join(f"{m:>6}" for m in self.ms)]
        for k, row in zip(self.ks, matrix):
            cells = []
            for value in row:
                shade = shades[int((value - low) / span * (len(shades) - 1))]
                cells.append(f"{shade * 3:>6}")
            lines.append(f"k={k:<5}" + "  ".join(cells))
        return "\n".join(lines)

    def is_unimodal_ridge(self, metric: str = "mrr", tolerance: float = 0.0) -> bool:
        """Loose unimodality check: the best cell's row and column rise
        towards it and fall after it (the qualitative Figure 2 finding)."""
        best = self.best(metric)
        row = self.matrix(metric)[self.ks.index(best.k)]
        column = [r[self.ms.index(best.m)] for r in self.matrix(metric)]
        return _unimodal(row, tolerance) and _unimodal(column, tolerance)


def _unimodal(values: Sequence[float], tolerance: float) -> bool:
    peak = max(range(len(values)), key=values.__getitem__)
    rising = all(
        values[i + 1] >= values[i] - tolerance for i in range(peak)
    )
    falling = all(
        values[i + 1] <= values[i] + tolerance for i in range(peak, len(values) - 1)
    )
    return rising and falling


def grid_search(
    train_clicks: Sequence[Click],
    test_sequences: Mapping[SessionId, Sequence[ItemId]],
    ks: Sequence[int],
    ms: Sequence[int],
    cutoff: int = 20,
    max_predictions: int | None = None,
    **vmis_kwargs,
) -> GridSearchResult:
    """Evaluate VMIS-kNN at every (k, m) combination.

    The index is built once with ``max(ms)`` postings per item; each grid
    point then runs with its own query-time ``m`` and ``k``.
    """
    if not ks or not ms:
        raise ValueError("ks and ms must be non-empty")
    index = SessionIndex.from_clicks(train_clicks, max_sessions_per_item=max(ms))
    points = []
    for k in ks:
        for m in ms:
            model = VMISKNN(index, m=m, k=k, **vmis_kwargs)
            result = evaluate_next_item(
                model, test_sequences, cutoff=cutoff, max_predictions=max_predictions
            )
            points.append(GridPoint(k=k, m=m, result=result))
    return GridSearchResult(ks=list(ks), ms=list(ms), points=points)
