"""Diagnostic breakdowns beyond the headline metrics.

The paper's evaluation reports single averaged numbers per metric; when
operating a recommender one also wants to know *where* the quality comes
from. This module slices next-item accuracy two ways:

* **by prefix length** — how quickly quality ramps up as a session grows
  (the reason serenade-hist uses two items while depersonalised serving
  works from one);
* **by target popularity** — head/torso/tail item buckets, quantifying
  how much a recommender leans on blockbusters (the idf weighting of
  VS-kNN exists precisely to temper this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.predictor import SessionRecommender
from repro.core.types import Click, ItemId, SessionId
from repro.eval.metrics import hit, reciprocal_rank


@dataclass
class SliceMetrics:
    """Accumulated MRR/HR for one slice of the predictions."""

    predictions: int = 0
    mrr_total: float = 0.0
    hits_total: float = 0.0

    def record(self, recommended: Sequence[ItemId], target: ItemId) -> None:
        self.predictions += 1
        self.mrr_total += reciprocal_rank(recommended, target)
        self.hits_total += hit(recommended, target)

    @property
    def mrr(self) -> float:
        return self.mrr_total / self.predictions if self.predictions else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits_total / self.predictions if self.predictions else 0.0


@dataclass
class BreakdownReport:
    """Per-prefix-length and per-popularity-bucket accuracy."""

    cutoff: int
    by_prefix_length: dict[int, SliceMetrics] = field(default_factory=dict)
    by_popularity: dict[str, SliceMetrics] = field(default_factory=dict)

    def render(self) -> str:
        lines = [f"accuracy by prefix length (cutoff {self.cutoff}):"]
        lines.append(f"{'prefix':>7} {'preds':>7} {'MRR':>7} {'HR':>7}")
        for length in sorted(self.by_prefix_length):
            slice_metrics = self.by_prefix_length[length]
            lines.append(
                f"{length:>7} {slice_metrics.predictions:>7} "
                f"{slice_metrics.mrr:>7.4f} {slice_metrics.hit_rate:>7.4f}"
            )
        lines.append("")
        lines.append("accuracy by target-item popularity:")
        lines.append(f"{'bucket':>7} {'preds':>7} {'MRR':>7} {'HR':>7}")
        for bucket in ("head", "torso", "tail"):
            slice_metrics = self.by_popularity.get(bucket, SliceMetrics())
            lines.append(
                f"{bucket:>7} {slice_metrics.predictions:>7} "
                f"{slice_metrics.mrr:>7.4f} {slice_metrics.hit_rate:>7.4f}"
            )
        return "\n".join(lines)


def popularity_buckets(
    train_clicks: Sequence[Click], head_share: float = 0.5, torso_share: float = 0.9
) -> dict[ItemId, str]:
    """Assign each training item to head/torso/tail by cumulative clicks.

    ``head`` items account for the first ``head_share`` of all clicks,
    ``torso`` up to ``torso_share``, the rest is ``tail``.
    """
    if not 0.0 < head_share < torso_share < 1.0:
        raise ValueError("need 0 < head_share < torso_share < 1")
    counts: dict[ItemId, int] = {}
    for click in train_clicks:
        counts[click.item_id] = counts.get(click.item_id, 0) + 1
    total = sum(counts.values())
    buckets: dict[ItemId, str] = {}
    cumulative = 0
    for item, count in sorted(counts.items(), key=lambda kv: -kv[1]):
        # Bucket by where the item's click mass *starts*, so the item that
        # straddles the 50% boundary still counts as head.
        start = cumulative
        cumulative += count
        if start < head_share * total:
            buckets[item] = "head"
        elif start < torso_share * total:
            buckets[item] = "torso"
        else:
            buckets[item] = "tail"
    return buckets


def breakdown_evaluation(
    recommender: SessionRecommender,
    test_sequences: Mapping[SessionId, Sequence[ItemId]],
    train_clicks: Sequence[Click],
    cutoff: int = 20,
    max_prefix_length: int = 10,
    max_predictions: int | None = None,
) -> BreakdownReport:
    """Replay test sessions, slicing accuracy by prefix length and target
    popularity. Prefix lengths beyond ``max_prefix_length`` are folded
    into the last bucket (sessions that long are rare; see Table 1)."""
    buckets = popularity_buckets(train_clicks)
    report = BreakdownReport(cutoff=cutoff)
    done = 0
    for sequence in test_sequences.values():
        for step in range(1, len(sequence)):
            prefix = sequence[:step]
            target = sequence[step]
            recommended = [
                scored.item_id
                for scored in recommender.recommend(prefix, how_many=cutoff)
            ]
            length_key = min(step, max_prefix_length)
            report.by_prefix_length.setdefault(
                length_key, SliceMetrics()
            ).record(recommended, target)
            bucket = buckets.get(target, "tail")
            report.by_popularity.setdefault(bucket, SliceMetrics()).record(
                recommended, target
            )
            done += 1
            if max_predictions is not None and done >= max_predictions:
                return report
    return report
