"""Ranking metrics for next-item evaluation (§5.1).

The paper reports MRR@20 and HitRate-style metrics against the *immediate*
next item, and Precision/Recall/MAP@20 against *all remaining* items of the
session — the session-rec protocol. All metrics are per-prediction values
in [0, 1]; the evaluator averages them over every prediction step.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.types import ItemId


def reciprocal_rank(recommended: Sequence[ItemId], next_item: ItemId) -> float:
    """1/rank of the immediate next item, 0 if absent (MRR contribution)."""
    for rank, item in enumerate(recommended, start=1):
        if item == next_item:
            return 1.0 / rank
    return 0.0


def hit(recommended: Sequence[ItemId], next_item: ItemId) -> float:
    """1 if the immediate next item appears anywhere in the list."""
    return 1.0 if next_item in recommended else 0.0


def precision(recommended: Sequence[ItemId], remaining: Sequence[ItemId]) -> float:
    """Fraction of recommended items that occur later in the session."""
    if not recommended:
        return 0.0
    relevant = set(remaining)
    hits = sum(1 for item in recommended if item in relevant)
    return hits / len(recommended)


def recall(recommended: Sequence[ItemId], remaining: Sequence[ItemId]) -> float:
    """Fraction of the session's remaining items that were recommended."""
    relevant = set(remaining)
    if not relevant:
        return 0.0
    hits = sum(1 for item in set(recommended) if item in relevant)
    return hits / len(relevant)


def average_precision(
    recommended: Sequence[ItemId], remaining: Sequence[ItemId]
) -> float:
    """AP@|recommended| against the remaining items (MAP contribution)."""
    relevant = set(remaining)
    if not relevant:
        return 0.0
    hits = 0
    precision_sum = 0.0
    seen: set[ItemId] = set()
    for rank, item in enumerate(recommended, start=1):
        if item in relevant and item not in seen:
            # A duplicate recommendation of an already-credited item must
            # not count as a second hit, or AP can exceed one.
            seen.add(item)
            hits += 1
            precision_sum += hits / rank
    if hits == 0:
        return 0.0
    return precision_sum / min(len(relevant), len(recommended))


def coverage(all_recommended: Sequence[Sequence[ItemId]], catalog_size: int) -> float:
    """Fraction of the catalog that appeared in at least one list.

    Not in the paper's headline tables but standard for judging whether a
    recommender only ever surfaces blockbusters.
    """
    if catalog_size <= 0:
        raise ValueError("catalog_size must be positive")
    seen: set[ItemId] = set()
    for recommended in all_recommended:
        seen.update(recommended)
    return len(seen) / catalog_size
