"""Next-item evaluation by incremental session replay (§5.1 protocol).

For every held-out session, the evaluator reveals it one click at a time:
after each prefix it asks the recommender for a top-``cutoff`` list, scores
it against the immediate next item (MRR, HitRate) and against all remaining
items (Precision, Recall, MAP), and optionally records the prediction
latency — the measurement behind both the quality tables and the latency
figures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.predictor import SessionRecommender
from repro.core.types import ItemId, SessionId
from repro.eval.metrics import (
    average_precision,
    hit,
    precision,
    recall,
    reciprocal_rank,
)


@dataclass
class EvaluationResult:
    """Averaged metrics plus raw per-prediction latencies."""

    cutoff: int
    predictions: int = 0
    mrr: float = 0.0
    hit_rate: float = 0.0
    precision: float = 0.0
    recall: float = 0.0
    map: float = 0.0
    latencies_seconds: list[float] = field(default_factory=list)

    def latency_percentile(self, q: float) -> float:
        """q-th percentile prediction latency in seconds (q in [0, 100])."""
        if not self.latencies_seconds:
            raise ValueError("no latencies recorded")
        ordered = sorted(self.latencies_seconds)
        position = min(
            len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1)))
        )
        return ordered[position]

    def summary(self) -> dict[str, float]:
        return {
            f"MRR@{self.cutoff}": self.mrr,
            f"HR@{self.cutoff}": self.hit_rate,
            f"Prec@{self.cutoff}": self.precision,
            f"R@{self.cutoff}": self.recall,
            f"MAP@{self.cutoff}": self.map,
        }


def evaluate_next_item(
    recommender: SessionRecommender,
    test_sequences: Mapping[SessionId, Sequence[ItemId]] | Sequence[Sequence[ItemId]],
    cutoff: int = 20,
    measure_latency: bool = False,
    max_predictions: int | None = None,
) -> EvaluationResult:
    """Replay test sessions incrementally and average the metrics.

    Args:
        recommender: anything satisfying :class:`SessionRecommender`.
        test_sequences: held-out sessions (mapping or plain list of
            sequences); each must have at least two items.
        cutoff: list length (the paper uses 20).
        measure_latency: record per-prediction wall-clock times.
        max_predictions: optional cap for quick runs.
    """
    if hasattr(test_sequences, "values"):
        sequences = list(test_sequences.values())
    else:
        sequences = list(test_sequences)

    result = EvaluationResult(cutoff=cutoff)
    totals = {"mrr": 0.0, "hr": 0.0, "prec": 0.0, "rec": 0.0, "map": 0.0}
    done = 0
    for sequence in sequences:
        for step in range(1, len(sequence)):
            prefix = sequence[:step]
            next_item = sequence[step]
            remaining = sequence[step:]
            if measure_latency:
                started = time.perf_counter()
                recommended_scored = recommender.recommend(prefix, how_many=cutoff)
                result.latencies_seconds.append(time.perf_counter() - started)
            else:
                recommended_scored = recommender.recommend(prefix, how_many=cutoff)
            recommended = [scored.item_id for scored in recommended_scored]
            totals["mrr"] += reciprocal_rank(recommended, next_item)
            totals["hr"] += hit(recommended, next_item)
            totals["prec"] += precision(recommended, remaining)
            totals["rec"] += recall(recommended, remaining)
            totals["map"] += average_precision(recommended, remaining)
            done += 1
            if max_predictions is not None and done >= max_predictions:
                break
        if max_predictions is not None and done >= max_predictions:
            break

    result.predictions = done
    if done:
        result.mrr = totals["mrr"] / done
        result.hit_rate = totals["hr"] / done
        result.precision = totals["prec"] / done
        result.recall = totals["rec"] / done
        result.map = totals["map"] / done
    return result
