"""Next-item evaluation by incremental session replay (§5.1 protocol).

For every held-out session, the evaluator reveals it one click at a time:
after each prefix it asks the recommender for a top-``cutoff`` list, scores
it against the immediate next item (MRR, HitRate) and against all remaining
items (Precision, Recall, MAP), and optionally records the prediction
latency — the measurement behind both the quality tables and the latency
figures.

Two execution paths produce identical metrics:

* :func:`evaluate_next_item` replays serially through ``recommend`` — the
  latency-faithful path (one timing sample per prediction);
* :func:`evaluate_next_item_batched` materialises the same prediction
  steps and pushes them through ``recommend_batch`` in chunks — the
  throughput path for offline sweeps, built for
  :class:`~repro.core.batch.BatchPredictionEngine`. Latencies, when
  recorded, are per-batch wall clock amortised per prediction.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.core.predictor import SessionRecommender, batch_via_loop
from repro.core.types import ItemId, SessionId
from repro.eval.metrics import (
    average_precision,
    hit,
    precision,
    recall,
    reciprocal_rank,
)


@dataclass
class EvaluationResult:
    """Averaged metrics plus raw per-prediction latencies."""

    cutoff: int
    predictions: int = 0
    mrr: float = 0.0
    hit_rate: float = 0.0
    precision: float = 0.0
    recall: float = 0.0
    map: float = 0.0
    latencies_seconds: list[float] = field(default_factory=list)

    def latency_percentile(self, q: float) -> float:
        """q-th percentile prediction latency in seconds (q in [0, 100])."""
        if not self.latencies_seconds:
            raise ValueError("no latencies recorded")
        ordered = sorted(self.latencies_seconds)
        position = min(
            len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1)))
        )
        return ordered[position]

    def summary(self) -> dict[str, float]:
        return {
            f"MRR@{self.cutoff}": self.mrr,
            f"HR@{self.cutoff}": self.hit_rate,
            f"Prec@{self.cutoff}": self.precision,
            f"R@{self.cutoff}": self.recall,
            f"MAP@{self.cutoff}": self.map,
        }


def evaluate_next_item(
    recommender: SessionRecommender,
    test_sequences: Mapping[SessionId, Sequence[ItemId]] | Sequence[Sequence[ItemId]],
    cutoff: int = 20,
    measure_latency: bool = False,
    max_predictions: int | None = None,
) -> EvaluationResult:
    """Replay test sessions incrementally and average the metrics.

    Args:
        recommender: anything satisfying :class:`SessionRecommender`.
        test_sequences: held-out sessions (mapping or plain list of
            sequences); each must have at least two items.
        cutoff: list length (the paper uses 20).
        measure_latency: record per-prediction wall-clock times.
        max_predictions: optional cap for quick runs.
    """
    result = EvaluationResult(cutoff=cutoff)
    totals = {"mrr": 0.0, "hr": 0.0, "prec": 0.0, "rec": 0.0, "map": 0.0}
    done = 0
    for prefix, next_item, remaining in _prediction_steps(
        test_sequences, max_predictions
    ):
        if measure_latency:
            started = time.perf_counter()
            recommended_scored = recommender.recommend(prefix, how_many=cutoff)
            result.latencies_seconds.append(time.perf_counter() - started)
        else:
            recommended_scored = recommender.recommend(prefix, how_many=cutoff)
        _score_step(totals, recommended_scored, next_item, remaining)
        done += 1

    result.predictions = done
    _finalise(result, totals, done)
    return result


def evaluate_next_item_batched(
    recommender: SessionRecommender,
    test_sequences: Mapping[SessionId, Sequence[ItemId]] | Sequence[Sequence[ItemId]],
    cutoff: int = 20,
    batch_size: int = 256,
    measure_latency: bool = False,
    max_predictions: int | None = None,
) -> EvaluationResult:
    """The §5.1 protocol through ``recommend_batch``, in ``batch_size`` chunks.

    Visits the exact prediction steps of :func:`evaluate_next_item` in the
    same order, so the averaged metrics are identical; only the execution
    strategy differs. With a :class:`~repro.core.batch.BatchPredictionEngine`
    this parallelises the replay of hundreds of thousands of test sessions
    across workers and reuses cached hot prefixes.

    Recommenders lacking ``recommend_batch`` (pre-batch-API third-party
    models) fall back to a loop of ``recommend``.

    When ``measure_latency`` is set, each prediction is attributed the
    amortised wall-clock time of its batch — a throughput figure, not the
    paper's single-request latency distribution.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    predict_batch = getattr(recommender, "recommend_batch", None)

    result = EvaluationResult(cutoff=cutoff)
    totals = {"mrr": 0.0, "hr": 0.0, "prec": 0.0, "rec": 0.0, "map": 0.0}
    done = 0
    steps = _prediction_steps(test_sequences, max_predictions)
    while True:
        chunk = list(itertools.islice(steps, batch_size))
        if not chunk:
            break
        prefixes = [prefix for prefix, _, _ in chunk]
        started = time.perf_counter()
        if predict_batch is not None:
            recommended_lists = predict_batch(prefixes, how_many=cutoff)
        else:
            recommended_lists = batch_via_loop(
                recommender, prefixes, how_many=cutoff
            )
        elapsed = time.perf_counter() - started
        if measure_latency:
            result.latencies_seconds.extend([elapsed / len(chunk)] * len(chunk))
        for (_, next_item, remaining), recommended_scored in zip(
            chunk, recommended_lists
        ):
            _score_step(totals, recommended_scored, next_item, remaining)
            done += 1

    result.predictions = done
    _finalise(result, totals, done)
    return result


def _prediction_steps(
    test_sequences: Mapping[SessionId, Sequence[ItemId]] | Sequence[Sequence[ItemId]],
    max_predictions: int | None,
) -> Iterator[tuple[Sequence[ItemId], ItemId, Sequence[ItemId]]]:
    """Yield every (prefix, next item, remaining items) replay step."""
    if hasattr(test_sequences, "values"):
        sequences = list(test_sequences.values())
    else:
        sequences = list(test_sequences)
    done = 0
    for sequence in sequences:
        for step in range(1, len(sequence)):
            yield sequence[:step], sequence[step], sequence[step:]
            done += 1
            if max_predictions is not None and done >= max_predictions:
                return


def _score_step(
    totals: dict[str, float],
    recommended_scored: Sequence,
    next_item: ItemId,
    remaining: Sequence[ItemId],
) -> None:
    recommended = [scored.item_id for scored in recommended_scored]
    totals["mrr"] += reciprocal_rank(recommended, next_item)
    totals["hr"] += hit(recommended, next_item)
    totals["prec"] += precision(recommended, remaining)
    totals["rec"] += recall(recommended, remaining)
    totals["map"] += average_precision(recommended, remaining)


def _finalise(result: EvaluationResult, totals: dict[str, float], done: int) -> None:
    if done:
        result.mrr = totals["mrr"] / done
        result.hit_rate = totals["hr"] / done
        result.precision = totals["prec"] / done
        result.recall = totals["rec"] / done
        result.map = totals["map"] / done
