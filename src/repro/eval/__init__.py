"""Offline evaluation: metrics, session replay, hyperparameter search."""

from repro.eval.analysis import (
    BreakdownReport,
    SliceMetrics,
    breakdown_evaluation,
    popularity_buckets,
)
from repro.eval.evaluator import (
    EvaluationResult,
    evaluate_next_item,
    evaluate_next_item_batched,
)
from repro.eval.gridsearch import GridPoint, GridSearchResult, grid_search
from repro.eval.metrics import (
    average_precision,
    coverage,
    hit,
    precision,
    recall,
    reciprocal_rank,
)

__all__ = [
    "BreakdownReport",
    "EvaluationResult",
    "SliceMetrics",
    "breakdown_evaluation",
    "popularity_buckets",
    "GridPoint",
    "GridSearchResult",
    "average_precision",
    "coverage",
    "evaluate_next_item",
    "evaluate_next_item_batched",
    "grid_search",
    "hit",
    "precision",
    "recall",
    "reciprocal_rank",
]
