"""repro — a from-scratch reproduction of the Serenade system (SIGMOD 2022).

Serenade is the production session-based recommender of bol.com, built
around VMIS-kNN, an index-backed nearest-neighbour algorithm that answers
next-item queries with sub-millisecond latency against hundreds of millions
of historical clicks.

Quickstart::

    from repro import VMISKNN
    from repro.data import generate_clickstream

    clicks = generate_clickstream(num_sessions=1000, num_items=500, seed=7)
    model = VMISKNN.from_clicks(clicks, m=500, k=100)
    print(model.recommend([42, 17], how_many=5))

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.core import (
    BatchPredictionEngine,
    Click,
    EvolvingSession,
    ScoredItem,
    SessionIndex,
    SessionRecommender,
    VMISKNN,
    VSKNN,
)

__version__ = "1.1.0"

__all__ = [
    "BatchPredictionEngine",
    "Click",
    "EvolvingSession",
    "ScoredItem",
    "SessionIndex",
    "SessionRecommender",
    "VMISKNN",
    "VSKNN",
    "__version__",
]
